//! The worker (node monitor) daemon.
//!
//! One daemon per cluster node. Since the prototype became a backend for
//! the shared policies, the worker is not a reimplementation of the
//! simulator's server — it *embeds* one: each worker owns a real
//! [`hawk_cluster::Server`] plus its private [`QueueSlab`], so the FIFO
//! queue, the late-binding slot states, the packed stat word and the
//! Figure 3 steal scan ([`hawk_cluster::steal`]) are byte-for-byte the
//! same code both backends run. Policy decisions route through the shared
//! [`Scheduler`] trait:
//!
//! * steal victims come from [`Scheduler::pick_victims_into`] over the
//!   real [`Partition`] (§3.6);
//! * steal granularity comes from [`Scheduler::steal`];
//! * probe bouncing asks [`Scheduler::bounce_probe`] against the worker's
//!   own [`Server`] state (the Eagle-style avoidance extension).
//!
//! The daemon is transport- and clock-agnostic: it reacts to
//! [`WorkerMsg`]s and emits effects through [`Net`], so the same state
//! machine runs on an OS thread (wall clock, mpsc channels) and inside
//! the deterministic virtual-clock router.
//!
//! Stealing is a non-blocking state machine, as in the paper's prototype:
//! an idle worker contacts one victim at a time and keeps servicing
//! messages; an empty reply advances to the next victim, a non-empty one
//! enqueues the loot.
//!
//! # The hardened protocol
//!
//! With a [`TimeoutSpec`] (the fault-injecting router's companion) the
//! worker assumes messages can be dropped, duplicated or reordered:
//!
//! * **Binds** — each `TaskRequest` arms an epoch-tagged self-timer; on
//!   expiry the request is retransmitted (bounded by the retry budget),
//!   then the wait is resolved as a local cancel so the slot never
//!   wedges — the owning scheduler's per-job chain recovers any task that
//!   was actually handed out. Replies are matched to the wait by job and
//!   discarded when stale.
//! * **Steals** — each `StealRequest` arms an epoch-tagged timer that
//!   advances to the next victim on silence. A non-empty grant carries a
//!   transfer nonce: the victim buffers it and retransmits until the
//!   thief acks, then gives up and relocates the entries through the
//!   schedulers — stolen work is never lost in flight. The thief dedups
//!   grants by `(victim, nonce)` and always acks.
//! * **Launch idempotency** — accepted assignments are deduped by the
//!   `(job, task, attempt)` key, so duplicated or relaunched-then-found
//!   deliveries never double-run on the same worker.
//!
//! Without a `TimeoutSpec` every one of these paths is compiled around:
//! the fault-free message sequence is byte-identical to the historical
//! one.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use hawk_cluster::steal::{steal_from_with_into, StealScratch};
use hawk_cluster::{
    Partition, QueueEntry, QueueSlab, Server, ServerAction, ServerId, Slot, StealGranularity,
    TaskSpec,
};
use hawk_core::{RackGeometry, Route, Scheduler, StealSpec};
use hawk_simcore::SimRng;
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobClass, JobId};

use crate::fault::TimeoutSpec;
use crate::msg::{CentralMsg, DistMsg, Net, WorkerMsg};

/// In-flight steal attempt: remaining victims to contact, in order.
struct StealAttempt {
    victims: Vec<ServerId>,
    next: usize,
}

/// A non-empty steal grant awaiting the thief's ack (hardened protocol).
struct PendingGrant {
    thief: usize,
    entries: Vec<QueueEntry>,
    retries: u32,
}

/// Per-worker counters folded into the [`ProtoReport`](crate::ProtoReport).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WorkerStats {
    pub steals: u64,
    pub steal_attempts: u64,
    pub handled: u64,
    /// Hardened protocol: retransmissions sent (bind requests, grants).
    pub retries: u64,
    /// Hardened protocol: retry budgets exhausted (bind resolved locally,
    /// grant relocated).
    pub timeouts_fired: u64,
}

/// The worker daemon state machine. See the module docs.
pub(crate) struct Worker {
    index: usize,
    /// The *simulator's* server state machine, embedded.
    server: Server,
    /// Private queue arena backing `server` (list `index`).
    queues: QueueSlab,
    scheduler: Arc<dyn Scheduler>,
    partition: Partition,
    /// Rack geometry of the modelled fabric, when one exists (virtual
    /// mode over a fat-tree); lets placement-aware policies stratify
    /// their steal-victim picks exactly as the simulation driver does.
    rack_geometry: Option<RackGeometry>,
    steal_spec: Option<StealSpec>,
    steal: Option<StealAttempt>,
    dist_count: usize,
    rng: SimRng,
    /// True while out of service (scenario node-down).
    down: bool,
    /// Whether this worker currently counts toward usable capacity:
    /// in service, or down but still draining a running task — the
    /// simulator's utilization denominator (`Cluster::utilization`).
    counts_as_capacity: bool,
    /// `Some` enables the hardened protocol (see module docs).
    hardened: Option<TimeoutSpec>,
    /// Current bind wait's epoch; stale bind timers carry older values.
    bind_epoch: u64,
    /// Retransmissions used by the current bind wait.
    bind_retries: u32,
    /// Current steal request's epoch; stale steal timers carry older ones.
    steal_epoch: u64,
    /// Next transfer nonce handed to a non-empty steal grant (0 is the
    /// unhardened marker and never allocated).
    next_nonce: u64,
    /// Victim side: grants sent but not yet acked, by nonce.
    pending_grants: HashMap<u64, PendingGrant>,
    /// Thief side: grants already banked, so retransmits are not re-run.
    seen_grants: HashSet<(usize, u64)>,
    /// Launch-idempotency keys of tasks this worker accepted.
    launched: HashSet<(JobId, u32, u32)>,
    victim_scratch: Vec<usize>,
    steal_scratch: StealScratch,
    steal_out: Vec<QueueEntry>,
    drain_buf: Vec<QueueEntry>,
    pub(crate) stats: WorkerStats,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: usize,
        scheduler: Arc<dyn Scheduler>,
        partition: Partition,
        rack_geometry: Option<RackGeometry>,
        dist_count: usize,
        speed: f64,
        rng: SimRng,
        hardened: Option<TimeoutSpec>,
    ) -> Self {
        // The embedded server's id is *local*: it only selects the slab
        // list, and this worker owns a single-list slab — so per-worker
        // queue storage is O(live entries), not O(worker index). The
        // worker's cluster-wide identity (`index`) is passed explicitly
        // wherever policy code needs it (steal-victim picks, messages).
        let mut server = Server::new(ServerId(0));
        server.set_speed(speed);
        Worker {
            index,
            server,
            queues: QueueSlab::new(1),
            steal_spec: scheduler.steal(),
            scheduler,
            partition,
            rack_geometry,
            steal: None,
            dist_count,
            rng,
            down: false,
            counts_as_capacity: true,
            hardened,
            bind_epoch: 0,
            bind_retries: 0,
            steal_epoch: 0,
            next_nonce: 1,
            pending_grants: HashMap::new(),
            seen_grants: HashSet::new(),
            launched: HashSet::new(),
            victim_scratch: Vec::new(),
            steal_scratch: StealScratch::new(),
            steal_out: Vec::new(),
            drain_buf: Vec::new(),
            stats: WorkerStats::default(),
        }
    }

    /// The distributed scheduler owning `job` (submission routing and all
    /// per-job messages use the same mapping).
    fn owner(&self, job: JobId) -> usize {
        job.index() % self.dist_count
    }

    /// Re-derives this worker's usable-capacity contribution (1 while in
    /// service or draining a running task, else 0) and reports the delta.
    /// Called after every transition that can change it: down, up, a bind
    /// starting a task on a down worker, a draining task finishing.
    fn sync_capacity(&mut self, net: &mut impl Net) {
        let counts = !self.down || self.server.is_running();
        if counts != self.counts_as_capacity {
            self.counts_as_capacity = counts;
            net.add_capacity(if counts { 1 } else { -1 });
        }
    }

    /// Handles one message; returns `true` on shutdown.
    pub(crate) fn handle(&mut self, msg: WorkerMsg, net: &mut impl Net) -> bool {
        self.stats.handled += 1;
        match msg {
            WorkerMsg::Probe {
                job,
                class,
                bounces,
            } => self.on_probe(job, class, bounces, net),
            WorkerMsg::Assign(spec) => {
                if self.down {
                    // Arrived in flight while we failed: relocate like a
                    // drained entry.
                    self.relocate(QueueEntry::Task(spec), net);
                    return false;
                }
                if self.hardened.is_some()
                    && !self.launched.insert((spec.job, spec.task, spec.attempt))
                {
                    // Duplicate delivery of a task we already accepted.
                    return false;
                }
                let action = self
                    .server
                    .enqueue(&mut self.queues, QueueEntry::Task(spec));
                if let Some(action) = action {
                    self.on_action(action, net);
                }
            }
            WorkerMsg::BindReply { job, task } => self.on_bind_reply(job, task, net),
            WorkerMsg::StealRequest { thief } => self.on_steal_request(thief, net),
            WorkerMsg::StealReply {
                from,
                nonce,
                entries,
            } => self.on_steal_reply(from, nonce, entries, net),
            WorkerMsg::StealAck { nonce } => {
                // The grant arrived; release the retransmit buffer. A
                // duplicated ack finds nothing and falls through.
                self.pending_grants.remove(&nonce);
            }
            WorkerMsg::BindTimeout { epoch } => self.on_bind_timeout(epoch, net),
            WorkerMsg::StealTimeout { epoch } => {
                // Stale once the request was answered (epoch moved on or
                // the attempt resolved); live fires advance to the next
                // victim — the silent one keeps its entries, nothing to
                // recover.
                if self.hardened.is_some() && epoch == self.steal_epoch && self.steal.is_some() {
                    self.continue_steal(net);
                }
            }
            WorkerMsg::StealRetransmit { nonce } => self.on_steal_retransmit(nonce, net),
            WorkerMsg::Node(NodeChange::Down(_)) => self.on_down(net),
            WorkerMsg::Node(NodeChange::Up(_)) => {
                self.down = false;
                self.server.set_down(false);
                self.sync_capacity(net);
            }
            WorkerMsg::Shutdown => return true,
        }
        false
    }

    fn on_probe(&mut self, job: JobId, class: JobClass, bounces: u8, net: &mut impl Net) {
        if self.down {
            net.send_dist(self.owner(job), DistMsg::ReProbe { job, class });
            return;
        }
        if self.scheduler.bounce_probe(&self.server, class, bounces) {
            // Long-aware probe avoidance: ask the owning scheduler to
            // retry elsewhere (it holds the live membership view). Costs
            // one extra hop relative to the simulator's direct re-probe.
            net.send_dist(
                self.owner(job),
                DistMsg::Bounce {
                    job,
                    class,
                    bounces: bounces + 1,
                },
            );
            return;
        }
        let action = self
            .server
            .enqueue(&mut self.queues, QueueEntry::Probe { job, class });
        if let Some(action) = action {
            self.on_action(action, net);
        }
    }

    fn on_bind_reply(&mut self, job: JobId, task: Option<TaskSpec>, net: &mut impl Net) {
        if self.hardened.is_some() {
            // Accept only a reply for the wait in progress; anything else
            // (duplicate, reply outliving a local cancel, reply crossing
            // a newer wait) is discarded — the scheduler-side relaunch
            // chain recovers any task the stale reply carried.
            let awaiting =
                matches!(self.server.slot(), Slot::AwaitingBind { job: j, .. } if j == job);
            if !awaiting {
                return;
            }
            if let Some(spec) = &task {
                if !self.launched.insert((spec.job, spec.task, spec.attempt)) {
                    // The same launch already ran here (duplicated reply
                    // answering a retransmitted request): resolve the
                    // wait as a cancel instead of double-running.
                    self.resolve_bind(None, net);
                    return;
                }
            }
            self.resolve_bind(task, net);
            return;
        }
        // Fault-free transport delivers exactly once, in order: resolve
        // unconditionally. A down worker may still be awaiting a bind:
        // the response resolves normally and a bound task drains in
        // place, exactly like the simulator's draining slots.
        let action = self.server.on_bind_response(&mut self.queues, task);
        self.on_action(action, net);
        self.sync_capacity(net);
    }

    /// Resolves the current bind wait (hardened path) and invalidates its
    /// epoch so stale timers become no-ops.
    fn resolve_bind(&mut self, task: Option<TaskSpec>, net: &mut impl Net) {
        self.bind_epoch += 1;
        self.bind_retries = 0;
        let action = self.server.on_bind_response(&mut self.queues, task);
        self.on_action(action, net);
        self.sync_capacity(net);
    }

    fn on_bind_timeout(&mut self, epoch: u64, net: &mut impl Net) {
        let Some(to) = self.hardened else { return };
        if epoch != self.bind_epoch || !self.server.is_awaiting_bind() {
            return; // the wait this timer covered already resolved
        }
        let Slot::AwaitingBind { job, .. } = self.server.slot() else {
            unreachable!("guarded by is_awaiting_bind");
        };
        if self.bind_retries < to.retries {
            self.bind_retries += 1;
            self.stats.retries += 1;
            net.send_dist(
                self.owner(job),
                DistMsg::TaskRequest {
                    job,
                    worker: self.index,
                },
            );
            net.self_timer_worker(self.index, to.bind, WorkerMsg::BindTimeout { epoch });
        } else {
            // Budget exhausted: resolve as a local cancel so the slot
            // never wedges. If the scheduler did hand out a task, its
            // per-job chain relaunches it elsewhere.
            self.stats.timeouts_fired += 1;
            self.resolve_bind(None, net);
        }
    }

    fn on_steal_request(&mut self, thief: usize, net: &mut impl Net) {
        let granularity = self
            .steal_spec
            .map(|s| s.granularity)
            .unwrap_or(StealGranularity::FirstBlockedGroup);
        debug_assert!(self.steal_out.is_empty(), "stale steal batch");
        steal_from_with_into(
            &mut self.server,
            &mut self.queues,
            granularity,
            &mut self.rng,
            &mut self.steal_scratch,
            &mut self.steal_out,
        );
        let entries = std::mem::take(&mut self.steal_out);
        // Entries must never be dropped: the reply carries them even when
        // the thief may have failed (the thief's handler relocates them
        // in that case).
        match self.hardened {
            Some(to) if !entries.is_empty() => {
                // The loot leaves this queue for good — release its
                // launch-dedup keys so a relocation round trip can bring
                // a task back here.
                for entry in &entries {
                    if let QueueEntry::Task(spec) = entry {
                        self.launched.remove(&(spec.job, spec.task, spec.attempt));
                    }
                }
                let nonce = self.next_nonce;
                self.next_nonce += 1;
                net.send_worker(
                    thief,
                    WorkerMsg::StealReply {
                        from: self.index,
                        nonce,
                        entries: entries.clone(),
                    },
                );
                self.pending_grants.insert(
                    nonce,
                    PendingGrant {
                        thief,
                        entries,
                        retries: 0,
                    },
                );
                net.self_timer_worker(self.index, to.steal, WorkerMsg::StealRetransmit { nonce });
            }
            _ => {
                net.send_worker(
                    thief,
                    WorkerMsg::StealReply {
                        from: self.index,
                        nonce: 0,
                        entries,
                    },
                );
            }
        }
    }

    fn on_steal_reply(
        &mut self,
        from: usize,
        nonce: u64,
        entries: Vec<QueueEntry>,
        net: &mut impl Net,
    ) {
        if entries.is_empty() {
            self.continue_steal(net);
            return;
        }
        if self.hardened.is_some() && nonce != 0 {
            // Always ack — the victim retransmits until we do — and bank
            // each grant exactly once.
            net.send_worker(from, WorkerMsg::StealAck { nonce });
            if !self.seen_grants.insert((from, nonce)) {
                return;
            }
        }
        self.steal = None;
        self.stats.steals += 1;
        if self.down {
            // Thief failed mid-steal: relocate the loot.
            for entry in entries {
                self.relocate(entry, net);
            }
            return;
        }
        if self.hardened.is_some() {
            for entry in &entries {
                if let QueueEntry::Task(spec) = entry {
                    self.launched.insert((spec.job, spec.task, spec.attempt));
                }
            }
        }
        let action = self.server.enqueue_all(&mut self.queues, entries);
        if let Some(action) = action {
            self.on_action(action, net);
        }
    }

    fn on_steal_retransmit(&mut self, nonce: u64, net: &mut impl Net) {
        let Some(to) = self.hardened else { return };
        let Some(grant) = self.pending_grants.get_mut(&nonce) else {
            return; // acked in the meantime
        };
        if grant.retries < to.retries {
            grant.retries += 1;
            self.stats.retries += 1;
            let (thief, entries) = (grant.thief, grant.entries.clone());
            net.send_worker(
                thief,
                WorkerMsg::StealReply {
                    from: self.index,
                    nonce,
                    entries,
                },
            );
            net.self_timer_worker(self.index, to.steal, WorkerMsg::StealRetransmit { nonce });
        } else {
            // The thief is unreachable: hand the entries back to their
            // schedulers so stolen work is never lost.
            self.stats.timeouts_fired += 1;
            let grant = self
                .pending_grants
                .remove(&nonce)
                .expect("pending grant present");
            for entry in grant.entries {
                self.relocate(entry, net);
            }
        }
    }

    /// Converts a [`ServerAction`] into messages/timers — the prototype
    /// analogue of the simulation driver's `on_action`.
    fn on_action(&mut self, action: ServerAction, net: &mut impl Net) {
        match action {
            ServerAction::StartTask(spec) => {
                net.add_running(1);
                let occupancy = self.server.scale_duration(spec.duration);
                net.schedule_finish(self.index, occupancy);
            }
            ServerAction::RequestBind { job } => {
                net.send_dist(
                    self.owner(job),
                    DistMsg::TaskRequest {
                        job,
                        worker: self.index,
                    },
                );
                if let Some(to) = self.hardened {
                    self.bind_epoch += 1;
                    self.bind_retries = 0;
                    net.self_timer_worker(
                        self.index,
                        to.bind,
                        WorkerMsg::BindTimeout {
                            epoch: self.bind_epoch,
                        },
                    );
                }
            }
            ServerAction::BecameIdle => self.begin_steal(net),
        }
    }

    /// The running task's deadline fired: complete it and advance.
    pub(crate) fn on_task_finish(&mut self, net: &mut impl Net) {
        net.add_running(-1);
        let (spec, action) = self.server.on_task_finish(&mut self.queues);
        // Completion reporting follows the policy's routing: the class
        // determines which scheduler owns the bookkeeping, exactly as in
        // the driver's `JobRun::central` flag.
        match self.scheduler.route(spec.class) {
            Route::Central(_) => net.send_central(CentralMsg::TaskDone {
                job: spec.job,
                worker: self.index,
                estimate: spec.estimate,
                task: spec.task,
            }),
            Route::Distributed(_) => net.send_dist(
                self.owner(spec.job),
                DistMsg::TaskDone {
                    job: spec.job,
                    task: spec.task,
                },
            ),
        }
        self.on_action(action, net);
        self.sync_capacity(net);
    }

    /// Begins a steal attempt if the policy steals, we are live and no
    /// attempt is in flight (§3.6). Victims come from the policy's
    /// [`Scheduler::pick_victims_into`] over the real partition — the same
    /// draw the simulation driver performs.
    fn begin_steal(&mut self, net: &mut impl Net) {
        if self.steal_spec.is_none() || self.down || self.steal.is_some() {
            return;
        }
        self.stats.steal_attempts += 1;
        let mut victims = Vec::new();
        self.scheduler.pick_victims_in_fabric_into(
            &self.partition,
            ServerId(self.index as u32),
            self.rack_geometry,
            &mut self.rng,
            &mut self.victim_scratch,
            &mut victims,
        );
        if victims.is_empty() {
            return;
        }
        self.steal = Some(StealAttempt { victims, next: 0 });
        self.continue_steal(net);
    }

    /// Contacts the next victim of the in-flight attempt, if any.
    fn continue_steal(&mut self, net: &mut impl Net) {
        let Some(attempt) = &mut self.steal else {
            return;
        };
        if attempt.next >= attempt.victims.len() {
            self.steal = None;
            return;
        }
        let victim = attempt.victims[attempt.next].index();
        attempt.next += 1;
        net.send_worker(victim, WorkerMsg::StealRequest { thief: self.index });
        if let Some(to) = self.hardened {
            // A lost request or reply must not end the attempt: time out
            // and move to the next victim.
            self.steal_epoch += 1;
            net.self_timer_worker(
                self.index,
                to.steal,
                WorkerMsg::StealTimeout {
                    epoch: self.steal_epoch,
                },
            );
        }
    }

    /// Scenario node-down: stop accepting work, drain the queue and
    /// relocate every entry (mirrors `Cluster::fail_server` + the driver's
    /// `relocate`). A running task finishes on its own; a pending bind
    /// resolves normally and drains in place.
    fn on_down(&mut self, net: &mut impl Net) {
        if self.down {
            return; // duplicate script entry
        }
        self.down = true;
        self.steal = None;
        debug_assert!(self.drain_buf.is_empty(), "stale drain buffer");
        let mut drained = std::mem::take(&mut self.drain_buf);
        self.server.drain_queue_into(&mut self.queues, &mut drained);
        self.server.set_down(true);
        for entry in drained.drain(..) {
            if self.hardened.is_some() {
                if let QueueEntry::Task(spec) = &entry {
                    self.launched.remove(&(spec.job, spec.task, spec.attempt));
                }
            }
            self.relocate(entry, net);
        }
        self.drain_buf = drained;
        self.sync_capacity(net);
    }

    /// Sends one displaced queue entry to the scheduler that can re-place
    /// it: tasks return to the centralized scheduler (waiting-time
    /// bookkeeping follows), probes return to their owning distributed
    /// scheduler, which re-probes or abandons.
    fn relocate(&mut self, entry: QueueEntry, net: &mut impl Net) {
        match entry {
            QueueEntry::Task(spec) => {
                debug_assert!(
                    matches!(self.scheduler.route(spec.class), Route::Central(_)),
                    "queued tasks are always centrally placed"
                );
                net.send_central(CentralMsg::Relocate {
                    from: self.index,
                    spec,
                });
            }
            QueueEntry::Probe { job, class } => {
                net.send_dist(self.owner(job), DistMsg::ReProbe { job, class });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_cluster::TaskSpec;
    use hawk_core::scheduler::Hawk;
    use hawk_simcore::{SimDuration, SimTime};
    use hawk_workload::JobId;

    /// A recording Net for unit-testing the state machine in isolation.
    #[derive(Default)]
    struct RecordingNet {
        worker_msgs: Vec<(usize, WorkerMsg)>,
        dist_msgs: Vec<(usize, DistMsg)>,
        central_msgs: Vec<CentralMsg>,
        timers: Vec<(usize, SimDuration, WorkerMsg)>,
        finishes: Vec<(usize, SimDuration)>,
        running: i64,
        capacity: i64,
        done: Vec<JobId>,
    }

    impl Net for RecordingNet {
        fn send_worker(&mut self, to: usize, msg: WorkerMsg) {
            self.worker_msgs.push((to, msg));
        }
        fn send_dist(&mut self, to: usize, msg: DistMsg) {
            self.dist_msgs.push((to, msg));
        }
        fn send_central(&mut self, msg: CentralMsg) {
            self.central_msgs.push(msg);
        }
        fn schedule_finish(&mut self, worker: usize, occupancy: SimDuration) {
            self.finishes.push((worker, occupancy));
        }
        fn job_done(&mut self, job: JobId) {
            self.done.push(job);
        }
        fn add_running(&mut self, delta: i64) {
            self.running += delta;
        }
        fn add_capacity(&mut self, delta: i64) {
            self.capacity += delta;
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn self_timer_worker(&mut self, to: usize, after: SimDuration, msg: WorkerMsg) {
            self.timers.push((to, after, msg));
        }
    }

    fn hawk_worker(index: usize) -> Worker {
        Worker::new(
            index,
            Arc::new(Hawk::new(0.2)),
            Partition::new(10, 0.2),
            None,
            2,
            1.0,
            SimRng::seed_from_u64(1),
            None,
        )
    }

    fn hardened_worker(index: usize) -> Worker {
        Worker::new(
            index,
            Arc::new(Hawk::new(0.2)),
            Partition::new(10, 0.2),
            None,
            2,
            1.0,
            SimRng::seed_from_u64(1),
            Some(TimeoutSpec {
                probe: SimDuration::from_secs(30),
                bind: SimDuration::from_secs(1),
                steal: SimDuration::from_secs(1),
                retries: 2,
            }),
        )
    }

    fn task(job: u32, class: JobClass, secs: u64) -> TaskSpec {
        TaskSpec {
            job: JobId(job),
            duration: SimDuration::from_secs(secs),
            estimate: SimDuration::from_secs(secs),
            class,
            task: 0,
            attempt: 0,
        }
    }

    #[test]
    fn probe_at_idle_worker_requests_bind_from_owner() {
        let mut w = hawk_worker(0);
        let mut net = RecordingNet::default();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(3),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        // Job 3 is owned by dist scheduler 3 % 2 = 1.
        assert_eq!(
            net.dist_msgs,
            vec![(
                1,
                DistMsg::TaskRequest {
                    job: JobId(3),
                    worker: 0
                }
            )]
        );
        assert!(net.timers.is_empty(), "no timers unless hardened");
    }

    #[test]
    fn assigned_task_starts_with_speed_scaled_occupancy() {
        let mut w = Worker::new(
            0,
            Arc::new(Hawk::new(0.2)),
            Partition::new(10, 0.2),
            None,
            2,
            0.5, // half speed
            SimRng::seed_from_u64(1),
            None,
        );
        let mut net = RecordingNet::default();
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 10)), &mut net);
        assert_eq!(net.finishes, vec![(0, SimDuration::from_secs(20))]);
        assert_eq!(net.running, 1);
    }

    #[test]
    fn central_task_completion_reports_to_central() {
        let mut w = hawk_worker(0);
        let mut net = RecordingNet::default();
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 10)), &mut net);
        w.on_task_finish(&mut net);
        assert_eq!(net.running, 0);
        assert!(matches!(
            net.central_msgs[0],
            CentralMsg::TaskDone {
                job: JobId(1),
                worker: 0,
                task: 0,
                ..
            }
        ));
    }

    #[test]
    fn idle_transition_contacts_one_victim_at_a_time() {
        let mut w = hawk_worker(9); // short-partition worker of the 10-node cell
        let mut net = RecordingNet::default();
        // A long task runs and finishes with an empty queue → idle → steal.
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 5)), &mut net);
        w.on_task_finish(&mut net);
        let requests: Vec<_> = net
            .worker_msgs
            .iter()
            .filter(|(_, m)| matches!(m, WorkerMsg::StealRequest { .. }))
            .collect();
        assert_eq!(requests.len(), 1, "contacts exactly one victim at a time");
        assert_eq!(w.stats.steal_attempts, 1);
        // An empty reply advances to the next victim.
        w.handle(
            WorkerMsg::StealReply {
                from: 1,
                nonce: 0,
                entries: vec![],
            },
            &mut net,
        );
        let requests = net
            .worker_msgs
            .iter()
            .filter(|(_, m)| matches!(m, WorkerMsg::StealRequest { .. }))
            .count();
        assert_eq!(requests, 2);
    }

    #[test]
    fn steal_scan_is_the_shared_figure3_scan() {
        // Victim: executing a long task with two shorts queued → the
        // stolen group is both shorts, in order.
        let mut victim = hawk_worker(1);
        let mut net = RecordingNet::default();
        victim.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        for j in [2, 3] {
            victim.handle(
                WorkerMsg::Probe {
                    job: JobId(j),
                    class: JobClass::Short,
                    bounces: 0,
                },
                &mut net,
            );
        }
        net.worker_msgs.clear();
        victim.handle(WorkerMsg::StealRequest { thief: 9 }, &mut net);
        let (to, msg) = &net.worker_msgs[0];
        assert_eq!(*to, 9);
        match msg {
            WorkerMsg::StealReply {
                from,
                nonce,
                entries,
            } => {
                assert_eq!(*from, 1);
                assert_eq!(*nonce, 0, "no transfer nonce unless hardened");
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].job(), JobId(2));
                assert_eq!(entries[1].job(), JobId(3));
            }
            other => panic!("expected StealReply, got {other:?}"),
        }
    }

    #[test]
    fn down_worker_drains_and_relocates() {
        let mut w = hawk_worker(0);
        let mut net = RecordingNet::default();
        // Occupy the slot, then queue a central task and a probe.
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        w.handle(WorkerMsg::Assign(task(2, JobClass::Long, 100)), &mut net);
        w.handle(
            WorkerMsg::Probe {
                job: JobId(3),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        net.central_msgs.clear();
        net.dist_msgs.clear();
        w.handle(WorkerMsg::Node(NodeChange::Down(0)), &mut net);
        assert!(matches!(
            net.central_msgs[0],
            CentralMsg::Relocate { from: 0, .. }
        ));
        assert_eq!(
            net.dist_msgs,
            vec![(
                1,
                DistMsg::ReProbe {
                    job: JobId(3),
                    class: JobClass::Short
                }
            )]
        );
        // New probes arriving while down are sent back for re-probing.
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(5),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert!(matches!(net.dist_msgs[0].1, DistMsg::ReProbe { .. }));
        // The running task still finishes and reports.
        w.on_task_finish(&mut net);
        assert!(net
            .central_msgs
            .iter()
            .any(|m| matches!(m, CentralMsg::TaskDone { job: JobId(1), .. })));
        // Up restores service.
        w.handle(WorkerMsg::Node(NodeChange::Up(0)), &mut net);
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(6),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert!(matches!(net.dist_msgs[0].1, DistMsg::TaskRequest { .. }));
    }

    #[test]
    fn probe_for_down_worker_emits_exactly_one_reprobe() {
        // The ReProbe-under-churn path: a probe reaching a down worker
        // must bounce back to its owner exactly once — never strand the
        // reservation, never duplicate it.
        let mut w = hawk_worker(4);
        let mut net = RecordingNet::default();
        w.handle(WorkerMsg::Node(NodeChange::Down(4)), &mut net);
        w.handle(
            WorkerMsg::Probe {
                job: JobId(7),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert_eq!(
            net.dist_msgs,
            vec![(
                1,
                DistMsg::ReProbe {
                    job: JobId(7),
                    class: JobClass::Short
                }
            )],
            "exactly one ReProbe to the owning scheduler"
        );
        assert_eq!(
            w.server.queue_len(),
            0,
            "the probe must not queue on a down worker"
        );
    }

    #[test]
    fn bounce_goes_through_the_owning_scheduler() {
        let mut w = Worker::new(
            0,
            Arc::new(Hawk::new(0.0).probe_avoidance(2)),
            Partition::new(4, 0.0),
            None,
            2,
            1.0,
            SimRng::seed_from_u64(4),
            None,
        );
        let mut net = RecordingNet::default();
        // Occupy the slot with long work; a short probe must bounce.
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(2),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert_eq!(
            net.dist_msgs,
            vec![(
                0,
                DistMsg::Bounce {
                    job: JobId(2),
                    class: JobClass::Short,
                    bounces: 1
                }
            )]
        );
        // At the bounce limit the probe queues.
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(2),
                class: JobClass::Short,
                bounces: 2,
            },
            &mut net,
        );
        assert!(net.dist_msgs.is_empty(), "probe queued at the limit");
        assert_eq!(w.server.queue_len(), 1);
    }

    // --- Hardened-protocol units ---

    #[test]
    fn hardened_bind_retransmits_then_cancels_locally() {
        let mut w = hardened_worker(0);
        let mut net = RecordingNet::default();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(3),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert_eq!(net.dist_msgs.len(), 1, "initial TaskRequest");
        let (_, _, timer) = net.timers[0].clone();
        let WorkerMsg::BindTimeout { epoch } = timer else {
            panic!("expected a bind timer, got {timer:?}");
        };
        // Two retransmissions within the budget...
        for i in 1..=2u64 {
            w.handle(WorkerMsg::BindTimeout { epoch }, &mut net);
            assert_eq!(net.dist_msgs.len(), 1 + i as usize);
            assert_eq!(w.stats.retries, i);
        }
        // ...then the wait resolves as a local cancel: the slot is free
        // and the epoch is invalidated.
        w.handle(WorkerMsg::BindTimeout { epoch }, &mut net);
        assert_eq!(w.stats.timeouts_fired, 1);
        assert!(!w.server.is_awaiting_bind());
        // The late reply for the cancelled wait is discarded, not bound.
        w.handle(
            WorkerMsg::BindReply {
                job: JobId(3),
                task: Some(task(3, JobClass::Short, 5)),
            },
            &mut net,
        );
        assert!(!w.server.is_running(), "stale reply must not launch");
        // And a stale timer fire after resolution is a no-op.
        w.handle(WorkerMsg::BindTimeout { epoch }, &mut net);
        assert_eq!(w.stats.timeouts_fired, 1);
    }

    #[test]
    fn hardened_assign_dedups_by_job_task_attempt() {
        let mut w = hardened_worker(0);
        let mut net = RecordingNet::default();
        let spec = task(1, JobClass::Long, 10);
        w.handle(WorkerMsg::Assign(spec), &mut net);
        w.handle(WorkerMsg::Assign(spec), &mut net);
        assert_eq!(net.running, 1, "duplicate assign must not queue");
        assert_eq!(w.server.queue_len(), 0);
        // A relaunch (bumped attempt) is a distinct launch and queues.
        let mut relaunch = spec;
        relaunch.attempt = 1;
        w.handle(WorkerMsg::Assign(relaunch), &mut net);
        assert_eq!(w.server.queue_len(), 1);
    }

    #[test]
    fn hardened_steal_grant_retransmits_until_acked() {
        let mut victim = hardened_worker(1);
        let mut net = RecordingNet::default();
        victim.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        victim.handle(
            WorkerMsg::Probe {
                job: JobId(2),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        net.worker_msgs.clear();
        victim.handle(WorkerMsg::StealRequest { thief: 9 }, &mut net);
        let WorkerMsg::StealReply { nonce, .. } = &net.worker_msgs[0].1 else {
            panic!("expected a grant");
        };
        let nonce = *nonce;
        assert_ne!(nonce, 0, "hardened non-empty grants carry a nonce");
        // Unacked: the retransmit timer resends the same grant.
        victim.handle(WorkerMsg::StealRetransmit { nonce }, &mut net);
        assert_eq!(victim.stats.retries, 1);
        let grants = net
            .worker_msgs
            .iter()
            .filter(|(_, m)| matches!(m, WorkerMsg::StealReply { nonce: n, .. } if *n == nonce))
            .count();
        assert_eq!(grants, 2);
        // Acked: the buffer clears and further fires are no-ops.
        victim.handle(WorkerMsg::StealAck { nonce }, &mut net);
        victim.handle(WorkerMsg::StealRetransmit { nonce }, &mut net);
        assert_eq!(victim.stats.retries, 1);
        assert_eq!(victim.stats.timeouts_fired, 0);
    }

    #[test]
    fn hardened_steal_grant_gives_up_and_relocates() {
        let mut victim = hardened_worker(1);
        let mut net = RecordingNet::default();
        victim.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        victim.handle(
            WorkerMsg::Probe {
                job: JobId(2),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        victim.handle(WorkerMsg::StealRequest { thief: 9 }, &mut net);
        let WorkerMsg::StealReply { nonce, .. } = net
            .worker_msgs
            .iter()
            .rev()
            .find(|(_, m)| matches!(m, WorkerMsg::StealReply { .. }))
            .unwrap()
            .1
            .clone()
        else {
            unreachable!();
        };
        net.dist_msgs.clear();
        // Exhaust the retry budget without an ack.
        for _ in 0..3 {
            victim.handle(WorkerMsg::StealRetransmit { nonce }, &mut net);
        }
        assert_eq!(victim.stats.timeouts_fired, 1);
        assert_eq!(
            net.dist_msgs,
            vec![(
                0,
                DistMsg::ReProbe {
                    job: JobId(2),
                    class: JobClass::Short
                }
            )],
            "an undeliverable stolen probe returns to its scheduler"
        );
    }

    #[test]
    fn hardened_thief_dedups_grants_and_always_acks() {
        let mut thief = hardened_worker(9);
        let mut net = RecordingNet::default();
        // Make the thief idle so the loot starts immediately.
        let entries = vec![QueueEntry::Probe {
            job: JobId(2),
            class: JobClass::Short,
        }];
        for _ in 0..2 {
            thief.handle(
                WorkerMsg::StealReply {
                    from: 1,
                    nonce: 42,
                    entries: entries.clone(),
                },
                &mut net,
            );
        }
        let acks = net
            .worker_msgs
            .iter()
            .filter(|(to, m)| *to == 1 && matches!(m, WorkerMsg::StealAck { nonce: 42 }))
            .count();
        assert_eq!(acks, 2, "every delivery is acked");
        assert_eq!(thief.stats.steals, 1, "the grant is banked exactly once");
        let binds = net
            .dist_msgs
            .iter()
            .filter(|(_, m)| matches!(m, DistMsg::TaskRequest { .. }))
            .count();
        assert_eq!(binds, 1, "the probe binds once, not per retransmit");
    }
}
