//! The worker (node monitor) daemon.
//!
//! One daemon per cluster node. Since the prototype became a backend for
//! the shared policies, the worker is not a reimplementation of the
//! simulator's server — it *embeds* one: each worker owns a real
//! [`hawk_cluster::Server`] plus its private [`QueueSlab`], so the FIFO
//! queue, the late-binding slot states, the packed stat word and the
//! Figure 3 steal scan ([`hawk_cluster::steal`]) are byte-for-byte the
//! same code both backends run. Policy decisions route through the shared
//! [`Scheduler`] trait:
//!
//! * steal victims come from [`Scheduler::pick_victims_into`] over the
//!   real [`Partition`] (§3.6);
//! * steal granularity comes from [`Scheduler::steal`];
//! * probe bouncing asks [`Scheduler::bounce_probe`] against the worker's
//!   own [`Server`] state (the Eagle-style avoidance extension).
//!
//! The daemon is transport- and clock-agnostic: it reacts to
//! [`WorkerMsg`]s and emits effects through [`Net`], so the same state
//! machine runs on an OS thread (wall clock, mpsc channels) and inside
//! the deterministic virtual-clock router.
//!
//! Stealing is a non-blocking state machine, as in the paper's prototype:
//! an idle worker contacts one victim at a time and keeps servicing
//! messages; an empty reply advances to the next victim, a non-empty one
//! enqueues the loot.

use std::sync::Arc;

use hawk_cluster::steal::{steal_from_with_into, StealScratch};
use hawk_cluster::{
    Partition, QueueEntry, QueueSlab, Server, ServerAction, ServerId, StealGranularity,
};
use hawk_core::{Route, Scheduler, StealSpec};
use hawk_simcore::SimRng;
use hawk_workload::scenario::NodeChange;
use hawk_workload::JobClass;

use crate::msg::{CentralMsg, DistMsg, Net, WorkerMsg};

/// In-flight steal attempt: remaining victims to contact, in order.
struct StealAttempt {
    victims: Vec<ServerId>,
    next: usize,
}

/// Per-worker counters folded into the [`ProtoReport`](crate::ProtoReport).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WorkerStats {
    pub steals: u64,
    pub steal_attempts: u64,
    pub handled: u64,
}

/// The worker daemon state machine. See the module docs.
pub(crate) struct Worker {
    index: usize,
    /// The *simulator's* server state machine, embedded.
    server: Server,
    /// Private queue arena backing `server` (list `index`).
    queues: QueueSlab,
    scheduler: Arc<dyn Scheduler>,
    partition: Partition,
    steal_spec: Option<StealSpec>,
    steal: Option<StealAttempt>,
    dist_count: usize,
    rng: SimRng,
    /// True while out of service (scenario node-down).
    down: bool,
    /// Whether this worker currently counts toward usable capacity:
    /// in service, or down but still draining a running task — the
    /// simulator's utilization denominator (`Cluster::utilization`).
    counts_as_capacity: bool,
    victim_scratch: Vec<usize>,
    steal_scratch: StealScratch,
    steal_out: Vec<QueueEntry>,
    drain_buf: Vec<QueueEntry>,
    pub(crate) stats: WorkerStats,
}

impl Worker {
    pub(crate) fn new(
        index: usize,
        scheduler: Arc<dyn Scheduler>,
        partition: Partition,
        dist_count: usize,
        speed: f64,
        rng: SimRng,
    ) -> Self {
        // The embedded server's id is *local*: it only selects the slab
        // list, and this worker owns a single-list slab — so per-worker
        // queue storage is O(live entries), not O(worker index). The
        // worker's cluster-wide identity (`index`) is passed explicitly
        // wherever policy code needs it (steal-victim picks, messages).
        let mut server = Server::new(ServerId(0));
        server.set_speed(speed);
        Worker {
            index,
            server,
            queues: QueueSlab::new(1),
            steal_spec: scheduler.steal(),
            scheduler,
            partition,
            steal: None,
            dist_count,
            rng,
            down: false,
            counts_as_capacity: true,
            victim_scratch: Vec::new(),
            steal_scratch: StealScratch::new(),
            steal_out: Vec::new(),
            drain_buf: Vec::new(),
            stats: WorkerStats::default(),
        }
    }

    /// The distributed scheduler owning `job` (submission routing and all
    /// per-job messages use the same mapping).
    fn owner(&self, job: hawk_workload::JobId) -> usize {
        job.index() % self.dist_count
    }

    /// Re-derives this worker's usable-capacity contribution (1 while in
    /// service or draining a running task, else 0) and reports the delta.
    /// Called after every transition that can change it: down, up, a bind
    /// starting a task on a down worker, a draining task finishing.
    fn sync_capacity(&mut self, net: &mut impl Net) {
        let counts = !self.down || self.server.is_running();
        if counts != self.counts_as_capacity {
            self.counts_as_capacity = counts;
            net.add_capacity(if counts { 1 } else { -1 });
        }
    }

    /// Handles one message; returns `true` on shutdown.
    pub(crate) fn handle(&mut self, msg: WorkerMsg, net: &mut impl Net) -> bool {
        self.stats.handled += 1;
        match msg {
            WorkerMsg::Probe {
                job,
                class,
                bounces,
            } => self.on_probe(job, class, bounces, net),
            WorkerMsg::Assign(spec) => {
                if self.down {
                    // Arrived in flight while we failed: relocate like a
                    // drained entry.
                    self.relocate(QueueEntry::Task(spec), net);
                    return false;
                }
                let action = self
                    .server
                    .enqueue(&mut self.queues, QueueEntry::Task(spec));
                if let Some(action) = action {
                    self.on_action(action, net);
                }
            }
            WorkerMsg::BindReply { task } => {
                // A down worker may still be awaiting a bind: the response
                // resolves normally and a bound task drains in place,
                // exactly like the simulator's draining slots.
                let action = self.server.on_bind_response(&mut self.queues, task);
                self.on_action(action, net);
                self.sync_capacity(net);
            }
            WorkerMsg::StealRequest { thief } => {
                let granularity = self
                    .steal_spec
                    .map(|s| s.granularity)
                    .unwrap_or(StealGranularity::FirstBlockedGroup);
                debug_assert!(self.steal_out.is_empty(), "stale steal batch");
                steal_from_with_into(
                    &mut self.server,
                    &mut self.queues,
                    granularity,
                    &mut self.rng,
                    &mut self.steal_scratch,
                    &mut self.steal_out,
                );
                // Entries must never be dropped: the reply carries them
                // even when the thief may have failed (the thief's handler
                // relocates them in that case).
                net.send_worker(
                    thief,
                    WorkerMsg::StealReply {
                        entries: std::mem::take(&mut self.steal_out),
                    },
                );
            }
            WorkerMsg::StealReply { entries } => {
                if entries.is_empty() {
                    self.continue_steal(net);
                } else {
                    self.steal = None;
                    self.stats.steals += 1;
                    if self.down {
                        // Thief failed mid-steal: relocate the loot.
                        for entry in entries {
                            self.relocate(entry, net);
                        }
                        return false;
                    }
                    let action = self.server.enqueue_all(&mut self.queues, entries);
                    if let Some(action) = action {
                        self.on_action(action, net);
                    }
                }
            }
            WorkerMsg::Node(NodeChange::Down(_)) => self.on_down(net),
            WorkerMsg::Node(NodeChange::Up(_)) => {
                self.down = false;
                self.server.set_down(false);
                self.sync_capacity(net);
            }
            WorkerMsg::Shutdown => return true,
        }
        false
    }

    fn on_probe(
        &mut self,
        job: hawk_workload::JobId,
        class: JobClass,
        bounces: u8,
        net: &mut impl Net,
    ) {
        if self.down {
            net.send_dist(self.owner(job), DistMsg::ReProbe { job, class });
            return;
        }
        if self.scheduler.bounce_probe(&self.server, class, bounces) {
            // Long-aware probe avoidance: ask the owning scheduler to
            // retry elsewhere (it holds the live membership view). Costs
            // one extra hop relative to the simulator's direct re-probe.
            net.send_dist(
                self.owner(job),
                DistMsg::Bounce {
                    job,
                    class,
                    bounces: bounces + 1,
                },
            );
            return;
        }
        let action = self
            .server
            .enqueue(&mut self.queues, QueueEntry::Probe { job, class });
        if let Some(action) = action {
            self.on_action(action, net);
        }
    }

    /// Converts a [`ServerAction`] into messages/timers — the prototype
    /// analogue of the simulation driver's `on_action`.
    fn on_action(&mut self, action: ServerAction, net: &mut impl Net) {
        match action {
            ServerAction::StartTask(spec) => {
                net.add_running(1);
                let occupancy = self.server.scale_duration(spec.duration);
                net.schedule_finish(self.index, occupancy);
            }
            ServerAction::RequestBind { job } => {
                net.send_dist(
                    self.owner(job),
                    DistMsg::TaskRequest {
                        job,
                        worker: self.index,
                    },
                );
            }
            ServerAction::BecameIdle => self.begin_steal(net),
        }
    }

    /// The running task's deadline fired: complete it and advance.
    pub(crate) fn on_task_finish(&mut self, net: &mut impl Net) {
        net.add_running(-1);
        let (spec, action) = self.server.on_task_finish(&mut self.queues);
        // Completion reporting follows the policy's routing: the class
        // determines which scheduler owns the bookkeeping, exactly as in
        // the driver's `JobRun::central` flag.
        match self.scheduler.route(spec.class) {
            Route::Central(_) => net.send_central(CentralMsg::TaskDone {
                job: spec.job,
                worker: self.index,
                estimate: spec.estimate,
            }),
            Route::Distributed(_) => {
                net.send_dist(self.owner(spec.job), DistMsg::TaskDone { job: spec.job })
            }
        }
        self.on_action(action, net);
        self.sync_capacity(net);
    }

    /// Begins a steal attempt if the policy steals, we are live and no
    /// attempt is in flight (§3.6). Victims come from the policy's
    /// [`Scheduler::pick_victims_into`] over the real partition — the same
    /// draw the simulation driver performs.
    fn begin_steal(&mut self, net: &mut impl Net) {
        if self.steal_spec.is_none() || self.down || self.steal.is_some() {
            return;
        }
        self.stats.steal_attempts += 1;
        let mut victims = Vec::new();
        self.scheduler.pick_victims_into(
            &self.partition,
            ServerId(self.index as u32),
            &mut self.rng,
            &mut self.victim_scratch,
            &mut victims,
        );
        if victims.is_empty() {
            return;
        }
        self.steal = Some(StealAttempt { victims, next: 0 });
        self.continue_steal(net);
    }

    /// Contacts the next victim of the in-flight attempt, if any.
    fn continue_steal(&mut self, net: &mut impl Net) {
        let Some(attempt) = &mut self.steal else {
            return;
        };
        if attempt.next >= attempt.victims.len() {
            self.steal = None;
            return;
        }
        let victim = attempt.victims[attempt.next].index();
        attempt.next += 1;
        net.send_worker(victim, WorkerMsg::StealRequest { thief: self.index });
    }

    /// Scenario node-down: stop accepting work, drain the queue and
    /// relocate every entry (mirrors `Cluster::fail_server` + the driver's
    /// `relocate`). A running task finishes on its own; a pending bind
    /// resolves normally and drains in place.
    fn on_down(&mut self, net: &mut impl Net) {
        if self.down {
            return; // duplicate script entry
        }
        self.down = true;
        self.steal = None;
        debug_assert!(self.drain_buf.is_empty(), "stale drain buffer");
        let mut drained = std::mem::take(&mut self.drain_buf);
        self.server.drain_queue_into(&mut self.queues, &mut drained);
        self.server.set_down(true);
        for entry in drained.drain(..) {
            self.relocate(entry, net);
        }
        self.drain_buf = drained;
        self.sync_capacity(net);
    }

    /// Sends one displaced queue entry to the scheduler that can re-place
    /// it: tasks return to the centralized scheduler (waiting-time
    /// bookkeeping follows), probes return to their owning distributed
    /// scheduler, which re-probes or abandons.
    fn relocate(&mut self, entry: QueueEntry, net: &mut impl Net) {
        match entry {
            QueueEntry::Task(spec) => {
                debug_assert!(
                    matches!(self.scheduler.route(spec.class), Route::Central(_)),
                    "queued tasks are always centrally placed"
                );
                net.send_central(CentralMsg::Relocate {
                    from: self.index,
                    spec,
                });
            }
            QueueEntry::Probe { job, class } => {
                net.send_dist(self.owner(job), DistMsg::ReProbe { job, class });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_cluster::TaskSpec;
    use hawk_core::scheduler::Hawk;
    use hawk_simcore::SimDuration;
    use hawk_workload::JobId;

    /// A recording Net for unit-testing the state machine in isolation.
    #[derive(Default)]
    struct RecordingNet {
        worker_msgs: Vec<(usize, WorkerMsg)>,
        dist_msgs: Vec<(usize, DistMsg)>,
        central_msgs: Vec<CentralMsg>,
        finishes: Vec<(usize, SimDuration)>,
        running: i64,
        capacity: i64,
        done: Vec<JobId>,
    }

    impl Net for RecordingNet {
        fn send_worker(&mut self, to: usize, msg: WorkerMsg) {
            self.worker_msgs.push((to, msg));
        }
        fn send_dist(&mut self, to: usize, msg: DistMsg) {
            self.dist_msgs.push((to, msg));
        }
        fn send_central(&mut self, msg: CentralMsg) {
            self.central_msgs.push(msg);
        }
        fn schedule_finish(&mut self, worker: usize, occupancy: SimDuration) {
            self.finishes.push((worker, occupancy));
        }
        fn job_done(&mut self, job: JobId) {
            self.done.push(job);
        }
        fn add_running(&mut self, delta: i64) {
            self.running += delta;
        }
        fn add_capacity(&mut self, delta: i64) {
            self.capacity += delta;
        }
    }

    fn hawk_worker(index: usize) -> Worker {
        Worker::new(
            index,
            Arc::new(Hawk::new(0.2)),
            Partition::new(10, 0.2),
            2,
            1.0,
            SimRng::seed_from_u64(1),
        )
    }

    fn task(job: u32, class: JobClass, secs: u64) -> TaskSpec {
        TaskSpec {
            job: JobId(job),
            duration: SimDuration::from_secs(secs),
            estimate: SimDuration::from_secs(secs),
            class,
        }
    }

    #[test]
    fn probe_at_idle_worker_requests_bind_from_owner() {
        let mut w = hawk_worker(0);
        let mut net = RecordingNet::default();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(3),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        // Job 3 is owned by dist scheduler 3 % 2 = 1.
        assert_eq!(
            net.dist_msgs,
            vec![(
                1,
                DistMsg::TaskRequest {
                    job: JobId(3),
                    worker: 0
                }
            )]
        );
    }

    #[test]
    fn assigned_task_starts_with_speed_scaled_occupancy() {
        let mut w = Worker::new(
            0,
            Arc::new(Hawk::new(0.2)),
            Partition::new(10, 0.2),
            2,
            0.5, // half speed
            SimRng::seed_from_u64(1),
        );
        let mut net = RecordingNet::default();
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 10)), &mut net);
        assert_eq!(net.finishes, vec![(0, SimDuration::from_secs(20))]);
        assert_eq!(net.running, 1);
    }

    #[test]
    fn central_task_completion_reports_to_central() {
        let mut w = hawk_worker(0);
        let mut net = RecordingNet::default();
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 10)), &mut net);
        w.on_task_finish(&mut net);
        assert_eq!(net.running, 0);
        assert!(matches!(
            net.central_msgs[0],
            CentralMsg::TaskDone {
                job: JobId(1),
                worker: 0,
                ..
            }
        ));
    }

    #[test]
    fn idle_transition_contacts_one_victim_at_a_time() {
        let mut w = hawk_worker(9); // short-partition worker of the 10-node cell
        let mut net = RecordingNet::default();
        // A long task runs and finishes with an empty queue → idle → steal.
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 5)), &mut net);
        w.on_task_finish(&mut net);
        let requests: Vec<_> = net
            .worker_msgs
            .iter()
            .filter(|(_, m)| matches!(m, WorkerMsg::StealRequest { .. }))
            .collect();
        assert_eq!(requests.len(), 1, "contacts exactly one victim at a time");
        assert_eq!(w.stats.steal_attempts, 1);
        // An empty reply advances to the next victim.
        w.handle(WorkerMsg::StealReply { entries: vec![] }, &mut net);
        let requests = net
            .worker_msgs
            .iter()
            .filter(|(_, m)| matches!(m, WorkerMsg::StealRequest { .. }))
            .count();
        assert_eq!(requests, 2);
    }

    #[test]
    fn steal_scan_is_the_shared_figure3_scan() {
        // Victim: executing a long task with two shorts queued → the
        // stolen group is both shorts, in order.
        let mut victim = hawk_worker(1);
        let mut net = RecordingNet::default();
        victim.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        for j in [2, 3] {
            victim.handle(
                WorkerMsg::Probe {
                    job: JobId(j),
                    class: JobClass::Short,
                    bounces: 0,
                },
                &mut net,
            );
        }
        net.worker_msgs.clear();
        victim.handle(WorkerMsg::StealRequest { thief: 9 }, &mut net);
        let (to, msg) = &net.worker_msgs[0];
        assert_eq!(*to, 9);
        match msg {
            WorkerMsg::StealReply { entries } => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].job(), JobId(2));
                assert_eq!(entries[1].job(), JobId(3));
            }
            other => panic!("expected StealReply, got {other:?}"),
        }
    }

    #[test]
    fn down_worker_drains_and_relocates() {
        let mut w = hawk_worker(0);
        let mut net = RecordingNet::default();
        // Occupy the slot, then queue a central task and a probe.
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        w.handle(WorkerMsg::Assign(task(2, JobClass::Long, 100)), &mut net);
        w.handle(
            WorkerMsg::Probe {
                job: JobId(3),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        net.central_msgs.clear();
        net.dist_msgs.clear();
        w.handle(WorkerMsg::Node(NodeChange::Down(0)), &mut net);
        assert!(matches!(
            net.central_msgs[0],
            CentralMsg::Relocate { from: 0, .. }
        ));
        assert_eq!(
            net.dist_msgs,
            vec![(
                1,
                DistMsg::ReProbe {
                    job: JobId(3),
                    class: JobClass::Short
                }
            )]
        );
        // New probes arriving while down are sent back for re-probing.
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(5),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert!(matches!(net.dist_msgs[0].1, DistMsg::ReProbe { .. }));
        // The running task still finishes and reports.
        w.on_task_finish(&mut net);
        assert!(net
            .central_msgs
            .iter()
            .any(|m| matches!(m, CentralMsg::TaskDone { job: JobId(1), .. })));
        // Up restores service.
        w.handle(WorkerMsg::Node(NodeChange::Up(0)), &mut net);
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(6),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert!(matches!(net.dist_msgs[0].1, DistMsg::TaskRequest { .. }));
    }

    #[test]
    fn bounce_goes_through_the_owning_scheduler() {
        let mut w = Worker::new(
            0,
            Arc::new(Hawk::new(0.0).probe_avoidance(2)),
            Partition::new(4, 0.0),
            2,
            1.0,
            SimRng::seed_from_u64(4),
        );
        let mut net = RecordingNet::default();
        // Occupy the slot with long work; a short probe must bounce.
        w.handle(WorkerMsg::Assign(task(1, JobClass::Long, 100)), &mut net);
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(2),
                class: JobClass::Short,
                bounces: 0,
            },
            &mut net,
        );
        assert_eq!(
            net.dist_msgs,
            vec![(
                0,
                DistMsg::Bounce {
                    job: JobId(2),
                    class: JobClass::Short,
                    bounces: 1
                }
            )]
        );
        // At the bounce limit the probe queues.
        net.dist_msgs.clear();
        w.handle(
            WorkerMsg::Probe {
                job: JobId(2),
                class: JobClass::Short,
                bounces: 2,
            },
            &mut net,
        );
        assert!(net.dist_msgs.is_empty(), "probe queued at the limit");
        assert_eq!(w.server.queue_len(), 1);
    }
}
