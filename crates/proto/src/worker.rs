//! The worker (node monitor) thread.
//!
//! One thread per simulated node. The worker owns a FIFO queue of probes
//! and tasks; "executing" a task means holding a real-time deadline while
//! continuing to service messages — just like a Sparrow node monitor whose
//! slot is occupied by a sleep task. This keeps the worker responsive to
//! steal requests mid-execution, which the stealing protocol requires.
//!
//! Stealing is a non-blocking state machine: an idle worker sends a steal
//! request to one victim at a time and keeps processing messages; an empty
//! reply advances to the next victim, a non-empty one enqueues the loot.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::Instant;

use hawk_simcore::SimRng;
use std::sync::mpsc::{Receiver, RecvTimeoutError};

use crate::msg::{CentralMsg, DistMsg, Entry, ProtoTask, TaskOrigin, WorkerMsg};
use crate::runtime::Topology;

/// In-flight steal attempt: the remaining victims to contact.
struct StealAttempt {
    victims: Vec<usize>,
    next: usize,
}

pub(crate) struct Worker {
    index: usize,
    rx: Receiver<WorkerMsg>,
    topo: Topology,
    queue: VecDeque<Entry>,
    /// Deadline of the currently executing task, with its spec.
    running: Option<(Instant, ProtoTask)>,
    /// True while blocked on a bind round trip for the queue head.
    awaiting_bind: bool,
    steal: Option<StealAttempt>,
    steal_cap: Option<usize>,
    general_count: usize,
    rng: SimRng,
}

impl Worker {
    pub(crate) fn new(
        index: usize,
        rx: Receiver<WorkerMsg>,
        topo: Topology,
        steal_cap: Option<usize>,
        general_count: usize,
        seed: u64,
    ) -> Self {
        Worker {
            index,
            rx,
            topo,
            queue: VecDeque::new(),
            running: None,
            awaiting_bind: false,
            steal: None,
            steal_cap,
            general_count,
            rng: SimRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9)),
        }
    }

    /// The thread body: service messages and execution deadlines until
    /// shutdown.
    pub(crate) fn run(mut self) {
        loop {
            if let Some((deadline, _)) = self.running {
                let now = Instant::now();
                if now >= deadline {
                    self.finish_running();
                    continue;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(msg) => {
                        if self.handle(msg) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            } else {
                match self.rx.recv() {
                    Ok(msg) => {
                        if self.handle(msg) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    }

    /// Handles one message; returns true on shutdown.
    fn handle(&mut self, msg: WorkerMsg) -> bool {
        match msg {
            WorkerMsg::Probe { job, sched, class } => {
                self.queue.push_back(Entry::Probe { job, sched, class });
                self.maybe_advance();
            }
            WorkerMsg::Assign(task) => {
                self.queue.push_back(Entry::Task(task));
                self.maybe_advance();
            }
            WorkerMsg::BindReply { task } => {
                self.awaiting_bind = false;
                match task {
                    Some(task) => self.start(task),
                    None => self.maybe_advance(),
                }
            }
            WorkerMsg::StealRequest { thief } => {
                let entries = self.scan_steal_group();
                // Losing the reply (thief already gone) is harmless only if
                // nothing was stolen; entries must never be dropped.
                let _ = self.topo.workers[thief].send(WorkerMsg::StealReply { entries });
            }
            WorkerMsg::StealReply { entries } => {
                if entries.is_empty() {
                    self.continue_steal();
                } else {
                    self.steal = None;
                    self.queue.extend(entries);
                    self.maybe_advance();
                }
            }
            WorkerMsg::Shutdown => return true,
        }
        false
    }

    /// Starts processing the queue head if the slot is free.
    fn maybe_advance(&mut self) {
        if self.running.is_some() || self.awaiting_bind {
            return;
        }
        match self.queue.pop_front() {
            Some(Entry::Task(task)) => self.start(task),
            Some(Entry::Probe { job, sched, .. }) => {
                self.awaiting_bind = true;
                let _ = self.topo.dscheds[sched].send(DistMsg::TaskRequest {
                    job,
                    worker: self.index,
                });
            }
            None => self.begin_steal(),
        }
    }

    fn start(&mut self, task: ProtoTask) {
        self.topo.running_count.fetch_add(1, Ordering::Relaxed);
        self.running = Some((Instant::now() + task.duration, task));
    }

    fn finish_running(&mut self) {
        let (_, task) = self.running.take().expect("a task is running");
        self.topo.running_count.fetch_sub(1, Ordering::Relaxed);
        match task.origin {
            TaskOrigin::Central => {
                let _ = self.topo.central.send(CentralMsg::TaskDone {
                    job: task.job,
                    worker: self.index,
                    estimate_us: task.estimate_us,
                });
            }
            TaskOrigin::Distributed { index } => {
                let _ = self.topo.dscheds[index].send(DistMsg::TaskDone { job: task.job });
            }
        }
        self.maybe_advance();
    }

    /// Begins a steal attempt if stealing is enabled and none is running.
    fn begin_steal(&mut self) {
        let Some(cap) = self.steal_cap else { return };
        if self.steal.is_some() || self.general_count == 0 {
            return;
        }
        // Distinct victims from the general partition, excluding self.
        let candidates = if self.index < self.general_count {
            self.general_count - 1
        } else {
            self.general_count
        };
        if candidates == 0 {
            return;
        }
        let count = cap.min(candidates);
        let victims: Vec<usize> = self
            .rng
            .sample_distinct(candidates, count)
            .into_iter()
            .map(|i| {
                if self.index < self.general_count && i >= self.index {
                    i + 1
                } else {
                    i
                }
            })
            .collect();
        self.steal = Some(StealAttempt { victims, next: 0 });
        self.continue_steal();
    }

    /// Contacts the next victim of the in-flight steal attempt, if any.
    fn continue_steal(&mut self) {
        let Some(attempt) = &mut self.steal else {
            return;
        };
        if attempt.next >= attempt.victims.len() {
            self.steal = None;
            return;
        }
        let victim = attempt.victims[attempt.next];
        attempt.next += 1;
        let _ = self.topo.workers[victim].send(WorkerMsg::StealRequest { thief: self.index });
    }

    /// The Figure 3 victim scan, over (slot, queue): the first run of
    /// consecutive short entries after the first long element. Mirrors
    /// `hawk_cluster::steal::eligible_group`.
    fn scan_steal_group(&mut self) -> Vec<Entry> {
        let slot_is_long = self
            .running
            .map(|(_, t)| t.class.is_long())
            .unwrap_or(false);
        let mut seen_long = slot_is_long;
        let mut start = None;
        let mut len = 0usize;
        for (i, entry) in self.queue.iter().enumerate() {
            if entry.is_long() {
                if start.is_some() {
                    break;
                }
                seen_long = true;
            } else if seen_long {
                if start.is_none() {
                    start = Some(i);
                }
                len += 1;
            }
        }
        match start {
            Some(s) => self.queue.drain(s..s + len).collect(),
            None => Vec::new(),
        }
    }
}
