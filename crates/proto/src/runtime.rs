//! Cluster bring-up, trace feeding and result collection for both
//! execution modes.
//!
//! [`run_prototype`] builds the daemon set — one [`Worker`] per node,
//! `dist_schedulers` [`DistScheduler`]s, and a [`CentralDaemon`] iff the
//! policy routes any class centrally — and executes it under the
//! configured [`ExecutionMode`]:
//!
//! * [`ExecutionMode::RealTime`] — every daemon is an OS thread with an
//!   mpsc mailbox; task execution is a real-time deadline (the thread
//!   stays responsive to probes, bind replies and steal requests while
//!   "executing", exactly like a Sparrow node monitor hosting a sleep
//!   task, §4.10). Results carry real messaging noise and are *not*
//!   bit-deterministic.
//! * [`ExecutionMode::Virtual`] — the same daemons run single-threaded
//!   under a deterministic router: messages are delivered in
//!   `(virtual time, sequence)` order after a delay charged by the
//!   configured network [`TopologySpec`] (constant under the paper
//!   default, placement- and load-dependent on a fat tree), and
//!   "sleeping" advances a virtual clock. Two runs with the same seed are
//!   byte-identical, which is what lets `tests/backend_conformance.rs`
//!   cross-check the prototype against the simulator.
//!
//! # RNG streams
//!
//! All randomness derives from `ProtoConfig::seed` by stream splitting,
//! in a frozen order: one stream per worker (steal-victim draws), in
//! worker-index order, then one per distributed scheduler (probe draws),
//! in scheduler-index order. Adding streams later must append to this
//! order, never reorder it — the virtual mode's byte-identical replay
//! depends on it (the same rule PR 4 established for the driver's
//! `scenario_rng`).

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hawk_cluster::{NetworkModel, Partition};
use hawk_core::{
    AdmissionDecision, AdmissionPlan, AdmissionPolicy, Route, Scheduler, Scope, StreamingStats,
    StreamingSummary,
};
use hawk_net::{NetworkStats, TopologySpec};
use hawk_simcore::stats::StreamingQuantiles;
use hawk_simcore::{SimDuration, SimRng, SimTime};
use hawk_workload::classify::Cutoff;
use hawk_workload::scenario::{DynamicsScript, NodeChange, SpeedSpec};
use hawk_workload::{JobClass, JobId, Trace};

use crate::fault::FaultSpec;
use crate::msg::{CentralMsg, DistMsg, Net, WorkerMsg};
use crate::report::{ProtoJobResult, ProtoReport};
use crate::scheduler::{CentralDaemon, DistScheduler, SchedStats};
use crate::virt::run_virtual;
use crate::worker::{Worker, WorkerStats};

/// How the prototype cluster executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    /// Live OS threads on the wall clock: real concurrency, real
    /// messaging noise, non-deterministic results (the paper's §4.10
    /// deployment model). Trace times are wall-clock offsets — scale the
    /// trace down first (see `hawk_workload::sample`).
    RealTime,
    /// Single-threaded deterministic execution on a virtual clock:
    /// byte-identical results per seed, no wall time spent "sleeping".
    Virtual {
        /// The network topology the virtual router charges every
        /// daemon-to-daemon message against — the same
        /// [`TopologySpec`] the simulation driver builds its
        /// [`Topology`](hawk_net::Topology) from, so a conformance pair
        /// runs both backends over identical network models.
        /// [`TopologySpec::paper_default()`] reproduces the historical
        /// constant 0.5 ms delay (§4.1).
        topology: TopologySpec,
    },
}

impl ExecutionMode {
    /// The virtual-clock mode with a flat constant one-way `message_delay`
    /// — the pre-topology spelling, kept so existing callers keep
    /// compiling (pinned by `tests/legacy_shims.rs`).
    #[deprecated(
        since = "0.6.0",
        note = "use `ExecutionMode::Virtual { topology: TopologySpec::Constant(..) }`"
    )]
    pub fn virtual_with_delay(message_delay: SimDuration) -> Self {
        ExecutionMode::Virtual {
            topology: TopologySpec::Constant(NetworkModel {
                delay: message_delay,
                steal_transfer_delay: SimDuration::ZERO,
            }),
        }
    }
}

/// Prototype cluster configuration (paper defaults: 100 nodes, 10
/// distributed schedulers, 1 centralized scheduler, §4.1).
///
/// The *policy* — routing, partition fraction, probe ratio, steal spec —
/// is no longer configured here: it comes from the `Arc<dyn Scheduler>`
/// passed to [`run_prototype`], the same value the simulator runs.
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Number of worker (node monitor) daemons.
    pub workers: usize,
    /// Number of distributed scheduler daemons.
    pub dist_schedulers: usize,
    /// Short/long cutoff on the (already scaled) estimated task runtime.
    pub cutoff: Cutoff,
    /// Utilization sampling period (virtual or wall time, per mode).
    pub util_interval: SimDuration,
    /// Seed for probe and steal randomness.
    pub seed: u64,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Scripted node down/up events (scenario dynamics).
    pub dynamics: DynamicsScript,
    /// Per-server execution-speed profile (scenario heterogeneity).
    pub speeds: SpeedSpec,
    /// Network fault injection ([`ExecutionMode::Virtual`] only).
    /// [`FaultSpec::none()`] — the default — takes the pre-fault code
    /// path and is byte-identical to historical runs; a lossy spec must
    /// also enable timeouts ([`FaultSpec::hardened`]) or liveness cannot
    /// be guaranteed.
    pub faults: FaultSpec,
    /// Overload admission control. `None` — the default — admits every
    /// job and is byte-identical to a config without the field. `Some`
    /// derives the same [`AdmissionPlan`] the simulator computes (a pure
    /// function of trace, workers, cutoff and dynamics), so shed and
    /// deferral counts agree exactly across backends per seed.
    pub admission: Option<AdmissionPolicy>,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            workers: 100,
            dist_schedulers: 10,
            // The Google cutoff under the paper's 1000× time scale-down.
            cutoff: Cutoff(SimDuration::from_micros(1_129_000)),
            util_interval: SimDuration::from_millis(50),
            seed: 0x4a77_2015,
            mode: ExecutionMode::RealTime,
            dynamics: DynamicsScript::none(),
            speeds: SpeedSpec::Uniform,
            faults: FaultSpec::none(),
            admission: None,
        }
    }
}

/// The full daemon set of one prototype cluster, plus the per-job state
/// the runtimes feed from.
pub(crate) struct ClusterSetup {
    pub workers: Vec<Worker>,
    pub dists: Vec<DistScheduler>,
    pub central: Option<CentralDaemon>,
    /// Scheduled class per job (exact estimates under the cutoff).
    pub classes: Vec<JobClass>,
    /// Whether each job routes centrally.
    pub central_route: Vec<bool>,
}

/// Report-counter totals folded from every daemon's stats — one
/// implementation for both runtimes, so a counter added to
/// [`WorkerStats`]/[`SchedStats`] cannot be folded in one mode and
/// silently report zero in the other.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FoldedStats {
    pub steals: u64,
    pub steal_attempts: u64,
    pub migrations: u64,
    pub abandons: u64,
    pub messages: u64,
    pub retries: u64,
    pub timeouts_fired: u64,
    pub relaunched: u64,
}

pub(crate) fn fold_stats(
    workers: impl IntoIterator<Item = WorkerStats>,
    scheds: impl IntoIterator<Item = SchedStats>,
) -> FoldedStats {
    let mut folded = FoldedStats::default();
    for stats in workers {
        folded.steals += stats.steals;
        folded.steal_attempts += stats.steal_attempts;
        folded.messages += stats.handled;
        folded.retries += stats.retries;
        folded.timeouts_fired += stats.timeouts_fired;
    }
    for stats in scheds {
        folded.migrations += stats.migrations;
        folded.abandons += stats.abandons;
        folded.messages += stats.handled;
        folded.retries += stats.retries;
        folded.timeouts_fired += stats.timeouts_fired;
        folded.relaunched += stats.relaunched;
    }
    folded
}

/// Folds the per-job runtimes into the bounded streaming sinks, per true
/// class (the prototype's exact estimates make scheduled == true class).
/// Shed jobs never ran, so — like the simulator's sinks — they are
/// excluded; admitted and deferred jobs record completion − submission,
/// deferral wait included.
pub(crate) fn fold_streaming(
    jobs: &[ProtoJobResult],
    plan: Option<&AdmissionPlan>,
) -> StreamingStats {
    let mut short = StreamingQuantiles::new();
    let mut long = StreamingQuantiles::new();
    for j in jobs {
        if let Some(plan) = plan {
            if plan.decision(j.job) == AdmissionDecision::Shed {
                continue;
            }
        }
        let micros = j.runtime.as_micros() as u64;
        match j.class {
            JobClass::Short => short.record(micros),
            JobClass::Long => long.record(micros),
        }
    }
    StreamingStats {
        short: StreamingSummary::from_sink(&short),
        long: StreamingSummary::from_sink(&long),
    }
}

/// One item of the merged feed timeline (submissions × dynamics).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FeedItem {
    Submit(u32),
    Node(NodeChange),
}

/// A routed job submission — built by [`submission_for`], the single
/// definition both runtimes feed from (so the owner mapping and the
/// submit payload cannot drift between modes).
pub(crate) enum Submission {
    Central(CentralMsg),
    Dist(usize, DistMsg),
}

/// Builds trace job `index`'s submission message, routed per the
/// policy's class tables.
pub(crate) fn submission_for(
    trace: &Trace,
    index: u32,
    classes: &[JobClass],
    central_route: &[bool],
    dist_count: usize,
) -> Submission {
    let job = trace.job(JobId(index));
    let i = index as usize;
    if central_route[i] {
        Submission::Central(CentralMsg::Submit {
            job: job.id,
            tasks: job.tasks.clone(),
            estimate: job.mean_task_duration(),
            class: classes[i],
        })
    } else {
        Submission::Dist(
            i % dist_count,
            DistMsg::Submit {
                job: job.id,
                tasks: job.tasks.clone(),
                estimate: job.mean_task_duration(),
                class: classes[i],
            },
        )
    }
}

/// Builds the daemons and the per-job routing tables shared by both
/// runtimes.
pub(crate) fn build_cluster(
    trace: &Trace,
    scheduler: &Arc<dyn Scheduler>,
    cfg: &ProtoConfig,
) -> ClusterSetup {
    assert!(
        cfg.workers > 0 && cfg.dist_schedulers > 0,
        "prototype needs at least one worker and one distributed scheduler"
    );
    if let Some(max) = cfg.dynamics.max_server() {
        assert!(
            (max as usize) < cfg.workers,
            "dynamics script touches worker {max} but the cluster has {} workers",
            cfg.workers
        );
    }
    let partition = Partition::new(cfg.workers, scheduler.short_partition_fraction());
    for class in [JobClass::Long, JobClass::Short] {
        if let Route::Distributed(Scope::ShortReserved) | Route::Central(Scope::ShortReserved) =
            scheduler.route(class)
        {
            assert!(
                partition.short_count() > 0,
                "route targets the short partition but none is reserved"
            );
        }
    }
    let speeds = cfg
        .speeds
        .resolve(cfg.workers)
        .unwrap_or_else(|| vec![1.0; cfg.workers]);

    // Frozen stream order: workers first, then distributed schedulers.
    // (The fault lanes split from `seed ^ FAULT_SALT`, a separate root,
    // so enabling faults never shifts these streams.)
    let mut root = SimRng::seed_from_u64(cfg.seed);
    let hardened = cfg.faults.timeouts;
    // Rack geometry exists only when a modelled fabric does: real-time
    // mode has no topology, so placement-aware policies fall back to the
    // paper's uniform victim draw there.
    let rack_geometry = match &cfg.mode {
        ExecutionMode::Virtual { topology } => topology.rack_geometry(),
        ExecutionMode::RealTime => None,
    };
    let workers: Vec<Worker> = (0..cfg.workers)
        .map(|i| {
            Worker::new(
                i,
                Arc::clone(scheduler),
                partition,
                rack_geometry,
                cfg.dist_schedulers,
                speeds[i],
                root.split(),
                hardened,
            )
        })
        .collect();
    let dists: Vec<DistScheduler> = (0..cfg.dist_schedulers)
        .map(|i| {
            DistScheduler::new(
                i,
                Arc::clone(scheduler),
                cfg.workers,
                root.split(),
                hardened,
            )
        })
        .collect();

    // The same central-scope rules the simulation driver enforces: both
    // central routes must agree on a scope, and the scope must be
    // non-empty — fail at construction, not with an opaque heap panic on
    // the first submission.
    let long_route = scheduler.route(JobClass::Long);
    let short_route = scheduler.route(JobClass::Short);
    let central_scope = match (long_route, short_route) {
        (Route::Central(a), Route::Central(b)) => {
            assert_eq!(a, b, "central routes must share a scope");
            Some(a)
        }
        (Route::Central(a), _) => Some(a),
        (_, Route::Central(b)) => Some(b),
        _ => None,
    };
    let central = central_scope.map(|scope| {
        let len = match scope {
            Scope::Whole => partition.total(),
            Scope::General => partition.general_count(),
            Scope::ShortReserved => {
                unreachable!("central routes never target the short partition")
            }
        };
        assert!(len > 0, "centralized route over an empty scope");
        CentralDaemon::new(len, hardened)
    });

    let classes: Vec<JobClass> = trace
        .jobs()
        .iter()
        .map(|job| cfg.cutoff.classify(job.mean_task_duration()))
        .collect();
    let central_route = classes
        .iter()
        .map(|&class| matches!(scheduler.route(class), Route::Central(_)))
        .collect();

    ClusterSetup {
        workers,
        dists,
        central,
        classes,
        central_route,
    }
}

/// The merged, time-sorted feed timeline: job submissions and scripted
/// dynamics events, stable within equal timestamps (submissions keep
/// trace order, dynamics keep script order).
pub(crate) fn feed_timeline(trace: &Trace, dynamics: &DynamicsScript) -> Vec<(SimTime, FeedItem)> {
    let mut timeline: Vec<(SimTime, FeedItem)> = trace
        .jobs()
        .iter()
        .map(|job| (job.submission, FeedItem::Submit(job.id.0)))
        .chain(
            dynamics
                .events()
                .iter()
                .map(|ev| (ev.at, FeedItem::Node(ev.change))),
        )
        .collect();
    timeline.sort_by_key(|&(at, _)| at);
    timeline
}

/// Runs `trace` under `scheduler` on a freshly built prototype cluster
/// and reports per-job runtimes.
///
/// In [`ExecutionMode::RealTime`] this blocks for roughly the trace span
/// plus drain of wall time; in [`ExecutionMode::Virtual`] it returns as
/// fast as the messages can be processed.
///
/// # Panics
///
/// Panics if the cluster stops making progress (no completion for 60
/// wall-clock seconds in real-time mode; an empty or sample-only event
/// queue in virtual mode), which indicates a protocol-liveness bug. Also
/// panics on configuration inconsistencies (empty cluster, a
/// short-partition route with no reserved servers, a dynamics script
/// addressing servers beyond the cluster, fault injection outside the
/// virtual mode, or a lossy [`FaultSpec`] without timeouts).
pub fn run_prototype(
    trace: &Trace,
    scheduler: Arc<dyn Scheduler>,
    cfg: &ProtoConfig,
) -> ProtoReport {
    if cfg.mode == ExecutionMode::RealTime {
        assert!(
            !cfg.faults.injects() && cfg.faults.timeouts.is_none(),
            "fault injection and hardened timers require the virtual-clock mode"
        );
    }
    assert!(
        !cfg.faults.lossy() || cfg.faults.timeouts.is_some(),
        "a lossy FaultSpec can strand work forever; enable timeouts (FaultSpec::hardened)"
    );
    let setup = build_cluster(trace, &scheduler, cfg);
    // One plan for both runtimes, computed exactly as the simulation
    // drivers compute it — same pure inputs, same decisions per job.
    let plan = cfg.admission.map(|policy| {
        AdmissionPlan::compute(trace, cfg.workers, cfg.cutoff, &cfg.dynamics, policy)
    });
    match cfg.mode {
        ExecutionMode::Virtual { topology } => {
            run_virtual(trace, setup, cfg, topology.build(cfg.workers), plan)
        }
        ExecutionMode::RealTime => run_threaded(trace, setup, cfg, plan),
    }
}

/// Shared routing table handed to every thread of the real-time runtime.
#[derive(Clone)]
pub(crate) struct RoutingTable {
    workers: Arc<Vec<Sender<WorkerMsg>>>,
    dscheds: Arc<Vec<Sender<DistMsg>>>,
    central: Option<Sender<CentralMsg>>,
    done: Sender<(JobId, Instant)>,
    running: Arc<AtomicI64>,
    /// Usable capacity: in-service workers + down workers draining a
    /// running task (the simulator's utilization denominator).
    capacity: Arc<AtomicI64>,
}

/// [`Net`] over mpsc channels and the wall clock. `deadline` is the
/// calling worker's task-finish deadline slot (always `None` for
/// scheduler daemons, which never start tasks).
struct ThreadNet<'a> {
    topo: &'a RoutingTable,
    deadline: &'a mut Option<Instant>,
}

impl Net for ThreadNet<'_> {
    fn send_worker(&mut self, to: usize, msg: WorkerMsg) {
        let _ = self.topo.workers[to].send(msg);
    }
    fn send_dist(&mut self, to: usize, msg: DistMsg) {
        let _ = self.topo.dscheds[to].send(msg);
    }
    fn send_central(&mut self, msg: CentralMsg) {
        let central = self
            .topo
            .central
            .as_ref()
            .expect("policy has no central route");
        let _ = central.send(msg);
    }
    fn schedule_finish(&mut self, _worker: usize, occupancy: SimDuration) {
        debug_assert!(self.deadline.is_none(), "slot already has a deadline");
        *self.deadline = Some(Instant::now() + Duration::from_micros(occupancy.as_micros()));
    }
    fn job_done(&mut self, job: JobId) {
        let _ = self.topo.done.send((job, Instant::now()));
    }
    fn add_running(&mut self, delta: i64) {
        self.topo.running.fetch_add(delta, Ordering::Relaxed);
    }
    fn add_capacity(&mut self, delta: i64) {
        self.topo.capacity.fetch_add(delta, Ordering::Relaxed);
    }
}

/// The worker thread body: service messages and execution deadlines until
/// shutdown; returns the worker's counters.
fn worker_thread(
    mut worker: Worker,
    rx: Receiver<WorkerMsg>,
    topo: RoutingTable,
) -> crate::worker::WorkerStats {
    let mut deadline: Option<Instant> = None;
    loop {
        if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                deadline = None;
                let mut net = ThreadNet {
                    topo: &topo,
                    deadline: &mut deadline,
                };
                worker.on_task_finish(&mut net);
                continue;
            }
            match rx.recv_timeout(d - now) {
                Ok(msg) => {
                    let mut net = ThreadNet {
                        topo: &topo,
                        deadline: &mut deadline,
                    };
                    if worker.handle(msg, &mut net) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(msg) => {
                    let mut net = ThreadNet {
                        topo: &topo,
                        deadline: &mut deadline,
                    };
                    if worker.handle(msg, &mut net) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
    worker.stats
}

/// A scheduler-daemon thread body (shared by distributed and central
/// daemons via the `handle` closure).
fn sched_thread<M>(
    rx: Receiver<M>,
    topo: RoutingTable,
    mut handle: impl FnMut(M, &mut ThreadNet<'_>) -> bool,
) {
    let mut deadline = None;
    while let Ok(msg) = rx.recv() {
        let mut net = ThreadNet {
            topo: &topo,
            deadline: &mut deadline,
        };
        if handle(msg, &mut net) {
            return;
        }
    }
}

fn run_threaded(
    trace: &Trace,
    setup: ClusterSetup,
    cfg: &ProtoConfig,
    plan: Option<AdmissionPlan>,
) -> ProtoReport {
    let ClusterSetup {
        workers,
        dists,
        central,
        classes,
        central_route,
    } = setup;

    // Channels first, so every thread starts with the full routing table.
    let (worker_txs, worker_rxs): (Vec<_>, Vec<_>) =
        (0..cfg.workers).map(|_| channel::<WorkerMsg>()).unzip();
    let (dsched_txs, dsched_rxs): (Vec<_>, Vec<_>) = (0..cfg.dist_schedulers)
        .map(|_| channel::<DistMsg>())
        .unzip();
    let central_channel = central.as_ref().map(|_| channel::<CentralMsg>());
    let (done_tx, done_rx) = channel::<(JobId, Instant)>();

    let topo = RoutingTable {
        workers: Arc::new(worker_txs),
        dscheds: Arc::new(dsched_txs),
        central: central_channel.as_ref().map(|(tx, _)| tx.clone()),
        done: done_tx,
        running: Arc::new(AtomicI64::new(0)),
        capacity: Arc::new(AtomicI64::new(cfg.workers as i64)),
    };

    let mut worker_handles = Vec::new();
    for (worker, rx) in workers.into_iter().zip(worker_rxs) {
        let topo = topo.clone();
        worker_handles.push(thread::spawn(move || worker_thread(worker, rx, topo)));
    }
    let mut dist_handles = Vec::new();
    for (mut dist, rx) in dists.into_iter().zip(dsched_rxs) {
        let topo = topo.clone();
        dist_handles.push(thread::spawn(move || {
            sched_thread(rx, topo, |msg, net| dist.handle(msg, net));
            dist.stats
        }));
    }
    let central_handle = central.map(|mut daemon| {
        let (_, rx) = central_channel.expect("central daemon has a channel");
        let topo = topo.clone();
        thread::spawn(move || {
            sched_thread(rx, topo, |msg, net| daemon.handle(msg, net));
            daemon.stats
        })
    });

    // Utilization sampler.
    let samples = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let samples = Arc::clone(&samples);
        let stop = Arc::clone(&stop);
        let running = Arc::clone(&topo.running);
        let capacity = Arc::clone(&topo.capacity);
        let interval = Duration::from_micros(cfg.util_interval.as_micros());
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(interval);
                let usable = capacity.load(Ordering::Relaxed).max(1) as f64;
                let u = running.load(Ordering::Relaxed).max(0) as f64 / usable;
                samples.lock().expect("sampler lock").push(u);
            }
        })
    };

    // Feed the merged submission/dynamics timeline on the wall clock,
    // draining completions as they arrive so the feeder can stop early:
    // a dynamics script outlasting the workload must not keep the run
    // alive after every job has finished (remaining node events are
    // moot by then).
    // The admission plan reshapes the feed: shed jobs are recorded as
    // zero-runtime completions at their submission offset and never reach
    // a scheduler daemon; deferred jobs are fed at the plan's retry
    // window but keep their original submission instant, so the reported
    // runtime includes the deferral wait (matching the simulator).
    let timeline = match &plan {
        None => feed_timeline(trace, &cfg.dynamics),
        Some(plan) => {
            let mut timeline: Vec<(SimTime, FeedItem)> = Vec::new();
            for job in trace.jobs() {
                match plan.decision(job.id) {
                    AdmissionDecision::Admit => {
                        timeline.push((job.submission, FeedItem::Submit(job.id.0)));
                    }
                    AdmissionDecision::Defer { until } => {
                        timeline.push((until, FeedItem::Submit(job.id.0)));
                    }
                    AdmissionDecision::Shed => {}
                }
            }
            timeline.extend(
                cfg.dynamics
                    .events()
                    .iter()
                    .map(|ev| (ev.at, FeedItem::Node(ev.change))),
            );
            timeline.sort_by_key(|&(at, _)| at);
            timeline
        }
    };

    let start = Instant::now();
    let mut submit_instants = vec![start; trace.len()];
    let mut completions = vec![None; trace.len()];
    let mut received = 0usize;
    if let Some(plan) = &plan {
        for job in trace.jobs() {
            if plan.decision(job.id) == AdmissionDecision::Shed {
                let at = start + Duration::from_micros(job.submission.as_micros());
                submit_instants[job.id.index()] = at;
                completions[job.id.index()] = Some(at);
                received += 1;
            }
        }
    }
    let drain_done = |completions: &mut Vec<Option<Instant>>, received: &mut usize| {
        while let Ok((job, at)) = done_rx.try_recv() {
            completions[job.index()] = Some(at);
            *received += 1;
        }
    };
    'feed: for (at, item) in timeline {
        let target = start + Duration::from_micros(at.as_micros());
        // Sleep in bounded slices, polling completions between them, so
        // long quiet spans in the timeline notice an early drain.
        loop {
            drain_done(&mut completions, &mut received);
            if received == trace.len() {
                break 'feed;
            }
            let now = Instant::now();
            if target <= now {
                break;
            }
            thread::sleep((target - now).min(Duration::from_millis(100)));
        }
        match item {
            FeedItem::Submit(index) => {
                let deferred = plan.as_ref().is_some_and(|p| {
                    matches!(p.decision(JobId(index)), AdmissionDecision::Defer { .. })
                });
                submit_instants[index as usize] = if deferred {
                    // Measure from the original submission, not the
                    // deferred feed: the deferral wait is part of the
                    // job's observed latency.
                    start + Duration::from_micros(trace.job(JobId(index)).submission.as_micros())
                } else {
                    Instant::now()
                };
                match submission_for(trace, index, &classes, &central_route, cfg.dist_schedulers) {
                    Submission::Central(msg) => {
                        let central = topo.central.as_ref().expect("central route spawned daemon");
                        let _ = central.send(msg);
                    }
                    Submission::Dist(sched, msg) => {
                        let _ = topo.dscheds[sched].send(msg);
                    }
                }
            }
            FeedItem::Node(change) => {
                let server = match change {
                    NodeChange::Down(s) | NodeChange::Up(s) => s as usize,
                };
                let _ = topo.workers[server].send(WorkerMsg::Node(change));
                for tx in topo.dscheds.iter() {
                    let _ = tx.send(DistMsg::Node(change));
                }
                if let Some(central) = &topo.central {
                    let _ = central.send(CentralMsg::Node(change));
                }
            }
        }
    }

    // Collect the remaining completions under a liveness deadline: a
    // lost message would otherwise wedge this loop (and CI) forever.
    // Four consecutive quiet intervals with work still outstanding is a
    // protocol-liveness bug — fail fast with the diagnostic gauges.
    let quiet_interval = Duration::from_secs(15);
    const MAX_QUIET: u32 = 4;
    let mut quiet = 0u32;
    while received < trace.len() {
        match done_rx.recv_timeout(quiet_interval) {
            Ok((job, at)) => {
                quiet = 0;
                completions[job.index()] = Some(at);
                received += 1;
            }
            Err(RecvTimeoutError::Timeout) => {
                quiet += 1;
                assert!(
                    quiet < MAX_QUIET,
                    "prototype made no progress for {}s: {}/{} jobs complete, \
                     {} tasks running, usable capacity {}",
                    quiet_interval.as_secs() * u64::from(quiet),
                    received,
                    trace.len(),
                    topo.running.load(Ordering::Relaxed),
                    topo.capacity.load(Ordering::Relaxed),
                );
            }
            Err(RecvTimeoutError::Disconnected) => panic!(
                "completion channel closed with {received}/{} jobs complete",
                trace.len()
            ),
        }
    }

    // Tear down and fold the counters.
    stop.store(true, Ordering::Relaxed);
    for tx in topo.workers.iter() {
        let _ = tx.send(WorkerMsg::Shutdown);
    }
    for tx in topo.dscheds.iter() {
        let _ = tx.send(DistMsg::Shutdown);
    }
    if let Some(central) = &topo.central {
        let _ = central.send(CentralMsg::Shutdown);
    }
    let worker_stats: Vec<WorkerStats> = worker_handles
        .into_iter()
        .map(|handle| handle.join().expect("worker thread"))
        .collect();
    let mut sched_stats: Vec<SchedStats> = dist_handles
        .into_iter()
        .map(|handle| handle.join().expect("dist scheduler thread"))
        .collect();
    if let Some(handle) = central_handle {
        sched_stats.push(handle.join().expect("central scheduler thread"));
    }
    let totals = fold_stats(worker_stats, sched_stats);
    let _ = sampler.join();

    let jobs: Vec<ProtoJobResult> = trace
        .jobs()
        .iter()
        .map(|job| {
            let i = job.id.index();
            let done = completions[i].expect("all jobs completed");
            ProtoJobResult {
                job: job.id,
                class: classes[i],
                num_tasks: job.num_tasks(),
                submit_offset: submit_instants[i] - start,
                runtime: done.saturating_duration_since(submit_instants[i]),
            }
        })
        .collect();
    let utilization_samples = samples.lock().expect("sampler lock").clone();
    let streaming = fold_streaming(&jobs, plan.as_ref());
    ProtoReport {
        jobs,
        utilization_samples,
        steals: totals.steals,
        steal_attempts: totals.steal_attempts,
        migrations: totals.migrations,
        abandons: totals.abandons,
        messages: totals.messages,
        // The threaded runtime rides the machine's real network (in-process
        // channels): there is no modelled topology to classify links.
        network: NetworkStats::default(),
        // Fault injection is virtual-only; these stay zero here (the
        // run_prototype mode assert enforces it).
        drops: 0,
        dups: 0,
        retries: totals.retries,
        timeouts_fired: totals.timeouts_fired,
        relaunched: totals.relaunched,
        streaming,
        admission: plan.as_ref().map(|p| p.stats()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_core::scheduler::{Hawk, Sparrow};
    use hawk_workload::Job;

    /// A fast trace: durations in single-digit milliseconds.
    fn fast_trace(jobs: Vec<(u64, Vec<u64>)>) -> Trace {
        let jobs = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (at_ms, task_ms))| Job {
                id: JobId(i as u32),
                submission: SimTime::from_micros(at_ms * 1_000),
                tasks: task_ms.into_iter().map(SimDuration::from_millis).collect(),
                generated_class: None,
            })
            .collect();
        Trace::new(jobs).unwrap()
    }

    fn fast_cfg(mode: ExecutionMode) -> ProtoConfig {
        ProtoConfig {
            workers: 8,
            dist_schedulers: 2,
            // 50 ms cutoff: tasks ≥ 50 ms are long.
            cutoff: Cutoff(SimDuration::from_millis(50)),
            util_interval: SimDuration::from_millis(5),
            mode,
            ..ProtoConfig::default()
        }
    }

    fn virtual_mode() -> ExecutionMode {
        // The paper-default constant topology: 0.5 ms one-way, free steal
        // transfers — exactly the pre-topology `message_delay: 500 µs`.
        ExecutionMode::Virtual {
            topology: TopologySpec::paper_default(),
        }
    }

    fn hawk() -> Arc<dyn Scheduler> {
        Arc::new(Hawk::new(0.25))
    }

    #[test]
    fn hawk_completes_all_jobs_in_both_modes() {
        let trace = fast_trace(vec![
            (0, vec![100, 100]), // long
            (1, vec![5, 5, 5]),  // short
            (2, vec![120]),      // long
            (3, vec![2; 6]),     // short
        ]);
        for mode in [virtual_mode(), ExecutionMode::RealTime] {
            let report = run_prototype(&trace, hawk(), &fast_cfg(mode));
            assert_eq!(report.jobs.len(), 4);
            assert_eq!(report.jobs[0].class, JobClass::Long);
            assert_eq!(report.jobs[1].class, JobClass::Short);
            for j in &report.jobs {
                assert!(j.runtime >= Duration::from_millis(1), "{mode:?}");
            }
        }
    }

    #[test]
    fn sparrow_needs_no_central_daemon() {
        let trace = fast_trace(vec![(0, vec![60, 60]), (2, vec![3, 3, 3, 3])]);
        for mode in [virtual_mode(), ExecutionMode::RealTime] {
            let report = run_prototype(&trace, Arc::new(Sparrow::new()), &fast_cfg(mode));
            assert_eq!(report.jobs.len(), 2, "{mode:?}");
        }
    }

    #[test]
    fn virtual_runs_are_byte_identical() {
        let trace = fast_trace(vec![
            (0, vec![300; 5]),
            (1, vec![4, 4]),
            (2, vec![2; 6]),
            (5, vec![250, 250]),
            (9, vec![3, 3, 3]),
        ]);
        let cfg = fast_cfg(virtual_mode());
        let a = run_prototype(&trace, hawk(), &cfg);
        let b = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(a, b, "same seed must replay byte-identically");
        let c = run_prototype(
            &trace,
            hawk(),
            &ProtoConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(a.jobs, c.jobs, "a different seed must actually perturb");
    }

    #[test]
    fn virtual_runtimes_reflect_task_durations() {
        // One 100 ms task (long under the 50 ms cutoff, so centrally
        // placed): runtime is the placement hop (0.5 ms) + execution +
        // the completion-report hop (0.5 ms) — exact on the virtual
        // clock. Unlike the simulator, the prototype timestamps a
        // completion when the owning scheduler *learns* of it, as the
        // paper's deployment does.
        let trace = fast_trace(vec![(0, vec![100])]);
        let report = run_prototype(&trace, hawk(), &fast_cfg(virtual_mode()));
        let rt = report.jobs[0].runtime;
        assert_eq!(rt, Duration::from_micros(100_000 + 1_000));
    }

    #[test]
    fn real_time_runtimes_reflect_task_durations() {
        // The same check on the wall clock, with generous slack.
        let trace = fast_trace(vec![(0, vec![100])]);
        let report = run_prototype(&trace, hawk(), &fast_cfg(ExecutionMode::RealTime));
        let rt = report.jobs[0].runtime;
        assert!(rt >= Duration::from_millis(100), "runtime {rt:?}");
        assert!(rt < Duration::from_millis(500), "runtime {rt:?}");
    }

    #[test]
    fn stealing_rescues_blocked_shorts() {
        // 8 workers, 25 % short partition (6 general + 2 reserved). A
        // 6-task 600 ms long job fills the general partition; five 2-task
        // 5 ms short jobs then probe the whole cluster. Shorts whose
        // probes land behind long tasks wait them out without stealing;
        // with stealing the reserved workers rescue them.
        let mut jobs = vec![(0u64, vec![600u64; 6])];
        for i in 0..5 {
            jobs.push((20 + i, vec![5u64, 5]));
        }
        let trace = fast_trace(jobs);
        let cfg = fast_cfg(virtual_mode());
        let steal = run_prototype(&trace, hawk(), &cfg);
        let no_steal = run_prototype(&trace, Arc::new(Hawk::new(0.25).without_stealing()), &cfg);
        let worst_short = |r: &ProtoReport| {
            r.jobs[1..]
                .iter()
                .map(|j| j.runtime.as_secs_f64())
                .fold(0.0f64, f64::max)
        };
        let blocked = worst_short(&no_steal);
        let rescued = worst_short(&steal);
        assert!(
            blocked > 0.3,
            "expected blocking without stealing, worst short {blocked}s"
        );
        assert!(
            rescued < blocked,
            "stealing did not help: {rescued}s vs {blocked}s"
        );
        assert!(steal.steals > 0);
        assert_eq!(no_steal.steals, 0);
    }

    #[test]
    fn utilization_sampler_records_in_both_modes() {
        let trace = fast_trace(vec![(0, vec![50; 8])]);
        for mode in [virtual_mode(), ExecutionMode::RealTime] {
            let report = run_prototype(&trace, hawk(), &fast_cfg(mode));
            assert!(!report.utilization_samples.is_empty(), "{mode:?}");
            assert!(report.max_utilization().unwrap() > 0.0, "{mode:?}");
        }
    }

    #[test]
    fn report_is_indexed_by_job_id() {
        let trace = fast_trace(vec![(0, vec![10]), (1, vec![10]), (2, vec![10])]);
        let report = run_prototype(&trace, hawk(), &fast_cfg(virtual_mode()));
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.job, JobId(i as u32));
            assert_eq!(j.num_tasks, 1);
        }
    }

    #[test]
    fn submissions_respect_trace_offsets() {
        let trace = fast_trace(vec![(0, vec![5]), (150, vec![5])]);
        let report = run_prototype(
            &trace,
            Arc::new(Sparrow::new()),
            &fast_cfg(ExecutionMode::RealTime),
        );
        let gap = report.jobs[1].submit_offset - report.jobs[0].submit_offset;
        assert!(gap >= Duration::from_millis(145), "gap {gap:?}");
    }

    #[test]
    fn node_churn_migrates_and_completes() {
        // Saturate 2 of 4 workers with long work, fail one mid-run: its
        // queue migrates and every job still completes — in both modes.
        let trace = fast_trace(vec![
            (0, vec![400, 400]),   // long pair
            (1, vec![300, 300]),   // long pair queued behind
            (2, vec![5, 5, 5, 5]), // shorts
        ]);
        let dynamics = DynamicsScript::none()
            .down_at(SimTime::from_micros(50_000), 1)
            .up_at(SimTime::from_micros(700_000), 1);
        for mode in [virtual_mode(), ExecutionMode::RealTime] {
            let cfg = ProtoConfig {
                workers: 4,
                dynamics: dynamics.clone(),
                ..fast_cfg(mode)
            };
            let report = run_prototype(&trace, hawk(), &cfg);
            assert_eq!(report.jobs.len(), 3, "{mode:?}");
        }
    }

    #[test]
    fn heterogeneous_speeds_stretch_virtual_runtimes() {
        // A half-speed single worker doubles the occupancy, exactly.
        let trace = fast_trace(vec![(0, vec![100])]);
        let cfg = ProtoConfig {
            workers: 1,
            dist_schedulers: 1,
            speeds: SpeedSpec::PerServer(vec![0.5]),
            ..fast_cfg(virtual_mode())
        };
        let report = run_prototype(&trace, Arc::new(Sparrow::new()), &cfg);
        // Probe (0.5) + bind round trip (1.0) + doubled occupancy +
        // completion report (0.5).
        assert_eq!(
            report.jobs[0].runtime,
            Duration::from_micros(200_000 + 2_000)
        );
    }

    #[test]
    fn virtual_mode_counts_messages_and_attempts() {
        let trace = fast_trace(vec![(0, vec![100, 100]), (1, vec![2, 2])]);
        let report = run_prototype(&trace, hawk(), &fast_cfg(virtual_mode()));
        // 2 submits, probes, binds, finishes — far more than 10 messages.
        assert!(report.messages >= 10, "messages {}", report.messages);
    }

    #[test]
    fn virtual_quiet_spans_outlast_the_sampler() {
        // A single 200 s task with a 1 ms sampling interval: 200,000
        // consecutive sampler-only deliveries while the task runs. The
        // liveness check must key on queued work (the pending Finish
        // event), not on sample counts, so this completes instead of
        // panicking.
        let trace = fast_trace(vec![(0, vec![200_000])]);
        let cfg = ProtoConfig {
            workers: 2,
            dist_schedulers: 1,
            util_interval: SimDuration::from_micros(1_000),
            ..fast_cfg(virtual_mode())
        };
        let report = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(report.jobs.len(), 1);
        assert!(report.utilization_samples.len() > 150_000);
    }

    #[test]
    fn real_time_feeder_stops_when_the_workload_drains() {
        // All jobs finish within ~100 ms, but the dynamics script runs
        // for another minute. The feeder must notice the drain and
        // return promptly instead of sleeping out the script.
        let trace = fast_trace(vec![(0, vec![5, 5]), (1, vec![3])]);
        let mut dynamics = DynamicsScript::none();
        for k in 0..30 {
            let at = SimTime::from_secs(2 + 2 * k);
            dynamics = dynamics
                .down_at(at, 0)
                .up_at(at + SimDuration::from_secs(1), 0);
        }
        let cfg = ProtoConfig {
            workers: 4,
            dynamics,
            ..fast_cfg(ExecutionMode::RealTime)
        };
        let started = Instant::now();
        let report = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(report.jobs.len(), 2);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "feeder slept out a {:?} dynamics script after the drain",
            started.elapsed()
        );
    }

    #[test]
    fn utilization_denominator_matches_the_simulators_under_dynamics() {
        use hawk_core::scheduler::Centralized;
        // Two workers, one 200 ms centrally-placed task (deterministically
        // on worker 0: the waiting-time heap breaks ties by index). Worker
        // 1 — idle — fails at 20 ms. Usable capacity drops to 1, so
        // samples during execution must read 1.0, not 0.5: the same
        // `live + draining` denominator `Cluster::utilization` uses.
        let trace = fast_trace(vec![(0, vec![200])]);
        let cfg = ProtoConfig {
            workers: 2,
            dist_schedulers: 1,
            util_interval: SimDuration::from_millis(10),
            dynamics: DynamicsScript::none().down_at(SimTime::from_micros(20_000), 1),
            ..fast_cfg(virtual_mode())
        };
        let report = run_prototype(&trace, Arc::new(Centralized::new()), &cfg);
        assert_eq!(
            report.max_utilization(),
            Some(1.0),
            "a down idle worker must leave the usable-capacity denominator"
        );
    }

    #[test]
    #[should_panic(expected = "central routes must share a scope")]
    fn mismatched_central_scopes_rejected_like_the_driver() {
        struct MismatchedCentral;
        impl Scheduler for MismatchedCentral {
            fn name(&self) -> String {
                "mismatched".into()
            }
            fn route(&self, class: JobClass) -> Route {
                match class {
                    JobClass::Long => Route::Central(Scope::General),
                    JobClass::Short => Route::Central(Scope::Whole),
                }
            }
            fn probe_targets(
                &self,
                _view: &hawk_core::PlacementView<'_>,
                _tasks: usize,
                _rng: &mut SimRng,
            ) -> Vec<hawk_cluster::ServerId> {
                unreachable!("fully central policy")
            }
        }
        let trace = fast_trace(vec![(0, vec![5])]);
        let _ = run_prototype(
            &trace,
            Arc::new(MismatchedCentral),
            &fast_cfg(virtual_mode()),
        );
    }

    #[test]
    #[should_panic(expected = "centralized route over an empty scope")]
    fn empty_central_scope_rejected_like_the_driver() {
        // Everything reserved for shorts leaves the general partition —
        // Hawk's central scope — empty.
        let trace = fast_trace(vec![(0, vec![5])]);
        let _ = run_prototype(&trace, Arc::new(Hawk::new(1.0)), &fast_cfg(virtual_mode()));
    }

    /// A deliberately hostile network: 5 % drops, duplicates, 2 ms
    /// reorder jitter, plus a scripted partition that islands workers
    /// {0, 1} for 100 ms mid-run. `chaos()` carries the default
    /// [`TimeoutSpec`](crate::fault::TimeoutSpec), so the hardened
    /// protocol is armed.
    fn chaos_faults() -> FaultSpec {
        FaultSpec::chaos().drop_probability(0.05).partition(
            SimTime::from_micros(20_000),
            SimTime::from_micros(120_000),
            vec![0, 1],
        )
    }

    #[test]
    fn chaotic_virtual_runs_complete_and_replay_byte_identically() {
        let trace = fast_trace(vec![
            (0, vec![300; 5]),
            (1, vec![4, 4]),
            (2, vec![2; 6]),
            (5, vec![250, 250]),
            (9, vec![3, 3, 3]),
        ]);
        let cfg = ProtoConfig {
            faults: chaos_faults(),
            ..fast_cfg(virtual_mode())
        };
        let a = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(a.jobs.len(), 5, "every job must complete under faults");
        assert!(a.drops > 0, "the lossy spec must actually drop messages");
        assert!(
            a.retries + a.timeouts_fired + a.relaunched > 0,
            "recovery machinery must have engaged: {} retries, {} timeouts, {} relaunches",
            a.retries,
            a.timeouts_fired,
            a.relaunched
        );
        // Byte-identical replay, fault counters included: the fault lanes
        // draw from their own salted streams in frozen order.
        let b = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(a, b, "seeded faults must replay byte-identically");
        // A different seed perturbs the fault pattern too.
        let c = run_prototype(
            &trace,
            hawk(),
            &ProtoConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(
            (a.drops, a.dups, &a.jobs),
            (c.drops, c.dups, &c.jobs),
            "a different seed must perturb the fault pattern"
        );
    }

    #[test]
    fn reprobe_chain_survives_churn_on_a_lossy_network() {
        // The satellite's integration half: node churn (worker 1 fails
        // mid-run with queued probes, rejoins later) *combined with* a
        // lossy, reordering network. Displaced probes ride the ReProbe
        // machinery, lost ones ride the hardened job chains — either way
        // no task may strand and the run must stay deterministic.
        let trace = fast_trace(vec![
            (0, vec![400, 400]),
            (1, vec![300, 300]),
            (2, vec![5, 5, 5, 5]),
            (30, vec![4, 4, 4]),
        ]);
        let dynamics = DynamicsScript::none()
            .down_at(SimTime::from_micros(50_000), 1)
            .up_at(SimTime::from_micros(700_000), 1);
        let cfg = ProtoConfig {
            workers: 4,
            dynamics,
            faults: chaos_faults(),
            ..fast_cfg(virtual_mode())
        };
        let a = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(a.jobs.len(), 4, "churn plus faults must not strand jobs");
        let b = run_prototype(&trace, hawk(), &cfg);
        assert_eq!(a, b, "churn plus faults must replay byte-identically");
    }

    #[test]
    #[should_panic(expected = "strand work forever")]
    fn lossy_spec_without_timeouts_is_rejected() {
        let trace = fast_trace(vec![(0, vec![5])]);
        let cfg = ProtoConfig {
            faults: FaultSpec::none().drop_probability(0.01),
            ..fast_cfg(virtual_mode())
        };
        let _ = run_prototype(&trace, hawk(), &cfg);
    }

    #[test]
    #[should_panic(expected = "virtual-clock mode")]
    fn faults_in_real_time_mode_rejected() {
        let trace = fast_trace(vec![(0, vec![5])]);
        let cfg = ProtoConfig {
            faults: chaos_faults(),
            ..fast_cfg(ExecutionMode::RealTime)
        };
        let _ = run_prototype(&trace, hawk(), &cfg);
    }

    #[test]
    fn admission_sheds_overload_in_both_modes() {
        // One worker, a 10 ms gate window with no headroom to spare: a
        // burst of 200 ms long jobs at t=0 blows the per-window budget
        // (10 ms of node-seconds), so most of the burst defers and then
        // sheds, while the short job rides the protected lane. Shed and
        // deferral counts come from the shared pure plan, so both modes
        // must agree exactly; shed jobs must report zero runtime.
        let trace = fast_trace(vec![
            (0, vec![200]),
            (0, vec![200]),
            (0, vec![200]),
            (0, vec![200]),
            (1, vec![2]), // short: protected, always admitted
        ]);
        let policy = AdmissionPolicy {
            window: SimDuration::from_millis(10),
            headroom: 1.0,
            max_defer_windows: 2,
            protect_short: true,
        };
        let mut reports = Vec::new();
        for mode in [virtual_mode(), ExecutionMode::RealTime] {
            let cfg = ProtoConfig {
                workers: 1,
                dist_schedulers: 1,
                admission: Some(policy),
                ..fast_cfg(mode)
            };
            let report = run_prototype(&trace, hawk(), &cfg);
            assert_eq!(report.jobs.len(), 5, "{mode:?}");
            assert!(report.admission.sheds() > 0, "{mode:?}");
            assert_eq!(report.admission.sheds_short, 0, "{mode:?}");
            reports.push(report);
        }
        // Exact cross-mode counter parity: the plan is mode-independent.
        assert_eq!(reports[0].admission, reports[1].admission);
        // A shed long job reports zero runtime and is excluded from the
        // streaming sinks; admitted jobs still land there.
        let shed_longs = reports[0]
            .jobs
            .iter()
            .filter(|j| j.class == JobClass::Long && j.runtime == Duration::ZERO)
            .count() as u64;
        assert_eq!(shed_longs, reports[0].admission.sheds_long);
        assert_eq!(
            reports[0].streaming.long.jobs + reports[0].admission.sheds_long,
            4
        );
        assert_eq!(reports[0].streaming.short.jobs, 1);
    }

    #[test]
    #[should_panic(expected = "dynamics script touches worker")]
    fn dynamics_beyond_cluster_rejected() {
        let trace = fast_trace(vec![(0, vec![5])]);
        let cfg = ProtoConfig {
            workers: 4,
            dynamics: DynamicsScript::none().down_at(SimTime::from_secs(1), 9),
            ..fast_cfg(virtual_mode())
        };
        let _ = run_prototype(&trace, hawk(), &cfg);
    }
}
