//! Cluster bring-up, trace feeding and result collection.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hawk_workload::classify::Cutoff;
use hawk_workload::{JobClass, JobId, Trace};
use std::sync::mpsc::{channel, Sender};
use std::sync::Mutex;

use crate::msg::{CentralMsg, DistMsg, WorkerMsg};
use crate::report::{ProtoJobResult, ProtoReport};
use crate::scheduler::{CentralScheduler, DistScheduler};
use crate::worker::Worker;

/// Which scheduler the prototype cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoMode {
    /// Hawk: centralized long jobs, distributed short jobs, stealing.
    Hawk,
    /// Hawk with stealing disabled (prototype ablation).
    HawkNoSteal,
    /// Sparrow: everything distributed, no partition, no stealing.
    Sparrow,
}

/// Prototype cluster configuration (paper defaults: 100 nodes, 10
/// distributed schedulers, 1 centralized scheduler, §4.1).
#[derive(Debug, Clone, Copy)]
pub struct ProtoConfig {
    /// Number of worker (node monitor) threads.
    pub workers: usize,
    /// Number of distributed scheduler threads.
    pub dist_schedulers: usize,
    /// Scheduling mode.
    pub mode: ProtoMode,
    /// Short/long cutoff on the (already scaled) estimated task runtime.
    pub cutoff: Cutoff,
    /// Fraction of workers reserved for short tasks (§3.4).
    pub short_partition_fraction: f64,
    /// Steal-attempt cap (§3.6); ignored outside Hawk mode.
    pub steal_cap: usize,
    /// Probes per task.
    pub probe_ratio: f64,
    /// Utilization sampling period.
    pub util_interval: Duration,
    /// Seed for probe and steal randomness.
    pub seed: u64,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            workers: 100,
            dist_schedulers: 10,
            mode: ProtoMode::Hawk,
            // The Google cutoff under the paper's 1000× time scale-down.
            cutoff: Cutoff(hawk_simcore::SimDuration::from_micros(1_129_000)),
            short_partition_fraction: 0.17,
            steal_cap: 10,
            probe_ratio: 2.0,
            util_interval: Duration::from_millis(50),
            seed: 0x4a77_2015,
        }
    }
}

/// Shared routing table handed to every thread.
#[derive(Clone)]
pub(crate) struct Topology {
    pub workers: Arc<Vec<Sender<WorkerMsg>>>,
    pub dscheds: Arc<Vec<Sender<DistMsg>>>,
    pub central: Sender<CentralMsg>,
    pub running_count: Arc<AtomicUsize>,
}

/// Runs `trace` on a freshly built prototype cluster and reports per-job
/// wall-clock runtimes.
///
/// Blocks until every job completes (the trace's submission times are
/// interpreted as wall-clock offsets from run start, so total wall time is
/// roughly the trace span plus drain).
///
/// # Panics
///
/// Panics if the cluster stops making progress (no completion for 60 s),
/// which indicates a protocol-liveness bug.
pub fn run_prototype(trace: &Trace, cfg: &ProtoConfig) -> ProtoReport {
    assert!(cfg.workers > 0 && cfg.dist_schedulers > 0);
    let general_count = match cfg.mode {
        ProtoMode::Sparrow => cfg.workers,
        _ => cfg.workers - (cfg.workers as f64 * cfg.short_partition_fraction).round() as usize,
    }
    .max(1);

    // Channels first, so every thread starts with the full routing table.
    let (worker_txs, worker_rxs): (Vec<_>, Vec<_>) =
        (0..cfg.workers).map(|_| channel::<WorkerMsg>()).unzip();
    let (dsched_txs, dsched_rxs): (Vec<_>, Vec<_>) = (0..cfg.dist_schedulers)
        .map(|_| channel::<DistMsg>())
        .unzip();
    let (central_tx, central_rx) = channel::<CentralMsg>();
    let (done_tx, done_rx) = channel::<(JobId, Instant)>();

    let topo = Topology {
        workers: Arc::new(worker_txs),
        dscheds: Arc::new(dsched_txs),
        central: central_tx,
        running_count: Arc::new(AtomicUsize::new(0)),
    };

    let steal_cap = match cfg.mode {
        ProtoMode::Hawk => Some(cfg.steal_cap),
        _ => None,
    };

    let mut handles = Vec::new();
    for (i, rx) in worker_rxs.into_iter().enumerate() {
        let worker = Worker::new(i, rx, topo.clone(), steal_cap, general_count, cfg.seed);
        handles.push(thread::spawn(move || worker.run()));
    }
    for (i, rx) in dsched_rxs.into_iter().enumerate() {
        let sched = DistScheduler::new(
            i,
            rx,
            topo.clone(),
            done_tx.clone(),
            cfg.probe_ratio,
            (0, cfg.workers), // shorts probe the whole cluster (§3.5)
            cfg.seed,
        );
        handles.push(thread::spawn(move || sched.run()));
    }
    {
        let central = CentralScheduler::new(central_rx, topo.clone(), done_tx, general_count);
        handles.push(thread::spawn(move || central.run()));
    }

    // Utilization sampler.
    let samples = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let samples = Arc::clone(&samples);
        let stop = Arc::clone(&stop);
        let running = Arc::clone(&topo.running_count);
        let interval = cfg.util_interval;
        let workers = cfg.workers as f64;
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(interval);
                let u = running.load(Ordering::Relaxed) as f64 / workers;
                samples.lock().expect("sampler lock").push(u);
            }
        })
    };

    // Feed the trace on the wall clock.
    let start = Instant::now();
    let mut submit_instants = vec![start; trace.len()];
    let mut classes = vec![JobClass::Short; trace.len()];
    for job in trace.jobs() {
        let target = start + Duration::from_micros(job.submission.as_micros());
        let now = Instant::now();
        if target > now {
            thread::sleep(target - now);
        }
        let class = cfg.cutoff.classify(job.mean_task_duration());
        classes[job.id.index()] = class;
        let tasks: Vec<Duration> = job
            .tasks
            .iter()
            .map(|d| Duration::from_micros(d.as_micros()))
            .collect();
        let estimate_us = job.mean_task_duration().as_micros();
        submit_instants[job.id.index()] = Instant::now();
        let central_route =
            matches!(cfg.mode, ProtoMode::Hawk | ProtoMode::HawkNoSteal) && class == JobClass::Long;
        if central_route {
            let _ = topo.central.send(CentralMsg::Submit {
                job: job.id,
                tasks,
                estimate_us,
                class,
            });
        } else {
            let sched = job.id.index() % cfg.dist_schedulers;
            let _ = topo.dscheds[sched].send(DistMsg::Submit {
                job: job.id,
                tasks,
                estimate_us,
                class,
            });
        }
    }

    // Collect completions.
    let mut completions = vec![None; trace.len()];
    let mut received = 0usize;
    while received < trace.len() {
        let (job, at) = done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("prototype made no progress for 60 s");
        completions[job.index()] = Some(at);
        received += 1;
    }

    // Tear down.
    stop.store(true, Ordering::Relaxed);
    for tx in topo.workers.iter() {
        let _ = tx.send(WorkerMsg::Shutdown);
    }
    for tx in topo.dscheds.iter() {
        let _ = tx.send(DistMsg::Shutdown);
    }
    let _ = topo.central.send(CentralMsg::Shutdown);
    for handle in handles {
        let _ = handle.join();
    }
    let _ = sampler.join();

    let jobs = trace
        .jobs()
        .iter()
        .map(|job| {
            let i = job.id.index();
            let done = completions[i].expect("all jobs completed");
            ProtoJobResult {
                job: job.id,
                class: classes[i],
                submit_offset: submit_instants[i] - start,
                runtime: done.saturating_duration_since(submit_instants[i]),
            }
        })
        .collect();
    let samples = samples.lock().expect("sampler lock").clone();
    ProtoReport {
        jobs,
        utilization_samples: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_simcore::{SimDuration, SimTime};
    use hawk_workload::Job;

    /// A fast trace: durations in single-digit milliseconds.
    fn fast_trace(jobs: Vec<(u64, Vec<u64>)>) -> Trace {
        let jobs = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (at_ms, task_ms))| Job {
                id: JobId(i as u32),
                submission: SimTime::from_micros(at_ms * 1_000),
                tasks: task_ms.into_iter().map(SimDuration::from_millis).collect(),
                generated_class: None,
            })
            .collect();
        Trace::new(jobs).unwrap()
    }

    fn fast_cfg(mode: ProtoMode) -> ProtoConfig {
        ProtoConfig {
            workers: 8,
            dist_schedulers: 2,
            mode,
            // 50 ms cutoff: tasks ≥ 50 ms are long.
            cutoff: Cutoff(SimDuration::from_millis(50)),
            short_partition_fraction: 0.25,
            util_interval: Duration::from_millis(5),
            ..ProtoConfig::default()
        }
    }

    #[test]
    fn hawk_mode_completes_all_jobs() {
        let trace = fast_trace(vec![
            (0, vec![100, 100]), // long
            (1, vec![5, 5, 5]),  // short
            (2, vec![120]),      // long
            (3, vec![2; 6]),     // short
        ]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::Hawk));
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.jobs[0].class, JobClass::Long);
        assert_eq!(report.jobs[1].class, JobClass::Short);
        for j in &report.jobs {
            // Every runtime at least covers the longest task.
            assert!(j.runtime >= Duration::from_millis(1));
        }
    }

    #[test]
    fn sparrow_mode_completes_all_jobs() {
        let trace = fast_trace(vec![(0, vec![60, 60]), (2, vec![3, 3, 3, 3])]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::Sparrow));
        assert_eq!(report.jobs.len(), 2);
    }

    #[test]
    fn no_steal_mode_completes_all_jobs() {
        let trace = fast_trace(vec![(0, vec![80; 4]), (1, vec![4; 4])]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::HawkNoSteal));
        assert_eq!(report.jobs.len(), 2);
    }

    #[test]
    fn runtimes_reflect_task_durations() {
        // A single 100 ms task on an idle cluster should take ≈100 ms (plus
        // small messaging overhead, well under 50 ms on any machine).
        let trace = fast_trace(vec![(0, vec![100])]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::Hawk));
        let rt = report.jobs[0].runtime;
        assert!(rt >= Duration::from_millis(100), "runtime {rt:?}");
        assert!(rt < Duration::from_millis(500), "runtime {rt:?}");
    }

    #[test]
    fn utilization_sampler_records() {
        let trace = fast_trace(vec![(0, vec![50; 8])]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::Hawk));
        assert!(!report.utilization_samples.is_empty());
        assert!(report.max_utilization().unwrap() > 0.0);
    }

    #[test]
    fn stealing_rescues_blocked_shorts_in_real_time() {
        // 8 workers, 25 % short partition (6 general + 2 reserved). A
        // 6-task 600 ms long job fills the general partition; five 2-task
        // 5 ms short jobs then probe the whole cluster. Without stealing,
        // shorts whose probes all landed on general workers wait out the
        // long tasks; with stealing the reserved workers rescue them.
        let mut jobs = vec![(0u64, vec![600u64; 6])];
        for i in 0..5 {
            jobs.push((20 + i, vec![5u64, 5]));
        }
        let trace = fast_trace(jobs);
        let steal = run_prototype(&trace, &fast_cfg(ProtoMode::Hawk));
        let no_steal = run_prototype(&trace, &fast_cfg(ProtoMode::HawkNoSteal));
        let worst_short = |r: &crate::report::ProtoReport| {
            r.jobs[1..]
                .iter()
                .map(|j| j.runtime.as_secs_f64())
                .fold(0.0f64, f64::max)
        };
        let blocked = worst_short(&no_steal);
        let rescued = worst_short(&steal);
        // Same seed → same probe placement; at least one short job blocks
        // behind a 600 ms task without stealing.
        assert!(
            blocked > 0.3,
            "expected blocking without stealing, worst short {blocked}s"
        );
        assert!(
            rescued < blocked,
            "stealing did not help: {rescued}s vs {blocked}s"
        );
    }

    #[test]
    fn report_is_indexed_by_job_id() {
        let trace = fast_trace(vec![(0, vec![10]), (1, vec![10]), (2, vec![10])]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::Hawk));
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.job, JobId(i as u32));
        }
    }

    #[test]
    fn submissions_respect_trace_offsets() {
        // Jobs 0 and 1 are 150 ms apart; measured submit offsets must be
        // at least that far apart (sleep never wakes early).
        let trace = fast_trace(vec![(0, vec![5]), (150, vec![5])]);
        let report = run_prototype(&trace, &fast_cfg(ProtoMode::Sparrow));
        let gap = report.jobs[1].submit_offset - report.jobs[0].submit_offset;
        assert!(gap >= Duration::from_millis(145), "gap {gap:?}");
    }
}
