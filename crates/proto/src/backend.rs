//! [`ProtoBackend`]: the prototype as a [`Backend`] for the shared
//! policies.
//!
//! This is the piece that closes the paper's §4.4 loop in-repo: the exact
//! `Arc<dyn Scheduler>` value an [`Experiment`](hawk_core::Experiment)
//! runs on the simulator can be re-run on the real-time prototype with
//! one line, and both produce [`MetricsReport`]s in the same conventions.

use std::sync::Arc;

use hawk_core::{Backend, MetricsReport, Scheduler, SimConfig};
use hawk_workload::Trace;

use crate::fault::FaultSpec;
use crate::runtime::{run_prototype, ExecutionMode, ProtoConfig};

/// Runs experiment cells on the prototype cluster.
///
/// [`SimConfig`] maps onto the prototype as follows: `nodes` → worker
/// daemons, `cutoff`/`seed`/`util_interval`/`dynamics`/`speeds`/
/// `admission` carry over directly, and the config's network topology
/// ([`SimConfig::topology_spec`] — the flat constant model unless
/// `.topology(..)` selected a fat tree) becomes the virtual router's
/// message-delay model (ignored in real-time mode, where messaging
/// latency is whatever the machine provides). Fields the execution model
/// cannot honour are rejected or ignored:
///
/// * `misestimate` must be `None` — the prototype runs exact estimates
///   (panics otherwise rather than silently diverging);
/// * `central_overhead` is ignored: the central daemon is a real thread
///   (or a real mailbox) whose processing cost is whatever it actually
///   costs.
///
/// # Examples
///
/// ```
/// use hawk_core::{compare, Experiment, SimBackend};
/// use hawk_core::scheduler::Hawk;
/// use hawk_proto::ProtoBackend;
/// use hawk_workload::motivation::MotivationConfig;
/// use hawk_workload::JobClass;
///
/// let trace = MotivationConfig {
///     jobs: 12,
///     short_tasks: 3,
///     long_tasks: 8,
///     ..Default::default()
/// }
/// .generate(2);
/// let cell = Experiment::builder()
///     .nodes(16)
///     .scheduler(Hawk::new(0.2))
///     .trace(trace)
///     .build();
///
/// // One policy, two backends; the reports share every convention.
/// let sim = cell.run_on(&SimBackend);
/// let proto = cell.run_on(&ProtoBackend::deterministic());
/// assert_eq!(sim.results.len(), proto.results.len());
/// let cmp = compare(&proto, &sim, JobClass::Long);
/// assert!(cmp.p50_ratio.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ProtoBackend {
    /// Number of distributed scheduler daemons (paper: 10).
    pub dist_schedulers: usize,
    /// `true` runs live threads on the wall clock; `false` runs the
    /// deterministic virtual-clock router.
    pub real_time: bool,
    /// Fault injection for the virtual router (must stay
    /// [`FaultSpec::none`] in real-time mode). [`FaultSpec::none`] leaves
    /// runs byte-identical to a backend without the field.
    pub faults: FaultSpec,
}

impl ProtoBackend {
    /// The deterministic virtual-clock backend (byte-identical per seed)
    /// with the paper's 10 distributed schedulers.
    pub fn deterministic() -> Self {
        ProtoBackend {
            dist_schedulers: 10,
            real_time: false,
            faults: FaultSpec::none(),
        }
    }

    /// The wall-clock threaded backend with the paper's 10 distributed
    /// schedulers. Trace times are wall-clock offsets: scale traces down
    /// first (see `hawk_workload::sample`).
    pub fn real_time() -> Self {
        ProtoBackend {
            dist_schedulers: 10,
            real_time: true,
            faults: FaultSpec::none(),
        }
    }

    /// Same backend with a different distributed-scheduler count.
    pub fn dist_schedulers(mut self, count: usize) -> Self {
        self.dist_schedulers = count;
        self
    }

    /// Same backend with fault injection (virtual-clock mode only). A
    /// lossy spec must also carry timeouts — see
    /// [`FaultSpec::hardened`].
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// The [`ProtoConfig`] a given [`SimConfig`] maps to.
    pub fn config_for(&self, sim: &SimConfig) -> ProtoConfig {
        assert!(
            sim.misestimate.is_none(),
            "the prototype backend runs exact estimates; drop `.misestimate(..)`"
        );
        ProtoConfig {
            workers: sim.nodes,
            dist_schedulers: self.dist_schedulers,
            cutoff: sim.cutoff,
            util_interval: sim.util_interval,
            seed: sim.seed,
            mode: if self.real_time {
                ExecutionMode::RealTime
            } else {
                ExecutionMode::Virtual {
                    topology: sim.topology_spec(),
                }
            },
            dynamics: sim.dynamics.clone(),
            speeds: sim.speeds.clone(),
            faults: self.faults.clone(),
            admission: sim.admission,
        }
    }
}

impl Backend for ProtoBackend {
    fn name(&self) -> String {
        if self.real_time {
            "proto-rt".to_string()
        } else {
            "proto".to_string()
        }
    }

    fn run_cell(
        &self,
        trace: &Trace,
        scheduler: Arc<dyn Scheduler>,
        sim: &SimConfig,
    ) -> MetricsReport {
        let cfg = self.config_for(sim);
        let name = scheduler.name();
        run_prototype(trace, scheduler, &cfg).into_metrics(name, sim.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_core::scheduler::Sparrow;
    use hawk_core::Experiment;
    use hawk_simcore::{SimDuration, SimTime};
    use hawk_workload::{Job, JobId};

    fn tiny_trace() -> Trace {
        let jobs = vec![
            Job {
                id: JobId(0),
                submission: SimTime::ZERO,
                tasks: vec![SimDuration::from_millis(40); 3],
                generated_class: None,
            },
            Job {
                id: JobId(1),
                submission: SimTime::from_micros(1_000),
                tasks: vec![SimDuration::from_millis(2); 2],
                generated_class: None,
            },
        ];
        Trace::new(jobs).unwrap()
    }

    #[test]
    fn backend_reports_in_shared_conventions() {
        let cell = Experiment::builder()
            .nodes(8)
            .scheduler(Sparrow::new())
            .trace(tiny_trace())
            .cutoff(hawk_workload::classify::Cutoff(SimDuration::from_millis(
                10,
            )))
            .build();
        let report = cell.run_on(&ProtoBackend::deterministic());
        assert_eq!(report.scheduler, "sparrow");
        assert_eq!(report.nodes, 8);
        assert_eq!(report.results.len(), 2);
        // Deterministic: a second run is identical.
        let again = cell.run_on(&ProtoBackend::deterministic());
        assert_eq!(report.results, again.results);
        assert_eq!(report.events, again.events);
    }

    #[test]
    #[should_panic(expected = "exact estimates")]
    fn misestimation_is_rejected() {
        use hawk_workload::classify::MisestimateRange;
        let sim = SimConfig {
            misestimate: Some(MisestimateRange::symmetric(0.5)),
            ..SimConfig::default()
        };
        ProtoBackend::deterministic().config_for(&sim);
    }
}
