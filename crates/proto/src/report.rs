//! Prototype run results.

use std::time::Duration;

use hawk_simcore::stats::{mean, median, percentile};
use hawk_workload::{JobClass, JobId};

/// One job's outcome in a prototype run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtoJobResult {
    /// The job.
    pub job: JobId,
    /// Class under the configured cutoff (exact estimates).
    pub class: JobClass,
    /// When the job was submitted, relative to run start.
    pub submit_offset: Duration,
    /// Wall-clock runtime: completion − submission.
    pub runtime: Duration,
}

/// Everything measured in one prototype run.
#[derive(Debug, Clone)]
pub struct ProtoReport {
    /// Per-job outcomes, indexed by job id.
    pub jobs: Vec<ProtoJobResult>,
    /// Periodic utilization samples (fraction of workers executing).
    pub utilization_samples: Vec<f64>,
}

impl ProtoReport {
    /// Runtimes in seconds of all jobs of `class`.
    pub fn runtimes(&self, class: JobClass) -> Vec<f64> {
        self.jobs
            .iter()
            .filter(|j| j.class == class)
            .map(|j| j.runtime.as_secs_f64())
            .collect()
    }

    /// The `p`-th percentile runtime of `class` jobs, seconds.
    pub fn runtime_percentile(&self, class: JobClass, p: f64) -> Option<f64> {
        percentile(&self.runtimes(class), p)
    }

    /// Mean runtime of `class` jobs, seconds.
    pub fn mean_runtime(&self, class: JobClass) -> Option<f64> {
        mean(&self.runtimes(class))
    }

    /// Median utilization sample.
    pub fn median_utilization(&self) -> Option<f64> {
        median(&self.utilization_samples)
    }

    /// Maximum utilization sample.
    pub fn max_utilization(&self) -> Option<f64> {
        self.utilization_samples
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(job: u32, class: JobClass, millis: u64) -> ProtoJobResult {
        ProtoJobResult {
            job: JobId(job),
            class,
            submit_offset: Duration::ZERO,
            runtime: Duration::from_millis(millis),
        }
    }

    #[test]
    fn percentiles_by_class() {
        let report = ProtoReport {
            jobs: vec![
                result(0, JobClass::Short, 100),
                result(1, JobClass::Short, 300),
                result(2, JobClass::Long, 5_000),
            ],
            utilization_samples: vec![0.2, 0.8, 0.5],
        };
        assert_eq!(report.runtime_percentile(JobClass::Short, 50.0), Some(0.2));
        assert_eq!(report.runtime_percentile(JobClass::Long, 90.0), Some(5.0));
        assert_eq!(report.mean_runtime(JobClass::Short), Some(0.2));
        assert_eq!(report.median_utilization(), Some(0.5));
        assert_eq!(report.max_utilization(), Some(0.8));
    }

    #[test]
    fn empty_class_is_none() {
        let report = ProtoReport {
            jobs: vec![],
            utilization_samples: vec![],
        };
        assert_eq!(report.runtime_percentile(JobClass::Short, 50.0), None);
        assert_eq!(report.median_utilization(), None);
        assert_eq!(report.max_utilization(), None);
    }
}
