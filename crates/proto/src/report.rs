//! Prototype run results, in the simulator's metric conventions.
//!
//! [`ProtoReport`] mirrors [`MetricsReport`]'s quantile discipline: one
//! collection pass, one sort, then every percentile read through the
//! shared [`percentile_of_sorted`] — so a prototype number and a
//! simulator number at the same percentile are computed by the same code
//! path and are directly comparable. [`ProtoReport::into_metrics`]
//! finishes the job, converting a prototype run into a full
//! [`MetricsReport`] for [`hawk_core::compare`] and the conformance
//! harness.

use std::time::Duration;

use hawk_core::{AdmissionStats, ClassSummary, JobResult, MetricsReport, StreamingStats};
use hawk_net::NetworkStats;
use hawk_simcore::stats::{mean, median, percentile_of_sorted};
use hawk_simcore::SimTime;
use hawk_workload::{JobClass, JobId};

/// One job's outcome in a prototype run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtoJobResult {
    /// The job.
    pub job: JobId,
    /// Class under the configured cutoff (exact estimates).
    pub class: JobClass,
    /// Number of tasks.
    pub num_tasks: usize,
    /// When the job was submitted, relative to run start (wall clock in
    /// the threaded runtime, virtual clock in the deterministic one).
    pub submit_offset: Duration,
    /// Runtime: completion − submission.
    pub runtime: Duration,
}

/// Everything measured in one prototype run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoReport {
    /// Per-job outcomes, indexed by job id.
    pub jobs: Vec<ProtoJobResult>,
    /// Periodic utilization samples (fraction of workers executing).
    pub utilization_samples: Vec<f64>,
    /// Successful steal operations (entries moved > 0).
    pub steals: u64,
    /// Steal attempts (idle transitions that picked victims).
    pub steal_attempts: u64,
    /// Entries migrated off failed workers (probes re-probed, central
    /// tasks re-placed). Zero on static clusters.
    pub migrations: u64,
    /// Reservations abandoned at node failure (job had no unlaunched
    /// tasks left). Zero on static clusters.
    pub abandons: u64,
    /// Messages processed across all daemons (the prototype's analogue of
    /// the simulator's event count).
    pub messages: u64,
    /// Per-link-class message counts and steal-locality counters from the
    /// virtual router's network topology. All-zero under the flat constant
    /// model and in the threaded runtime (real channels have no modelled
    /// topology).
    pub network: NetworkStats,
    /// Messages dropped by fault injection. Observability only: fault
    /// counters are *not* mapped into [`MetricsReport`] by
    /// [`Self::into_metrics`], so digests compare outcomes, not the fault
    /// machinery that produced them.
    pub drops: u64,
    /// Messages duplicated by fault injection. Excluded from digests.
    pub dups: u64,
    /// Hardened-protocol retransmissions (probe re-sends, bind/steal
    /// retries). Excluded from digests.
    pub retries: u64,
    /// Hardened timeouts that fired after exhausting their retry budget
    /// (or, for job chains, that found overdue work). Excluded from
    /// digests.
    pub timeouts_fired: u64,
    /// Tasks relaunched under a new attempt by the hardened job chains.
    /// Excluded from digests.
    pub relaunched: u64,
    /// Streaming per-class runtime quantiles folded from the bounded
    /// sinks both runtimes feed at job completion — the prototype's half
    /// of the serving-mode conformance check. Shed jobs are excluded,
    /// mirroring the simulator's sinks. Mapped into
    /// [`MetricsReport::streaming`] by [`Self::into_metrics`].
    pub streaming: StreamingStats,
    /// Admission-control outcome counters from the shared
    /// [`AdmissionPlan`](hawk_core::AdmissionPlan). Unlike the fault
    /// counters these *are* mapped into [`MetricsReport::admission`]:
    /// the plan is a pure function of the trace and config, so both
    /// backends must report byte-identical counts per seed.
    pub admission: AdmissionStats,
}

impl ProtoReport {
    /// Runtimes in seconds of all jobs of `class`, in job-id order.
    pub fn runtimes(&self, class: JobClass) -> Vec<f64> {
        self.jobs
            .iter()
            .filter(|j| j.class == class)
            .map(|j| j.runtime.as_secs_f64())
            .collect()
    }

    /// The per-class runtimes collected once and sorted ascending, ready
    /// for repeated reads through [`percentile_of_sorted`] — the same
    /// convention as [`MetricsReport::sorted_runtimes`].
    pub fn sorted_runtimes(&self, class: JobClass) -> Vec<f64> {
        let mut runtimes = self.runtimes(class);
        runtimes.sort_by(|a, b| a.partial_cmp(b).expect("runtimes are never NaN"));
        runtimes
    }

    /// The `p`-th percentile runtime of `class` jobs, seconds, via the
    /// shared sorted-percentile convention.
    pub fn runtime_percentile(&self, class: JobClass, p: f64) -> Option<f64> {
        let sorted = self.sorted_runtimes(class);
        (!sorted.is_empty()).then(|| percentile_of_sorted(&sorted, p))
    }

    /// Mean runtime of `class` jobs, seconds.
    pub fn mean_runtime(&self, class: JobClass) -> Option<f64> {
        mean(&self.runtimes(class))
    }

    /// Per-class summary in the exact shape [`MetricsReport::summary`]
    /// produces, so prototype and simulator classes summarize through one
    /// type.
    pub fn summary(&self, class: JobClass) -> ClassSummary {
        let mean = self.mean_runtime(class);
        let sorted = self.sorted_runtimes(class);
        let pctl = |p: f64| (!sorted.is_empty()).then(|| percentile_of_sorted(&sorted, p));
        ClassSummary {
            class,
            jobs: sorted.len(),
            p50: pctl(50.0),
            p90: pctl(90.0),
            mean,
        }
    }

    /// Median utilization sample.
    pub fn median_utilization(&self) -> Option<f64> {
        median(&self.utilization_samples)
    }

    /// Maximum utilization sample.
    pub fn max_utilization(&self) -> Option<f64> {
        self.utilization_samples
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
    }

    /// Converts the run into a [`MetricsReport`]: submissions and
    /// completions become microsecond [`SimTime`]s on the run-relative
    /// clock, counters map one-to-one (`messages` → `events`), and the
    /// class recorded at submission becomes both the true and the
    /// scheduled class (the prototype runs exact estimates). The result
    /// plugs straight into [`hawk_core::compare`] and the digest
    /// machinery of the determinism suites.
    pub fn into_metrics(self, scheduler: String, nodes: usize) -> MetricsReport {
        let mut makespan = SimTime::ZERO;
        let results: Vec<JobResult> = self
            .jobs
            .iter()
            .map(|j| {
                let submission = SimTime::from_micros(j.submit_offset.as_micros() as u64);
                let completion =
                    SimTime::from_micros((j.submit_offset + j.runtime).as_micros() as u64);
                makespan = makespan.max(completion);
                JobResult {
                    job: j.job,
                    true_class: j.class,
                    scheduled_class: j.class,
                    submission,
                    completion,
                    num_tasks: j.num_tasks,
                }
            })
            .collect();
        MetricsReport {
            scheduler,
            nodes,
            results,
            median_utilization: self.median_utilization().unwrap_or(0.0),
            max_utilization: self.max_utilization().unwrap_or(0.0),
            utilization_samples: self.utilization_samples,
            makespan,
            events: self.messages,
            steals: self.steals,
            steal_attempts: self.steal_attempts,
            migrations: self.migrations,
            abandons: self.abandons,
            network: self.network,
            sharded: None,
            streaming: self.streaming,
            live: None,
            admission: self.admission,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(job: u32, class: JobClass, millis: u64) -> ProtoJobResult {
        ProtoJobResult {
            job: JobId(job),
            class,
            num_tasks: 1,
            submit_offset: Duration::ZERO,
            runtime: Duration::from_millis(millis),
        }
    }

    fn report(jobs: Vec<ProtoJobResult>) -> ProtoReport {
        ProtoReport {
            jobs,
            utilization_samples: vec![0.2, 0.8, 0.5],
            steals: 3,
            steal_attempts: 7,
            migrations: 0,
            abandons: 0,
            messages: 100,
            network: NetworkStats::default(),
            drops: 0,
            dups: 0,
            retries: 0,
            timeouts_fired: 0,
            relaunched: 0,
            streaming: StreamingStats::default(),
            admission: AdmissionStats::default(),
        }
    }

    #[test]
    fn percentiles_by_class() {
        let report = report(vec![
            result(0, JobClass::Short, 100),
            result(1, JobClass::Short, 300),
            result(2, JobClass::Long, 5_000),
        ]);
        assert_eq!(report.runtime_percentile(JobClass::Short, 50.0), Some(0.2));
        assert_eq!(report.runtime_percentile(JobClass::Long, 90.0), Some(5.0));
        assert_eq!(report.mean_runtime(JobClass::Short), Some(0.2));
        assert_eq!(report.median_utilization(), Some(0.5));
        assert_eq!(report.max_utilization(), Some(0.8));
        let s = report.summary(JobClass::Short);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.p50, Some(0.2));
    }

    #[test]
    fn empty_class_is_none() {
        let report = ProtoReport {
            jobs: vec![],
            utilization_samples: vec![],
            steals: 0,
            steal_attempts: 0,
            migrations: 0,
            abandons: 0,
            messages: 0,
            network: NetworkStats::default(),
            drops: 0,
            dups: 0,
            retries: 0,
            timeouts_fired: 0,
            relaunched: 0,
            streaming: StreamingStats::default(),
            admission: AdmissionStats::default(),
        };
        assert_eq!(report.runtime_percentile(JobClass::Short, 50.0), None);
        assert_eq!(report.median_utilization(), None);
        assert_eq!(report.max_utilization(), None);
        assert_eq!(report.summary(JobClass::Long).p50, None);
    }

    /// The satellite fix pinned: both report types compute the same
    /// percentile on the same sample, through the same
    /// `percentile_of_sorted` convention.
    #[test]
    fn percentile_convention_matches_metrics_report() {
        use hawk_simcore::SimTime;

        let millis = [130u64, 20, 510, 90, 250, 40, 730, 610, 170, 380];
        let proto = report(
            millis
                .iter()
                .enumerate()
                .map(|(i, &ms)| result(i as u32, JobClass::Short, ms))
                .collect(),
        );
        let metrics = MetricsReport {
            scheduler: "pin".into(),
            nodes: 1,
            results: millis
                .iter()
                .enumerate()
                .map(|(i, &ms)| JobResult {
                    job: JobId(i as u32),
                    true_class: JobClass::Short,
                    scheduled_class: JobClass::Short,
                    submission: SimTime::ZERO,
                    completion: SimTime::from_micros(ms * 1_000),
                    num_tasks: 1,
                })
                .collect(),
            median_utilization: 0.0,
            max_utilization: 0.0,
            utilization_samples: vec![],
            makespan: SimTime::ZERO,
            events: 0,
            steals: 0,
            steal_attempts: 0,
            migrations: 0,
            abandons: 0,
            network: NetworkStats::default(),
            sharded: None,
            streaming: StreamingStats::default(),
            live: None,
            admission: AdmissionStats::default(),
        };
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(
                proto.runtime_percentile(JobClass::Short, p),
                metrics.runtime_percentile(JobClass::Short, p),
                "percentile {p} diverged between the two report types"
            );
        }
        assert_eq!(
            proto.summary(JobClass::Short),
            metrics.summary(JobClass::Short)
        );
    }

    #[test]
    fn into_metrics_preserves_runtimes_and_counters() {
        let mut r0 = result(0, JobClass::Short, 100);
        r0.submit_offset = Duration::from_millis(50);
        let mut proto = report(vec![r0, result(1, JobClass::Long, 2_000)]);
        proto.admission = AdmissionStats {
            sheds_short: 0,
            sheds_long: 2,
            deferrals_short: 0,
            deferrals_long: 5,
        };
        let m = proto.clone().into_metrics("hawk".into(), 8);
        assert_eq!(m.scheduler, "hawk");
        assert_eq!(m.nodes, 8);
        assert_eq!(m.results.len(), 2);
        assert_eq!(m.results[0].runtime().as_secs_f64(), 0.1);
        assert_eq!(m.results[0].submission, SimTime::from_micros(50_000));
        assert_eq!(m.makespan, SimTime::from_micros(2_000_000));
        assert_eq!(m.steals, 3);
        assert_eq!(m.steal_attempts, 7);
        assert_eq!(m.events, 100);
        // Admission counters map through — unlike the fault counters,
        // which digests deliberately never see.
        assert_eq!(m.admission, proto.admission);
        assert_eq!(m.admission.sheds(), 2);
        assert_eq!(m.admission.deferrals(), 5);
        // The percentile read through MetricsReport equals the proto one.
        assert_eq!(
            m.runtime_percentile(JobClass::Short, 90.0),
            proto.runtime_percentile(JobClass::Short, 90.0)
        );
    }
}
