//! Deterministic fault injection for the virtual-clock router.
//!
//! A [`FaultSpec`] makes message *delivery* a policy: the virtual router
//! commits every send through one seam ([`crate::virt`]'s `commit`),
//! where the spec may drop it, deliver it twice, defer it by a reorder
//! jitter or a delay spike, or sever it entirely during a scripted
//! partition window. Every probabilistic knob draws from its own
//! dedicated [`SimRng`] stream, split from `seed ^ FAULT_SALT` in a
//! frozen order, so a faulty run replays **byte-identically** per seed —
//! the same contract the fault-free router has always had, extended to
//! its failures.
//!
//! [`FaultSpec::none()`] injects nothing and draws nothing: the router
//! takes the exact pre-fault code path, which is what keeps the pinned
//! golden digests valid.
//!
//! Lossy specs (a nonzero drop rate or any partition window) require the
//! hardened daemon protocol — [`TimeoutSpec`] — because a lost message
//! with no retry timer is a permanently wedged cluster; the runtime
//! rejects the combination at startup instead of panicking mid-run.

use hawk_net::Endpoint;
use hawk_simcore::{SimDuration, SimRng, SimTime};

/// Salt xored into `ProtoConfig::seed` to derive the fault streams — the
/// same convention the scenario engine uses for its retime salt, so the
/// fault lanes never overlap the daemon streams split from the raw seed.
const FAULT_SALT: u64 = 0x4641_554c_5453_3031; // "FAULTS01"

/// A scripted network partition: during `[from, until)`, every message
/// crossing the boundary between `island` and the rest of the cluster is
/// dropped (both directions). Messages within the island, and within the
/// remainder, still flow.
///
/// Membership is by *host* index: daemons map onto hosts via
/// [`Endpoint::host`] (worker `i` lives on host `i`, distributed
/// scheduler `s` on host `s % workers`, the central scheduler on host 0),
/// so islanding a host range cuts off its workers *and* the scheduler
/// daemons co-hosted there.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// Partition onset (inclusive).
    pub from: SimTime,
    /// Partition heal (exclusive).
    pub until: SimTime,
    /// Host indices cut off from the rest of the cluster.
    pub island: Vec<u32>,
}

impl PartitionWindow {
    /// True if a `src → dst` message at `now` crosses the severed
    /// boundary.
    fn severs(&self, now: SimTime, src_host: u32, dst_host: u32) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        self.island.contains(&src_host) != self.island.contains(&dst_host)
    }
}

/// A probabilistic latency spike: with `probability`, a delivered message
/// is deferred by `extra` on top of its topology delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySpike {
    /// Per-message spike probability.
    pub probability: f64,
    /// Extra delay charged when the spike fires.
    pub extra: SimDuration,
}

/// Timeout and retry knobs of the hardened daemon protocol.
///
/// `None` on [`FaultSpec::timeouts`] disables the hardening entirely: the
/// daemons arm no timers, send no acks and draw no extra randomness —
/// which is what keeps [`FaultSpec::none()`] runs byte-identical to the
/// historical router. `Some` turns on:
///
/// * a per-job timer chain at the owning scheduler (base interval
///   `probe`, exponential backoff capped at 8×) that re-probes a fresh
///   server while unlaunched tasks remain and relaunches handed-out tasks
///   presumed lost;
/// * a worker-side bind timeout (`bind`): an unanswered `TaskRequest` is
///   retransmitted up to `retries` times, then resolved as a local
///   cancel so the slot never wedges;
/// * steal request/ack/transfer (`steal`): a thief acks every non-empty
///   grant; the victim retransmits an unacked grant up to `retries`
///   times and then relocates the entries, so stolen work is never lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutSpec {
    /// Base interval of the per-job scheduler timer chain.
    pub probe: SimDuration,
    /// Worker-side bind-reply timeout.
    pub bind: SimDuration,
    /// Steal round-trip timeout (thief) and grant retransmit interval
    /// (victim).
    pub steal: SimDuration,
    /// Bounded retransmits per hop (bind requests, steal grants).
    pub retries: u32,
}

impl Default for TimeoutSpec {
    fn default() -> Self {
        TimeoutSpec {
            probe: SimDuration::from_secs(30),
            bind: SimDuration::from_secs(1),
            steal: SimDuration::from_secs(1),
            retries: 3,
        }
    }
}

/// The delivery policy of the virtual router. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Per-message drop probability.
    pub drop: f64,
    /// Per-delivered-message duplication probability (the copy is charged
    /// its own topology delay and jitter; it cannot itself drop or
    /// duplicate).
    pub duplicate: f64,
    /// Uniform extra delay in `[0, reorder_jitter)` per delivered message
    /// — enough to break per-pair FIFO and reorder the protocol.
    pub reorder_jitter: SimDuration,
    /// Probabilistic latency spikes.
    pub delay_spike: Option<DelaySpike>,
    /// Scripted partition windows (checked in order; any severing window
    /// drops the message).
    pub partitions: Vec<PartitionWindow>,
    /// Hardened-protocol knobs; `None` leaves the daemons exactly as they
    /// are fault-free. Required whenever the spec is lossy.
    pub timeouts: Option<TimeoutSpec>,
}

impl FaultSpec {
    /// The identity spec: nothing injected, nothing hardened, zero RNG
    /// draws — byte-identical to the pre-fault router.
    pub fn none() -> Self {
        FaultSpec {
            drop: 0.0,
            duplicate: 0.0,
            reorder_jitter: SimDuration::ZERO,
            delay_spike: None,
            partitions: Vec::new(),
            timeouts: None,
        }
    }

    /// A moderate chaos cell: 1 % drops, 0.5 % duplicates, 2 ms reorder
    /// jitter, and the default hardened protocol. The conformance fault
    /// axis and the `chaos_sweep --smoke` leg both build on this.
    pub fn chaos() -> Self {
        FaultSpec {
            drop: 0.01,
            duplicate: 0.005,
            reorder_jitter: SimDuration::from_millis(2),
            delay_spike: None,
            partitions: Vec::new(),
            timeouts: Some(TimeoutSpec::default()),
        }
    }

    /// Sets the per-message drop probability.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        self.drop = p;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "duplicate probability out of range"
        );
        self.duplicate = p;
        self
    }

    /// Sets the reorder jitter bound.
    pub fn reorder_jitter(mut self, jitter: SimDuration) -> Self {
        self.reorder_jitter = jitter;
        self
    }

    /// Sets a probabilistic delay spike.
    pub fn delay_spike(mut self, probability: f64, extra: SimDuration) -> Self {
        self.delay_spike = Some(DelaySpike { probability, extra });
        self
    }

    /// Adds a scripted partition window islanding `island` during
    /// `[from, until)`.
    pub fn partition(mut self, from: SimTime, until: SimTime, island: Vec<u32>) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(PartitionWindow {
            from,
            until,
            island,
        });
        self
    }

    /// Enables the hardened daemon protocol with `spec`'s knobs.
    pub fn hardened(mut self, spec: TimeoutSpec) -> Self {
        self.timeouts = Some(spec);
        self
    }

    /// True if any injection knob is active (the router must route sends
    /// through the fault lanes).
    pub fn injects(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.reorder_jitter > SimDuration::ZERO
            || self.delay_spike.is_some()
            || !self.partitions.is_empty()
    }

    /// True if messages can be lost outright (drops or partitions) — the
    /// configurations that require [`Self::timeouts`].
    pub fn lossy(&self) -> bool {
        self.drop > 0.0 || !self.partitions.is_empty()
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// Runtime state of the fault seam: the spec, one dedicated RNG stream
/// per probabilistic knob, and the injection counters the report surfaces.
///
/// Stream split order is **frozen**: drop, jitter, spike, duplicate.
/// Append new streams after these four; never reorder — byte-identical
/// replay of faulty runs depends on it (the same append-only rule the
/// daemon streams follow in `runtime::build_cluster`).
pub(crate) struct FaultLanes {
    spec: FaultSpec,
    /// Host count for [`Endpoint::host`] partition membership.
    hosts: usize,
    drop_rng: SimRng,
    jitter_rng: SimRng,
    spike_rng: SimRng,
    dup_rng: SimRng,
    pub(crate) drops: u64,
    pub(crate) dups: u64,
}

impl FaultLanes {
    pub(crate) fn new(spec: FaultSpec, seed: u64, hosts: usize) -> Self {
        let mut root = SimRng::seed_from_u64(seed ^ FAULT_SALT);
        // Frozen stream order — see the struct docs.
        let drop_rng = root.split();
        let jitter_rng = root.split();
        let spike_rng = root.split();
        let dup_rng = root.split();
        FaultLanes {
            spec,
            hosts,
            drop_rng,
            jitter_rng,
            spike_rng,
            dup_rng,
            drops: 0,
            dups: 0,
        }
    }

    /// True if the seam must be consulted at all; `false` routes sends
    /// through the exact pre-fault path (no draws, no counters).
    pub(crate) fn active(&self) -> bool {
        self.spec.injects()
    }

    /// True if a `src → dst` message at `now` is severed by a partition
    /// window. No RNG draw: partitions are scripted, not sampled.
    pub(crate) fn partitioned(&self, now: SimTime, src: Endpoint, dst: Endpoint) -> bool {
        if self.spec.partitions.is_empty() {
            return false;
        }
        let s = src.host(self.hosts) as u32;
        let d = dst.host(self.hosts) as u32;
        self.spec.partitions.iter().any(|w| w.severs(now, s, d))
    }

    /// Decides one delivered-or-dropped outcome: `None` drops the
    /// message, `Some(extra)` delivers it `extra` later than its
    /// topology delay. Draw order per message: drop, jitter, spike.
    pub(crate) fn deliver(&mut self) -> Option<SimDuration> {
        if self.spec.drop > 0.0 && self.drop_rng.chance(self.spec.drop) {
            self.drops += 1;
            return None;
        }
        Some(self.perturb())
    }

    /// Draws the delivery perturbation (jitter + spike) for one message —
    /// also used for the duplicate copy, which gets its own draws.
    pub(crate) fn perturb(&mut self) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        if self.spec.reorder_jitter > SimDuration::ZERO {
            let bound = self.spec.reorder_jitter.as_micros();
            extra += SimDuration::from_micros(self.jitter_rng.gen_range(0, bound));
        }
        if let Some(spike) = self.spec.delay_spike {
            if self.spike_rng.chance(spike.probability) {
                extra += spike.extra;
            }
        }
        extra
    }

    /// Draws whether a delivered message is also duplicated.
    pub(crate) fn duplicate(&mut self) -> bool {
        if self.spec.duplicate > 0.0 && self.dup_rng.chance(self.spec.duplicate) {
            self.dups += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_cluster::ServerId;

    #[test]
    fn none_is_inert() {
        let spec = FaultSpec::none();
        assert!(!spec.injects());
        assert!(!spec.lossy());
        assert_eq!(spec, FaultSpec::default());
        let lanes = FaultLanes::new(spec, 7, 10);
        assert!(!lanes.active());
    }

    #[test]
    fn lanes_replay_byte_identically_per_seed() {
        let spec = FaultSpec::chaos().delay_spike(0.1, SimDuration::from_millis(5));
        let outcomes = |seed: u64| {
            let mut lanes = FaultLanes::new(spec.clone(), seed, 10);
            let seq: Vec<Option<SimDuration>> = (0..200).map(|_| lanes.deliver()).collect();
            let dups: Vec<bool> = (0..200).map(|_| lanes.duplicate()).collect();
            (seq, dups, lanes.drops, lanes.dups)
        };
        assert_eq!(outcomes(42), outcomes(42));
        assert_ne!(outcomes(42), outcomes(43));
    }

    #[test]
    fn partition_severs_only_across_the_island_during_the_window() {
        let spec =
            FaultSpec::none().partition(SimTime::from_secs(10), SimTime::from_secs(20), vec![0, 1]);
        let lanes = FaultLanes::new(spec, 1, 8);
        let w = |i: u32| Endpoint::Server(ServerId(i));
        let at = SimTime::from_secs(15);
        // Across the boundary, both directions.
        assert!(lanes.partitioned(at, w(0), w(5)));
        assert!(lanes.partitioned(at, w(5), w(1)));
        // Within the island and within the remainder.
        assert!(!lanes.partitioned(at, w(0), w(1)));
        assert!(!lanes.partitioned(at, w(4), w(5)));
        // Outside the window.
        assert!(!lanes.partitioned(SimTime::from_secs(9), w(0), w(5)));
        assert!(!lanes.partitioned(SimTime::from_secs(20), w(0), w(5)));
        // Scheduler daemons are partitioned by their host mapping: the
        // central scheduler lives on host 0, inside this island.
        assert!(lanes.partitioned(at, Endpoint::Central, w(5)));
        assert!(!lanes.partitioned(at, Endpoint::Central, w(1)));
    }

    #[test]
    fn drop_rate_and_duplicates_are_roughly_calibrated() {
        let spec = FaultSpec::none()
            .drop_probability(0.2)
            .duplicate_probability(0.1);
        let mut lanes = FaultLanes::new(spec, 3, 4);
        for _ in 0..10_000 {
            let _ = lanes.deliver();
            let _ = lanes.duplicate();
        }
        assert!((1_500..2_500).contains(&(lanes.drops as usize)));
        assert!((600..1_400).contains(&(lanes.dups as usize)));
    }

    #[test]
    fn jitter_perturbs_within_its_bound() {
        let spec = FaultSpec::none().reorder_jitter(SimDuration::from_micros(500));
        let mut lanes = FaultLanes::new(spec, 11, 4);
        let mut saw_nonzero = false;
        for _ in 0..100 {
            let extra = lanes.perturb();
            assert!(extra < SimDuration::from_micros(500));
            saw_nonzero |= extra > SimDuration::ZERO;
        }
        assert!(saw_nonzero, "jitter never fired");
    }

    #[test]
    #[should_panic(expected = "empty partition window")]
    fn degenerate_partition_window_rejected() {
        let _ = FaultSpec::none().partition(SimTime::from_secs(5), SimTime::from_secs(5), vec![0]);
    }
}
