//! The deterministic virtual-clock runtime.
//!
//! Runs the *same* daemon state machines as the threaded runtime, but
//! single-threaded under a router: every message is delivered in
//! `(virtual time, sequence)` order after a constant one-way delay, task
//! execution advances the virtual clock instead of sleeping, and all
//! randomness comes from the seeded per-daemon streams. Two runs with the
//! same trace, scheduler and seed are therefore **byte-identical** —
//! the property `tests/backend_conformance.rs` pins, and what makes the
//! prototype usable as a reproducible [`Backend`](hawk_core::Backend)
//! next to the simulator.
//!
//! The router is intentionally *not* the simulator's engine: it delivers
//! opaque daemon messages (which own heap data like stolen groups), not
//! `Copy` simulation events, and it models the prototype's real hop
//! structure — submissions land at a scheduler daemon which then probes,
//! binds round-trip through the owning scheduler, and steals cost a
//! request/reply exchange. The conformance harness checks the two
//! executions agree *qualitatively*, not that they are the same program.
//!
//! Every hop is charged by the configured [`Topology`]: the router tracks
//! which daemon is currently executing (the `src` endpoint) and asks the
//! topology for the delay to each recipient, exactly once per message in
//! delivery order — the same discipline the simulation driver follows, so
//! a contended fat tree observes an identical query protocol under both
//! backends.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hawk_cluster::ServerId;
use hawk_net::{Endpoint, Topology};
use hawk_simcore::{SimDuration, SimTime};
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobId, Trace};

use hawk_core::{AdmissionDecision, AdmissionPlan};

use crate::fault::FaultLanes;
use crate::msg::{CentralMsg, DistMsg, Net, WorkerMsg};
use crate::report::{ProtoJobResult, ProtoReport};
use crate::runtime::{
    fold_stats, fold_streaming, submission_for, ClusterSetup, ProtoConfig, Submission,
};

/// A routed delivery. `Clone` exists solely for the duplicate fault.
#[derive(Debug, Clone)]
enum Dest {
    Worker(usize, WorkerMsg),
    Dist(usize, DistMsg),
    Central(CentralMsg),
    /// Worker `i`'s running task completes.
    Finish(usize),
    /// Job `i` of the trace arrives at its scheduler.
    Submit(u32),
    /// A scripted dynamics event fires (fans out to every daemon).
    Node(NodeChange),
    /// Periodic utilization snapshot.
    UtilSample,
}

/// Heap entry: strict `(time, seq)` order — FIFO among equal timestamps.
struct Timed {
    at: SimTime,
    seq: u64,
    dest: Dest,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// [`Net`] over the router: sends enqueue deliveries at `now + delay`,
/// timers at `now + occupancy`, completions are recorded on the virtual
/// clock. The delay of each send is charged by the topology from the
/// daemon currently executing (`src`) to the recipient.
struct VirtualNet {
    queue: BinaryHeap<Timed>,
    now: SimTime,
    seq: u64,
    topology: Box<dyn Topology>,
    /// Endpoint of the daemon whose handler is currently running — set by
    /// the delivery loop before every dispatch, so sends made inside the
    /// handler are charged from the right place.
    src: Endpoint,
    running: i64,
    completions: Vec<Option<SimTime>>,
    completed: usize,
    /// Queued deliveries other than the self-perpetuating `UtilSample` —
    /// the liveness signal: when this hits zero with jobs unfinished,
    /// nothing can ever complete them.
    pending_work: usize,
    /// Usable capacity: in-service workers + down workers draining a
    /// running task (the simulator's utilization denominator).
    capacity: i64,
    /// The delivery-fault seam: spec, dedicated RNG lanes and counters.
    faults: FaultLanes,
}

impl VirtualNet {
    fn push_at(&mut self, at: SimTime, dest: Dest) {
        if !matches!(dest, Dest::UtilSample) {
            self.pending_work += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Timed { at, seq, dest });
    }

    /// Charges one wire message from the current `src` to `dst`: the
    /// topology is asked exactly once per message, in send order — on a
    /// contended fat tree the query itself commits link occupancy. A
    /// non-empty steal reply also moves the stolen work itself, so the
    /// victim→thief transfer is charged on top (free under the paper's
    /// §4.1 model, where only locality is recorded).
    fn charge(&mut self, dst: Endpoint, dest: &Dest) -> SimDuration {
        let mut delay = self.topology.delay(self.now, self.src, dst);
        if let Dest::Worker(_, WorkerMsg::StealReply { entries, .. }) = dest {
            if !entries.is_empty() {
                delay += self.topology.steal_transfer(self.now, self.src, dst);
            }
        }
        delay
    }

    /// The one seam every routed send passes through — `send_worker`,
    /// `send_dist` and `send_central` all land here, so the topology
    /// charge and the fault policy apply exactly once per message and
    /// cannot be bypassed by a new send site. (Self-timers and the
    /// task-finish alarm are *not* wire messages: they use `push_at`
    /// directly and are immune to faults.)
    ///
    /// With no injection knobs active this is byte-identical to the
    /// historical router: one topology charge, one enqueue, zero RNG
    /// draws. Otherwise, per message and in frozen draw order: a
    /// partition check (scripted, no draw) severs the route before any
    /// charge; a delivered message draws drop, then jitter, then spike;
    /// a delivered message may then duplicate, and the copy — a real
    /// second message on the wire — gets its own topology charge and
    /// jitter/spike draws but can neither drop nor duplicate itself.
    fn commit(&mut self, dst: Endpoint, dest: Dest) {
        if !self.faults.active() {
            let at = self.now + self.charge(dst, &dest);
            self.push_at(at, dest);
            return;
        }
        if self.faults.partitioned(self.now, self.src, dst) {
            self.faults.drops += 1;
            return;
        }
        let delay = self.charge(dst, &dest);
        let Some(extra) = self.faults.deliver() else {
            // Lost in transit: the fabric was charged, nothing arrives.
            return;
        };
        let at = self.now + delay + extra;
        if self.faults.duplicate() {
            let copy = dest.clone();
            self.push_at(at, dest);
            let extra2 = self.faults.perturb();
            let delay2 = self.charge(dst, &copy);
            let at2 = self.now + delay2 + extra2;
            self.push_at(at2, copy);
        } else {
            self.push_at(at, dest);
        }
    }
}

impl Net for VirtualNet {
    fn send_worker(&mut self, to: usize, msg: WorkerMsg) {
        self.commit(Endpoint::Server(ServerId(to as u32)), Dest::Worker(to, msg));
    }
    fn send_dist(&mut self, to: usize, msg: DistMsg) {
        self.commit(Endpoint::Scheduler(to as u32), Dest::Dist(to, msg));
    }
    fn send_central(&mut self, msg: CentralMsg) {
        self.commit(Endpoint::Central, Dest::Central(msg));
    }
    fn schedule_finish(&mut self, worker: usize, occupancy: SimDuration) {
        let at = self.now + occupancy;
        self.push_at(at, Dest::Finish(worker));
    }
    fn job_done(&mut self, job: JobId) {
        debug_assert!(self.completions[job.index()].is_none(), "double completion");
        self.completions[job.index()] = Some(self.now);
        self.completed += 1;
    }
    fn add_running(&mut self, delta: i64) {
        self.running += delta;
        debug_assert!(self.running >= 0, "running gauge went negative");
    }
    fn add_capacity(&mut self, delta: i64) {
        self.capacity += delta;
        debug_assert!(self.capacity >= 0, "capacity gauge went negative");
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn self_timer_worker(&mut self, to: usize, after: SimDuration, msg: WorkerMsg) {
        // Local alarm, not a wire message: no topology charge, no faults.
        let at = self.now + after;
        self.push_at(at, Dest::Worker(to, msg));
    }
    fn self_timer_dist(&mut self, to: usize, after: SimDuration, msg: DistMsg) {
        let at = self.now + after;
        self.push_at(at, Dest::Dist(to, msg));
    }
    fn self_timer_central(&mut self, after: SimDuration, msg: CentralMsg) {
        let at = self.now + after;
        self.push_at(at, Dest::Central(msg));
    }
}

pub(crate) fn run_virtual(
    trace: &Trace,
    mut setup: ClusterSetup,
    cfg: &ProtoConfig,
    topology: Box<dyn Topology>,
    plan: Option<AdmissionPlan>,
) -> ProtoReport {
    let mut net = VirtualNet {
        queue: BinaryHeap::with_capacity(trace.len() * 4),
        now: SimTime::ZERO,
        seq: 0,
        topology,
        // Overwritten before every handler dispatch; Central is a safe
        // placeholder for the pre-loop seeding (which sends nothing).
        src: Endpoint::Central,
        running: 0,
        completions: vec![None; trace.len()],
        completed: 0,
        pending_work: 0,
        capacity: cfg.workers as i64,
        faults: FaultLanes::new(cfg.faults.clone(), cfg.seed, cfg.workers),
    };

    // Seed the timeline: submissions, scripted dynamics, sampling. The
    // admission plan applies here, before any message exists: shed jobs
    // become zero-runtime completions at their submission time and never
    // enter the router; deferred jobs are seeded at the plan's retry
    // window but keep their trace submission as the latency origin.
    for job in trace.jobs() {
        match plan.as_ref().map(|p| p.decision(job.id)) {
            Some(AdmissionDecision::Shed) => {
                net.completions[job.id.index()] = Some(job.submission);
                net.completed += 1;
            }
            Some(AdmissionDecision::Defer { until }) => {
                net.push_at(until, Dest::Submit(job.id.0));
            }
            Some(AdmissionDecision::Admit) | None => {
                net.push_at(job.submission, Dest::Submit(job.id.0));
            }
        }
    }
    for ev in cfg.dynamics.events() {
        net.push_at(ev.at, Dest::Node(ev.change));
    }
    net.push_at(SimTime::ZERO + cfg.util_interval, Dest::UtilSample);

    let mut samples = Vec::new();
    while net.completed < trace.len() {
        let Some(Timed { at, dest, .. }) = net.queue.pop() else {
            panic!(
                "virtual prototype drained its event queue with {} unfinished jobs",
                trace.len() - net.completed
            );
        };
        net.now = at;
        if !matches!(dest, Dest::UtilSample) {
            net.pending_work -= 1;
        }
        match dest {
            Dest::UtilSample => {
                // The sampler perpetuates itself, so it must not mask a
                // wedged cluster: with no other delivery queued, nothing
                // can ever finish the remaining jobs (the virtual
                // analogue of the threaded 60 s watchdog).
                assert!(
                    net.pending_work > 0,
                    "virtual prototype is wedged: only sampler events \
                     queued with {} unfinished jobs",
                    trace.len() - net.completed
                );
                samples.push(net.running.max(0) as f64 / net.capacity.max(1) as f64);
                let next = net.now + cfg.util_interval;
                net.push_at(next, Dest::UtilSample);
                continue;
            }
            Dest::Worker(i, msg) => {
                net.src = Endpoint::Server(ServerId(i as u32));
                setup.workers[i].handle(msg, &mut net);
            }
            Dest::Dist(i, msg) => {
                net.src = Endpoint::Scheduler(i as u32);
                setup.dists[i].handle(msg, &mut net);
            }
            Dest::Central(msg) => {
                net.src = Endpoint::Central;
                let central = setup
                    .central
                    .as_mut()
                    .expect("central message without a central daemon");
                central.handle(msg, &mut net);
            }
            Dest::Finish(i) => {
                net.src = Endpoint::Server(ServerId(i as u32));
                setup.workers[i].on_task_finish(&mut net);
            }
            Dest::Submit(index) => {
                // A submission is handled in place by its owning scheduler
                // daemon: sends made while processing it (probes, central
                // assignments) originate there.
                let dist_count = setup.dists.len();
                match submission_for(
                    trace,
                    index,
                    &setup.classes,
                    &setup.central_route,
                    dist_count,
                ) {
                    Submission::Central(msg) => {
                        net.src = Endpoint::Central;
                        let central = setup
                            .central
                            .as_mut()
                            .expect("central route spawned a central daemon");
                        central.handle(msg, &mut net);
                    }
                    Submission::Dist(sched, msg) => {
                        net.src = Endpoint::Scheduler(sched as u32);
                        setup.dists[sched].handle(msg, &mut net);
                    }
                }
            }
            Dest::Node(change) => {
                // Fan the membership change out to every daemon, like the
                // threaded feeder does. Each notification is processed at
                // its recipient, so follow-up traffic (migrations,
                // re-probes) originates from the daemon reacting to it.
                let server = match change {
                    NodeChange::Down(s) | NodeChange::Up(s) => s as usize,
                };
                net.src = Endpoint::Server(ServerId(server as u32));
                setup.workers[server].handle(WorkerMsg::Node(change), &mut net);
                for (i, dist) in setup.dists.iter_mut().enumerate() {
                    net.src = Endpoint::Scheduler(i as u32);
                    dist.handle(DistMsg::Node(change), &mut net);
                }
                if let Some(central) = &mut setup.central {
                    net.src = Endpoint::Central;
                    central.handle(CentralMsg::Node(change), &mut net);
                }
            }
        }
    }

    let totals = fold_stats(
        setup.workers.iter().map(|w| w.stats),
        setup
            .dists
            .iter()
            .map(|d| d.stats)
            .chain(setup.central.as_ref().map(|c| c.stats)),
    );

    let jobs: Vec<ProtoJobResult> = trace
        .jobs()
        .iter()
        .map(|job| {
            let i = job.id.index();
            let done = net.completions[i].expect("all jobs completed");
            ProtoJobResult {
                job: job.id,
                class: setup.classes[i],
                num_tasks: job.num_tasks(),
                submit_offset: std::time::Duration::from_micros(job.submission.as_micros()),
                runtime: std::time::Duration::from_micros((done - job.submission).as_micros()),
            }
        })
        .collect();
    let streaming = fold_streaming(&jobs, plan.as_ref());
    ProtoReport {
        jobs,
        utilization_samples: samples,
        steals: totals.steals,
        steal_attempts: totals.steal_attempts,
        migrations: totals.migrations,
        abandons: totals.abandons,
        messages: totals.messages,
        network: net.topology.stats(),
        drops: net.faults.drops,
        dups: net.faults.dups,
        retries: totals.retries,
        timeouts_fired: totals.timeouts_fired,
        relaunched: totals.relaunched,
        streaming,
        admission: plan.as_ref().map(|p| p.stats()).unwrap_or_default(),
    }
}
