//! Distributed and centralized scheduler daemons.
//!
//! Both daemons delegate every *policy* decision to the shared
//! abstractions from `hawk-core`:
//!
//! * A [`DistScheduler`] owns the jobs submitted to it (each job
//!   conceptually has its own scheduler, §3.5) and places probes by
//!   calling [`Scheduler::probe_targets_into`] over a [`PlacementView`] of
//!   its **shadow cluster** — a membership-only
//!   [`hawk_cluster::Cluster`] mirror kept current by scenario dynamics
//!   notifications. On a static cluster the shadow is the identity; under
//!   churn it is exactly the live-server view the simulator's driver
//!   exposes, so failed servers are never probed. (Queue depths in the
//!   shadow are zero: a real distributed scheduler has no global queue
//!   state — load-aware policies see a uniform view, which is the honest
//!   distributed-systems answer.)
//! * The [`CentralDaemon`] *is* the simulator's §3.7 waiting-time
//!   scheduler: it wraps [`hawk_core::CentralScheduler`] — the identical
//!   placement, completion, failure-penalty and migration bookkeeping —
//!   and adds only per-job completion counting and message plumbing.
//!
//! # The hardened protocol
//!
//! With a [`TimeoutSpec`] (the fault-injecting router's companion), both
//! daemons track per-task launch state keyed by `(job, task, attempt)`
//! and run a **per-job timer chain**: a self-timer armed at submission
//! and re-armed with exponential backoff (capped at 8× the base) until
//! the job completes. Each fire re-probes a fresh server while unlaunched
//! tasks remain (counted as `retries`) and relaunches handed-out tasks
//! presumed lost — older than [`TimeoutSpec::launch_deadline`] — under a
//! bumped attempt number (counted as `relaunched`). Completions dedup by
//! task index, first report wins, so duplicated messages and
//! doubly-executed relaunches are harmless. Without a `TimeoutSpec` the
//! daemons run the exact historical code path: no timers, no clock reads,
//! no extra state.

use std::collections::HashMap;
use std::sync::Arc;

use hawk_cluster::{Cluster, QueueEntry, ServerId, TaskSpec};
use hawk_core::{CentralScheduler, PlacementView, Route, Scheduler, Scope};
use hawk_simcore::{SimDuration, SimRng, SimTime};
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobClass, JobId};

use crate::fault::TimeoutSpec;
use crate::msg::{CentralMsg, DistMsg, Net, WorkerMsg};

impl TimeoutSpec {
    /// How long a handed-out task may stay unconfirmed before the per-job
    /// chain presumes it lost: four times its duration (covers slow
    /// servers, queue noise and delay spikes) plus the chain base,
    /// doubled per prior attempt so spurious relaunches of merely-slow
    /// tasks decay geometrically.
    pub(crate) fn launch_deadline(&self, duration: SimDuration, attempt: u32) -> SimDuration {
        let base = duration
            .as_micros()
            .saturating_mul(4)
            .saturating_add(self.probe.as_micros());
        SimDuration::from_micros(base.saturating_mul(1u64 << attempt.min(5)))
    }

    /// The chain's next interval: exponential backoff capped at 8× base.
    pub(crate) fn next_interval(&self, current: SimDuration) -> SimDuration {
        let cap = self.probe.as_micros().saturating_mul(8);
        SimDuration::from_micros(current.as_micros().saturating_mul(2).min(cap))
    }
}

/// Hardened per-task launch state at a distributed scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Not held by any worker (never handed out, or relaunch-pending).
    Unlaunched,
    /// Handed out via a bind reply at `since`.
    Outstanding {
        /// Virtual time the task was handed out.
        since: SimTime,
    },
    /// First completion recorded; later reports are duplicates.
    Done,
}

/// Hardened extension of a [`DistJob`]: per-task state, attempt counters
/// and the chain's current backoff interval.
struct HardJob {
    state: Vec<TaskState>,
    attempts: Vec<u32>,
    interval: SimDuration,
}

/// Per-job late-binding state held by a distributed scheduler.
struct DistJob {
    tasks: Vec<SimDuration>,
    estimate: SimDuration,
    class: JobClass,
    next_task: usize,
    remaining: usize,
    /// `Some` iff the hardened protocol is on.
    hard: Option<HardJob>,
}

impl DistJob {
    /// True while the job still has a task no worker holds — the
    /// condition under which a displaced probe is worth replacing.
    fn has_unlaunched(&self) -> bool {
        match &self.hard {
            Some(hard) => hard.state.contains(&TaskState::Unlaunched),
            None => self.next_task < self.tasks.len(),
        }
    }
}

/// Counters a scheduler daemon folds into the
/// [`ProtoReport`](crate::ProtoReport).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SchedStats {
    pub migrations: u64,
    pub abandons: u64,
    pub handled: u64,
    /// Hardened protocol: timer-driven fresh probes sent.
    pub retries: u64,
    /// Hardened protocol: chain fires that found overdue handed-out work.
    pub timeouts_fired: u64,
    /// Hardened protocol: tasks relaunched under a bumped attempt.
    pub relaunched: u64,
}

/// A distributed scheduler daemon: Sparrow batch probing with late
/// binding (§3.5), probe placement via the shared [`Scheduler`] trait.
pub(crate) struct DistScheduler {
    /// This daemon's index — the address its self-timers route back to.
    index: usize,
    scheduler: Arc<dyn Scheduler>,
    /// Membership-only mirror of the cluster (see module docs).
    shadow: Cluster,
    jobs: HashMap<JobId, DistJob>,
    rng: SimRng,
    timeouts: Option<TimeoutSpec>,
    probe_buf: Vec<ServerId>,
    drain_scratch: Vec<QueueEntry>,
    pub(crate) stats: SchedStats,
}

impl DistScheduler {
    pub(crate) fn new(
        index: usize,
        scheduler: Arc<dyn Scheduler>,
        workers: usize,
        rng: SimRng,
        timeouts: Option<TimeoutSpec>,
    ) -> Self {
        let shadow = Cluster::new(workers, scheduler.short_partition_fraction());
        DistScheduler {
            index,
            scheduler,
            shadow,
            jobs: HashMap::new(),
            rng,
            timeouts,
            probe_buf: Vec::new(),
            drain_scratch: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// The contiguous id range of `scope` on the shadow partition.
    fn scope_range(&self, scope: Scope) -> (u32, usize) {
        let p = self.shadow.partition();
        match scope {
            Scope::Whole => (0, p.total()),
            Scope::General => (0, p.general_count()),
            Scope::ShortReserved => (p.general_count() as u32, p.short_count()),
        }
    }

    /// The scope `class` probes over under this policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy routes `class` centrally — such jobs are never
    /// submitted to a distributed scheduler.
    fn probe_scope(&self, class: JobClass) -> (u32, usize) {
        match self.scheduler.route(class) {
            Route::Distributed(scope) => self.scope_range(scope),
            Route::Central(_) => unreachable!("probes imply a distributed route"),
        }
    }

    /// Sends one fresh zero-bounce probe for `job` to a random live server
    /// of its scope.
    fn send_fresh_probe(&mut self, job: JobId, class: JobClass, net: &mut impl Net) {
        let (start, len) = self.probe_scope(class);
        let view = PlacementView::new(&self.shadow, start, len);
        let target = view.random_server(&mut self.rng);
        net.send_worker(
            target.index(),
            WorkerMsg::Probe {
                job,
                class,
                bounces: 0,
            },
        );
    }

    /// Handles one message; returns `true` on shutdown.
    pub(crate) fn handle(&mut self, msg: DistMsg, net: &mut impl Net) -> bool {
        self.stats.handled += 1;
        match msg {
            DistMsg::Submit {
                job,
                tasks,
                estimate,
                class,
            } => self.submit(job, tasks, estimate, class, net),
            DistMsg::TaskRequest { job, worker } => self.bind(job, worker, net),
            DistMsg::TaskDone { job, task } => self.complete(job, task, net),
            DistMsg::ReProbe { job, class } => self.reprobe(job, class, net),
            DistMsg::Bounce {
                job,
                class,
                bounces,
            } => {
                // Forward the bounced probe to a fresh random live server
                // of its scope, preserving the hop count.
                let (start, len) = self.probe_scope(class);
                let view = PlacementView::new(&self.shadow, start, len);
                let target = view.random_server(&mut self.rng);
                net.send_worker(
                    target.index(),
                    WorkerMsg::Probe {
                        job,
                        class,
                        bounces,
                    },
                );
            }
            DistMsg::JobTimeout { job } => self.on_job_timeout(job, net),
            DistMsg::Node(change) => self.on_node(change),
            DistMsg::Shutdown => return true,
        }
        false
    }

    fn submit(
        &mut self,
        job: JobId,
        tasks: Vec<SimDuration>,
        estimate: SimDuration,
        class: JobClass,
        net: &mut impl Net,
    ) {
        let t = tasks.len();
        let hard = self.timeouts.map(|to| HardJob {
            state: vec![TaskState::Unlaunched; t],
            attempts: vec![0; t],
            interval: to.probe,
        });
        self.jobs.insert(
            job,
            DistJob {
                tasks,
                estimate,
                class,
                next_task: 0,
                remaining: t,
                hard,
            },
        );
        // Probe placement is the policy's own hook — the same call the
        // simulation driver makes on a job arrival.
        let (start, len) = self.probe_scope(class);
        let view = PlacementView::new(&self.shadow, start, len);
        let mut probes = std::mem::take(&mut self.probe_buf);
        self.scheduler
            .probe_targets_into(&view, t, &mut self.rng, &mut probes);
        for &server in &probes {
            net.send_worker(
                server.index(),
                WorkerMsg::Probe {
                    job,
                    class,
                    bounces: 0,
                },
            );
        }
        self.probe_buf = probes;
        if let Some(to) = self.timeouts {
            net.self_timer_dist(self.index, to.probe, DistMsg::JobTimeout { job });
        }
    }

    fn bind(&mut self, job: JobId, worker: usize, net: &mut impl Net) {
        let reply = match self.jobs.get_mut(&job) {
            Some(state) if state.remaining > 0 => {
                let (estimate, class) = (state.estimate, state.class);
                match &mut state.hard {
                    None if state.next_task < state.tasks.len() => {
                        let idx = state.next_task;
                        state.next_task += 1;
                        Some(TaskSpec {
                            job,
                            duration: state.tasks[idx],
                            estimate,
                            class,
                            task: idx as u32,
                            attempt: 0,
                        })
                    }
                    // Hardened: hand out the first task no worker holds —
                    // relaunched tasks re-enter here under a bumped
                    // attempt.
                    Some(hard) => {
                        match hard.state.iter().position(|s| *s == TaskState::Unlaunched) {
                            Some(idx) => {
                                hard.state[idx] = TaskState::Outstanding { since: net.now() };
                                Some(TaskSpec {
                                    job,
                                    duration: state.tasks[idx],
                                    estimate,
                                    class,
                                    task: idx as u32,
                                    attempt: hard.attempts[idx],
                                })
                            }
                            None => None,
                        }
                    }
                    // All tasks given out: cancel (§3.5).
                    None => None,
                }
            }
            // Unknown job, or known and fully complete: cancel.
            _ => None,
        };
        net.send_worker(worker, WorkerMsg::BindReply { job, task: reply });
    }

    fn complete(&mut self, job: JobId, task: u32, net: &mut impl Net) {
        let state = self.jobs.get_mut(&job).expect("completion for known job");
        if let Some(hard) = &mut state.hard {
            // Idempotent completion: dedup by task index, first report
            // wins — network dups and doubly-executed relaunches fall
            // through silently.
            if state.remaining == 0 || hard.state[task as usize] == TaskState::Done {
                return;
            }
            hard.state[task as usize] = TaskState::Done;
            state.remaining -= 1;
            if state.remaining == 0 {
                net.job_done(job);
            }
            return;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            net.job_done(job);
            // Keep the entry so late probes still get cancels; mark
            // drained.
            state.next_task = state.tasks.len();
        }
    }

    /// A displaced probe: re-probe a random live server if the job still
    /// has unlaunched tasks (it may be needed for liveness), abandon it
    /// otherwise — a bind would only have produced a cancel. Mirrors the
    /// driver's `relocate`.
    fn reprobe(&mut self, job: JobId, class: JobClass, net: &mut impl Net) {
        let alive = self.jobs.get(&job).is_some_and(DistJob::has_unlaunched);
        if !alive {
            self.stats.abandons += 1;
            return;
        }
        self.stats.migrations += 1;
        self.send_fresh_probe(job, class, net);
    }

    /// The per-job chain fires: relaunch overdue handed-out tasks,
    /// re-probe while unlaunched work remains, and re-arm with backoff —
    /// the chain ends only with the job.
    fn on_job_timeout(&mut self, job: JobId, net: &mut impl Net) {
        let Some(to) = self.timeouts else { return };
        let now = net.now();
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.remaining == 0 {
            return;
        }
        let hard = state.hard.as_mut().expect("hardened job state");
        let mut relaunched = 0u64;
        for (i, s) in hard.state.iter_mut().enumerate() {
            if let TaskState::Outstanding { since } = *s {
                if now - since >= to.launch_deadline(state.tasks[i], hard.attempts[i]) {
                    // Presumed lost (the bind reply, the worker, or its
                    // completion report): back in play, next attempt.
                    *s = TaskState::Unlaunched;
                    hard.attempts[i] += 1;
                    relaunched += 1;
                }
            }
        }
        let interval = hard.interval;
        hard.interval = to.next_interval(interval);
        let unlaunched = hard.state.contains(&TaskState::Unlaunched);
        let class = state.class;
        self.stats.relaunched += relaunched;
        if relaunched > 0 {
            self.stats.timeouts_fired += 1;
        }
        if unlaunched {
            // A reservation may have died with a dropped probe or a
            // relaunch above: keep one fresh reservation trickling in
            // until every task is handed out.
            self.stats.retries += 1;
            self.send_fresh_probe(job, class, net);
        }
        net.self_timer_dist(self.index, interval, DistMsg::JobTimeout { job });
    }

    fn on_node(&mut self, change: NodeChange) {
        match change {
            NodeChange::Down(server) => {
                // The shadow holds no queue state; the drain is empty.
                self.shadow
                    .fail_server(ServerId(server), &mut self.drain_scratch);
                debug_assert!(self.drain_scratch.is_empty());
            }
            NodeChange::Up(server) => {
                self.shadow.revive_server(ServerId(server));
            }
        }
    }
}

/// Hardened per-task state of a centrally-placed task.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CentralTask {
    /// Assigned to `worker` at `since` under `attempt`.
    Outstanding {
        worker: usize,
        since: SimTime,
        attempt: u32,
        /// The §3.7 estimated queue wait of `worker` when the task was
        /// placed there. A centrally-placed task legitimately waits this
        /// long before it even starts, so the relaunch deadline starts
        /// counting *after* it — otherwise a backlogged (but healthy)
        /// cell mass-relaunches queued work and amplifies its own load.
        expected: SimDuration,
    },
    /// First completion recorded.
    Done,
}

/// Per-job state at the centralized daemon. Fault-free runs use only
/// `remaining`; the rest powers the hardened relaunch chain.
struct CentralJob {
    remaining: usize,
    estimate: SimDuration,
    class: JobClass,
    durations: Vec<SimDuration>,
    /// Empty unless hardened.
    state: Vec<CentralTask>,
    interval: SimDuration,
}

/// The centralized scheduler daemon: the shared §3.7 waiting-time
/// algorithm ([`hawk_core::CentralScheduler`]) behind a mailbox.
pub(crate) struct CentralDaemon {
    inner: CentralScheduler,
    jobs: HashMap<JobId, CentralJob>,
    timeouts: Option<TimeoutSpec>,
    place_buf: Vec<ServerId>,
    pub(crate) stats: SchedStats,
}

impl CentralDaemon {
    pub(crate) fn new(scope: usize, timeouts: Option<TimeoutSpec>) -> Self {
        CentralDaemon {
            inner: CentralScheduler::new(scope),
            jobs: HashMap::new(),
            timeouts,
            place_buf: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// Handles one message; returns `true` on shutdown.
    pub(crate) fn handle(&mut self, msg: CentralMsg, net: &mut impl Net) -> bool {
        self.stats.handled += 1;
        match msg {
            CentralMsg::Submit {
                job,
                tasks,
                estimate,
                class,
            } => self.submit(job, tasks, estimate, class, net),
            CentralMsg::TaskDone {
                job,
                worker,
                estimate,
                task,
            } => self.complete(job, worker, estimate, task, net),
            CentralMsg::Relocate { from, spec } => self.relocate(from, spec, net),
            CentralMsg::JobTimeout { job } => self.on_job_timeout(job, net),
            CentralMsg::Node(change) => match change {
                NodeChange::Down(server) if (server as usize) < self.inner.scope() => {
                    self.inner.fail(ServerId(server));
                }
                NodeChange::Up(server) if (server as usize) < self.inner.scope() => {
                    self.inner.revive(ServerId(server));
                }
                _ => {}
            },
            CentralMsg::Shutdown => return true,
        }
        false
    }

    fn submit(
        &mut self,
        job: JobId,
        tasks: Vec<SimDuration>,
        estimate: SimDuration,
        class: JobClass,
        net: &mut impl Net,
    ) {
        let t = tasks.len();
        let mut placement = std::mem::take(&mut self.place_buf);
        self.inner.assign_job_into(t, estimate, &mut placement);
        let state: Vec<CentralTask> = if self.timeouts.is_some() {
            let now = net.now();
            placement
                .iter()
                .map(|s| CentralTask::Outstanding {
                    worker: s.index(),
                    since: now,
                    attempt: 0,
                    // Read after the whole job charged: conservative (it
                    // includes sibling tasks queued ahead on the same
                    // worker).
                    expected: self.inner.estimated_wait(*s),
                })
                .collect()
        } else {
            Vec::new()
        };
        for (i, &server) in placement.iter().enumerate() {
            net.send_worker(
                server.index(),
                WorkerMsg::Assign(TaskSpec {
                    job,
                    duration: tasks[i],
                    estimate,
                    class,
                    task: i as u32,
                    attempt: 0,
                }),
            );
        }
        self.place_buf = placement;
        let interval = self
            .timeouts
            .map(|to| to.probe)
            .unwrap_or(SimDuration::ZERO);
        self.jobs.insert(
            job,
            CentralJob {
                remaining: t,
                estimate,
                class,
                durations: tasks,
                state,
                interval,
            },
        );
        if let Some(to) = self.timeouts {
            net.self_timer_central(to.probe, CentralMsg::JobTimeout { job });
        }
    }

    fn complete(
        &mut self,
        job: JobId,
        worker: usize,
        estimate: SimDuration,
        task: u32,
        net: &mut impl Net,
    ) {
        if self.timeouts.is_some() {
            // Idempotent: dedup by task index. The waiting-time charge is
            // released from the *currently charged* worker (a relaunch
            // may have moved it off the reporting one), so the §3.7
            // bookkeeping never leaks.
            let state = self.jobs.get_mut(&job).expect("completion for known job");
            let charged = match state.state[task as usize] {
                CentralTask::Done => return,
                CentralTask::Outstanding { worker, .. } => worker,
            };
            self.inner
                .on_task_complete(ServerId(charged as u32), estimate);
            state.state[task as usize] = CentralTask::Done;
            state.remaining -= 1;
            if state.remaining == 0 {
                // Keep the entry: late duplicates must keep resolving as
                // no-ops, not panics.
                net.job_done(job);
            }
            return;
        }
        self.inner
            .on_task_complete(ServerId(worker as u32), estimate);
        let state = self.jobs.get_mut(&job).expect("completion for known job");
        state.remaining -= 1;
        if state.remaining == 0 {
            self.jobs.remove(&job);
            net.job_done(job);
        }
    }

    fn relocate(&mut self, from: usize, spec: TaskSpec, net: &mut impl Net) {
        if self.timeouts.is_some() {
            // A stale relocation (the chain already relaunched this task,
            // or it completed) must not double-place it.
            let Some(state) = self.jobs.get_mut(&spec.job) else {
                return;
            };
            match state.state[spec.task as usize] {
                CentralTask::Outstanding {
                    worker, attempt, ..
                } if worker == from && attempt == spec.attempt => {
                    let target = self.inner.least_loaded();
                    self.inner
                        .reassign(ServerId(from as u32), target, spec.estimate);
                    self.stats.migrations += 1;
                    state.state[spec.task as usize] = CentralTask::Outstanding {
                        worker: target.index(),
                        since: net.now(),
                        attempt: spec.attempt,
                        expected: self.inner.estimated_wait(target),
                    };
                    net.send_worker(target.index(), WorkerMsg::Assign(spec));
                }
                _ => {}
            }
            return;
        }
        // The driver's task-migration policy: the live server the §3.7
        // queue would pick next, bookkeeping following the task.
        let target = self.inner.least_loaded();
        self.inner
            .reassign(ServerId(from as u32), target, spec.estimate);
        self.stats.migrations += 1;
        net.send_worker(target.index(), WorkerMsg::Assign(spec));
    }

    /// The per-job chain fires: relaunch at most one overdue task — the
    /// most overdue, rate-limiting duplication since a relaunch of a
    /// merely-slow task wastes a slot — and re-arm with backoff until the
    /// job completes.
    fn on_job_timeout(&mut self, job: JobId, net: &mut impl Net) {
        let Some(to) = self.timeouts else { return };
        let now = net.now();
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.remaining == 0 {
            return;
        }
        let mut pick: Option<(usize, usize, u32, SimDuration)> = None;
        for (i, s) in state.state.iter().enumerate() {
            if let CentralTask::Outstanding {
                worker,
                since,
                attempt,
                expected,
            } = *s
            {
                // The task legitimately queues for `expected` before it
                // can start: the loss deadline counts from there.
                let deadline = expected + to.launch_deadline(state.durations[i], attempt);
                let age = now - since;
                if age >= deadline {
                    let overdue = age - deadline;
                    if pick.is_none_or(|(.., worst)| overdue > worst) {
                        pick = Some((i, worker, attempt, overdue));
                    }
                }
            }
        }
        if let Some((i, old_worker, attempt, _)) = pick {
            let target = self.inner.least_loaded();
            self.inner
                .reassign(ServerId(old_worker as u32), target, state.estimate);
            let attempt = attempt + 1;
            state.state[i] = CentralTask::Outstanding {
                worker: target.index(),
                since: now,
                attempt,
                expected: self.inner.estimated_wait(target),
            };
            self.stats.relaunched += 1;
            self.stats.timeouts_fired += 1;
            net.send_worker(
                target.index(),
                WorkerMsg::Assign(TaskSpec {
                    job,
                    duration: state.durations[i],
                    estimate: state.estimate,
                    class: state.class,
                    task: i as u32,
                    attempt,
                }),
            );
        }
        let interval = state.interval;
        state.interval = to.next_interval(interval);
        net.self_timer_central(interval, CentralMsg::JobTimeout { job });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_core::scheduler::{Hawk, Sparrow};

    #[derive(Default)]
    struct RecordingNet {
        now: SimTime,
        worker_msgs: Vec<(usize, WorkerMsg)>,
        dist_timers: Vec<(usize, SimDuration, DistMsg)>,
        central_timers: Vec<(SimDuration, CentralMsg)>,
        done: Vec<JobId>,
    }

    impl Net for RecordingNet {
        fn send_worker(&mut self, to: usize, msg: WorkerMsg) {
            self.worker_msgs.push((to, msg));
        }
        fn send_dist(&mut self, _to: usize, _msg: DistMsg) {}
        fn send_central(&mut self, _msg: CentralMsg) {}
        fn schedule_finish(&mut self, _worker: usize, _occupancy: SimDuration) {}
        fn job_done(&mut self, job: JobId) {
            self.done.push(job);
        }
        fn add_running(&mut self, _delta: i64) {}
        fn add_capacity(&mut self, _delta: i64) {}
        fn now(&self) -> SimTime {
            self.now
        }
        fn self_timer_dist(&mut self, to: usize, after: SimDuration, msg: DistMsg) {
            self.dist_timers.push((to, after, msg));
        }
        fn self_timer_central(&mut self, after: SimDuration, msg: CentralMsg) {
            self.central_timers.push((after, msg));
        }
    }

    fn dist(scheduler: Arc<dyn Scheduler>, workers: usize, seed: u64) -> DistScheduler {
        DistScheduler::new(0, scheduler, workers, SimRng::seed_from_u64(seed), None)
    }

    fn submit(job: u32, tasks: usize, secs: u64, class: JobClass) -> DistMsg {
        DistMsg::Submit {
            job: JobId(job),
            tasks: vec![SimDuration::from_secs(secs); tasks],
            estimate: SimDuration::from_secs(secs),
            class,
        }
    }

    #[test]
    fn submit_sends_probe_ratio_times_tasks_probes() {
        let mut sched = dist(Arc::new(Sparrow::new()), 50, 3);
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 4, 10, JobClass::Short), &mut net);
        assert_eq!(net.worker_msgs.len(), 8, "2t probes");
        let mut targets: Vec<usize> = net.worker_msgs.iter().map(|(to, _)| *to).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), 8, "distinct while the scope allows");
        assert!(net.dist_timers.is_empty(), "no timers unless hardened");
    }

    #[test]
    fn hawk_short_probes_cover_the_whole_cluster() {
        // Hawk shorts probe Scope::Whole — including the reserved
        // partition — which is what makes stealing able to rescue them.
        let mut sched = dist(Arc::new(Hawk::new(0.5)), 10, 1);
        let mut net = RecordingNet::default();
        for j in 0..20 {
            sched.handle(submit(j, 2, 1, JobClass::Short), &mut net);
        }
        assert!(
            net.worker_msgs.iter().any(|(to, _)| *to >= 5),
            "short probes must reach the reserved partition"
        );
    }

    #[test]
    fn late_binding_hands_out_tasks_then_cancels() {
        let mut sched = dist(Arc::new(Sparrow::new()), 10, 5);
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 1, 7, JobClass::Short), &mut net);
        net.worker_msgs.clear();
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 4,
            },
            &mut net,
        );
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 6,
            },
            &mut net,
        );
        match (&net.worker_msgs[0], &net.worker_msgs[1]) {
            (
                (
                    4,
                    WorkerMsg::BindReply {
                        task: Some(spec), ..
                    },
                ),
                (6, WorkerMsg::BindReply { task: None, .. }),
            ) => {
                assert_eq!(spec.job, JobId(1));
                assert_eq!(spec.duration, SimDuration::from_secs(7));
                assert_eq!((spec.task, spec.attempt), (0, 0));
            }
            other => panic!("expected a task then a cancel, got {other:?}"),
        }
        // Completion of the single task completes the job.
        sched.handle(
            DistMsg::TaskDone {
                job: JobId(1),
                task: 0,
            },
            &mut net,
        );
        assert_eq!(net.done, vec![JobId(1)]);
    }

    #[test]
    fn shadow_cluster_keeps_probes_off_failed_servers() {
        let mut sched = dist(Arc::new(Sparrow::new()), 4, 9);
        let mut net = RecordingNet::default();
        for s in [0u32, 1] {
            sched.handle(DistMsg::Node(NodeChange::Down(s)), &mut net);
        }
        for j in 0..10 {
            sched.handle(submit(j, 2, 1, JobClass::Short), &mut net);
        }
        assert!(
            net.worker_msgs.iter().all(|(to, _)| *to >= 2),
            "probes must avoid down servers"
        );
        // Revival restores the full scope.
        sched.handle(DistMsg::Node(NodeChange::Up(0)), &mut net);
        net.worker_msgs.clear();
        for j in 10..40 {
            sched.handle(submit(j, 2, 1, JobClass::Short), &mut net);
        }
        assert!(net.worker_msgs.iter().any(|(to, _)| *to == 0));
        assert!(net.worker_msgs.iter().all(|(to, _)| *to != 1));
    }

    #[test]
    fn reprobe_migrates_live_jobs_and_abandons_drained_ones() {
        let mut sched = dist(Arc::new(Sparrow::new()), 8, 2);
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 1, 5, JobClass::Short), &mut net);
        net.worker_msgs.clear();
        // Unlaunched task left: re-probe.
        sched.handle(
            DistMsg::ReProbe {
                job: JobId(1),
                class: JobClass::Short,
            },
            &mut net,
        );
        assert_eq!(net.worker_msgs.len(), 1);
        assert_eq!(sched.stats.migrations, 1);
        // Launch the task; now a displaced spare reservation is dead.
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 0,
            },
            &mut net,
        );
        net.worker_msgs.clear();
        sched.handle(
            DistMsg::ReProbe {
                job: JobId(1),
                class: JobClass::Short,
            },
            &mut net,
        );
        assert!(net.worker_msgs.is_empty());
        assert_eq!(sched.stats.abandons, 1);
    }

    #[test]
    fn central_daemon_places_like_the_shared_scheduler() {
        let mut daemon = CentralDaemon::new(4, None);
        let mut net = RecordingNet::default();
        daemon.handle(
            CentralMsg::Submit {
                job: JobId(1),
                tasks: vec![SimDuration::from_secs(100); 4],
                estimate: SimDuration::from_secs(100),
                class: JobClass::Long,
            },
            &mut net,
        );
        // Waiting-time balancing: one task per server.
        let mut targets: Vec<usize> = net.worker_msgs.iter().map(|(to, _)| *to).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1, 2, 3]);
        // Completions drain the job.
        for w in 0..4 {
            daemon.handle(
                CentralMsg::TaskDone {
                    job: JobId(1),
                    worker: w,
                    estimate: SimDuration::from_secs(100),
                    task: w as u32,
                },
                &mut net,
            );
        }
        assert_eq!(net.done, vec![JobId(1)]);
    }

    #[test]
    fn central_daemon_relocates_off_failed_workers() {
        let mut daemon = CentralDaemon::new(2, None);
        let mut net = RecordingNet::default();
        daemon.handle(
            CentralMsg::Submit {
                job: JobId(1),
                tasks: vec![SimDuration::from_secs(50)],
                estimate: SimDuration::from_secs(50),
                class: JobClass::Long,
            },
            &mut net,
        );
        let placed_on = net.worker_msgs[0].0;
        daemon.handle(
            CentralMsg::Node(NodeChange::Down(placed_on as u32)),
            &mut net,
        );
        net.worker_msgs.clear();
        let spec = TaskSpec {
            job: JobId(1),
            duration: SimDuration::from_secs(50),
            estimate: SimDuration::from_secs(50),
            class: JobClass::Long,
            task: 0,
            attempt: 0,
        };
        daemon.handle(
            CentralMsg::Relocate {
                from: placed_on,
                spec,
            },
            &mut net,
        );
        let (target, msg) = &net.worker_msgs[0];
        assert_ne!(*target, placed_on, "relocation must pick a live server");
        assert!(matches!(msg, WorkerMsg::Assign(_)));
        assert_eq!(daemon.stats.migrations, 1);
    }

    // --- Hardened-protocol units ---

    fn hardened_spec() -> TimeoutSpec {
        TimeoutSpec {
            probe: SimDuration::from_secs(10),
            bind: SimDuration::from_secs(1),
            steal: SimDuration::from_secs(1),
            retries: 2,
        }
    }

    #[test]
    fn hardened_submit_arms_the_job_chain_and_dedups_completions() {
        let mut sched = DistScheduler::new(
            3,
            Arc::new(Sparrow::new()),
            8,
            SimRng::seed_from_u64(7),
            Some(hardened_spec()),
        );
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 2, 5, JobClass::Short), &mut net);
        assert_eq!(
            net.dist_timers,
            vec![(
                3,
                SimDuration::from_secs(10),
                DistMsg::JobTimeout { job: JobId(1) }
            )]
        );
        // Hand out both tasks.
        for w in [0, 1] {
            sched.handle(
                DistMsg::TaskRequest {
                    job: JobId(1),
                    worker: w,
                },
                &mut net,
            );
        }
        // A duplicated completion of task 0 must not steal task 1's slot.
        for _ in 0..2 {
            sched.handle(
                DistMsg::TaskDone {
                    job: JobId(1),
                    task: 0,
                },
                &mut net,
            );
        }
        assert!(net.done.is_empty(), "job completed off a duplicate");
        sched.handle(
            DistMsg::TaskDone {
                job: JobId(1),
                task: 1,
            },
            &mut net,
        );
        assert_eq!(net.done, vec![JobId(1)]);
        // Late duplicates after completion stay no-ops.
        sched.handle(
            DistMsg::TaskDone {
                job: JobId(1),
                task: 1,
            },
            &mut net,
        );
        assert_eq!(net.done, vec![JobId(1)]);
    }

    #[test]
    fn hardened_chain_relaunches_overdue_tasks_under_a_new_attempt() {
        let mut sched = DistScheduler::new(
            0,
            Arc::new(Sparrow::new()),
            8,
            SimRng::seed_from_u64(11),
            Some(hardened_spec()),
        );
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 1, 5, JobClass::Short), &mut net);
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 2,
            },
            &mut net,
        );
        // Not yet overdue: the chain re-arms but relaunches nothing.
        net.now = SimTime::ZERO + SimDuration::from_secs(15);
        net.worker_msgs.clear();
        sched.handle(DistMsg::JobTimeout { job: JobId(1) }, &mut net);
        assert_eq!(sched.stats.relaunched, 0);
        assert!(
            net.worker_msgs.is_empty(),
            "no re-probe while all handed out"
        );
        // Past 4×duration + probe = 30 s: relaunched and re-probed.
        net.now = SimTime::ZERO + SimDuration::from_secs(31);
        sched.handle(DistMsg::JobTimeout { job: JobId(1) }, &mut net);
        assert_eq!(sched.stats.relaunched, 1);
        assert_eq!(sched.stats.retries, 1);
        assert_eq!(net.worker_msgs.len(), 1, "one fresh probe");
        // The next bind hands the task out under attempt 1.
        net.worker_msgs.clear();
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 5,
            },
            &mut net,
        );
        match &net.worker_msgs[0].1 {
            WorkerMsg::BindReply {
                task: Some(spec), ..
            } => {
                assert_eq!((spec.task, spec.attempt), (0, 1));
            }
            other => panic!("expected a bind, got {other:?}"),
        }
        // Either attempt's completion finishes the job exactly once.
        for _ in 0..2 {
            sched.handle(
                DistMsg::TaskDone {
                    job: JobId(1),
                    task: 0,
                },
                &mut net,
            );
        }
        assert_eq!(net.done, vec![JobId(1)]);
    }

    #[test]
    fn hardened_central_relaunches_and_charges_the_current_worker() {
        let mut daemon = CentralDaemon::new(4, Some(hardened_spec()));
        let mut net = RecordingNet::default();
        daemon.handle(
            CentralMsg::Submit {
                job: JobId(2),
                tasks: vec![SimDuration::from_secs(5)],
                estimate: SimDuration::from_secs(5),
                class: JobClass::Long,
            },
            &mut net,
        );
        assert_eq!(net.central_timers.len(), 1);
        let first = net.worker_msgs[0].0;
        // Past the deadline — expected wait (5 s, the task's own charge)
        // plus the launch deadline (4×5 s + 10 s probe) — the chain
        // relaunches on a fresh worker.
        net.now = SimTime::ZERO + SimDuration::from_secs(36);
        net.worker_msgs.clear();
        daemon.handle(CentralMsg::JobTimeout { job: JobId(2) }, &mut net);
        assert_eq!(daemon.stats.relaunched, 1);
        let (second, msg) = net.worker_msgs[0].clone();
        assert_ne!(second, first, "relaunch must move off the charged worker");
        match msg {
            WorkerMsg::Assign(spec) => assert_eq!((spec.task, spec.attempt), (0, 1)),
            other => panic!("expected an assign, got {other:?}"),
        }
        // The original worker still finishes first: the completion is
        // accepted once (releasing the relaunch worker's charge); the
        // duplicate from the relaunch is dropped.
        daemon.handle(
            CentralMsg::TaskDone {
                job: JobId(2),
                worker: first,
                estimate: SimDuration::from_secs(5),
                task: 0,
            },
            &mut net,
        );
        daemon.handle(
            CentralMsg::TaskDone {
                job: JobId(2),
                worker: second,
                estimate: SimDuration::from_secs(5),
                task: 0,
            },
            &mut net,
        );
        assert_eq!(net.done, vec![JobId(2)]);
        // A stale relocate for the superseded attempt is ignored.
        net.worker_msgs.clear();
        daemon.handle(
            CentralMsg::Relocate {
                from: first,
                spec: TaskSpec {
                    job: JobId(2),
                    duration: SimDuration::from_secs(5),
                    estimate: SimDuration::from_secs(5),
                    class: JobClass::Long,
                    task: 0,
                    attempt: 0,
                },
            },
            &mut net,
        );
        assert!(
            net.worker_msgs.is_empty(),
            "stale relocate re-placed a task"
        );
    }
}
