//! Distributed and centralized scheduler daemons.
//!
//! Both daemons delegate every *policy* decision to the shared
//! abstractions from `hawk-core`:
//!
//! * A [`DistScheduler`] owns the jobs submitted to it (each job
//!   conceptually has its own scheduler, §3.5) and places probes by
//!   calling [`Scheduler::probe_targets_into`] over a [`PlacementView`] of
//!   its **shadow cluster** — a membership-only
//!   [`hawk_cluster::Cluster`] mirror kept current by scenario dynamics
//!   notifications. On a static cluster the shadow is the identity; under
//!   churn it is exactly the live-server view the simulator's driver
//!   exposes, so failed servers are never probed. (Queue depths in the
//!   shadow are zero: a real distributed scheduler has no global queue
//!   state — load-aware policies see a uniform view, which is the honest
//!   distributed-systems answer.)
//! * The [`CentralDaemon`] *is* the simulator's §3.7 waiting-time
//!   scheduler: it wraps [`hawk_core::CentralScheduler`] — the identical
//!   placement, completion, failure-penalty and migration bookkeeping —
//!   and adds only per-job completion counting and message plumbing.

use std::collections::HashMap;
use std::sync::Arc;

use hawk_cluster::{Cluster, QueueEntry, ServerId, TaskSpec};
use hawk_core::{CentralScheduler, PlacementView, Route, Scheduler, Scope};
use hawk_simcore::{SimDuration, SimRng};
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobClass, JobId};

use crate::msg::{CentralMsg, DistMsg, Net, WorkerMsg};

/// Per-job late-binding state held by a distributed scheduler.
struct DistJob {
    tasks: Vec<SimDuration>,
    estimate: SimDuration,
    class: JobClass,
    next_task: usize,
    remaining: usize,
}

/// Counters a scheduler daemon folds into the
/// [`ProtoReport`](crate::ProtoReport).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SchedStats {
    pub migrations: u64,
    pub abandons: u64,
    pub handled: u64,
}

/// A distributed scheduler daemon: Sparrow batch probing with late
/// binding (§3.5), probe placement via the shared [`Scheduler`] trait.
pub(crate) struct DistScheduler {
    scheduler: Arc<dyn Scheduler>,
    /// Membership-only mirror of the cluster (see module docs).
    shadow: Cluster,
    jobs: HashMap<JobId, DistJob>,
    rng: SimRng,
    probe_buf: Vec<ServerId>,
    drain_scratch: Vec<QueueEntry>,
    pub(crate) stats: SchedStats,
}

impl DistScheduler {
    pub(crate) fn new(scheduler: Arc<dyn Scheduler>, workers: usize, rng: SimRng) -> Self {
        let shadow = Cluster::new(workers, scheduler.short_partition_fraction());
        DistScheduler {
            scheduler,
            shadow,
            jobs: HashMap::new(),
            rng,
            probe_buf: Vec::new(),
            drain_scratch: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// The contiguous id range of `scope` on the shadow partition.
    fn scope_range(&self, scope: Scope) -> (u32, usize) {
        let p = self.shadow.partition();
        match scope {
            Scope::Whole => (0, p.total()),
            Scope::General => (0, p.general_count()),
            Scope::ShortReserved => (p.general_count() as u32, p.short_count()),
        }
    }

    /// The scope `class` probes over under this policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy routes `class` centrally — such jobs are never
    /// submitted to a distributed scheduler.
    fn probe_scope(&self, class: JobClass) -> (u32, usize) {
        match self.scheduler.route(class) {
            Route::Distributed(scope) => self.scope_range(scope),
            Route::Central(_) => unreachable!("probes imply a distributed route"),
        }
    }

    /// Handles one message; returns `true` on shutdown.
    pub(crate) fn handle(&mut self, msg: DistMsg, net: &mut impl Net) -> bool {
        self.stats.handled += 1;
        match msg {
            DistMsg::Submit {
                job,
                tasks,
                estimate,
                class,
            } => self.submit(job, tasks, estimate, class, net),
            DistMsg::TaskRequest { job, worker } => self.bind(job, worker, net),
            DistMsg::TaskDone { job } => self.complete(job, net),
            DistMsg::ReProbe { job, class } => self.reprobe(job, class, net),
            DistMsg::Bounce {
                job,
                class,
                bounces,
            } => {
                // Forward the bounced probe to a fresh random live server
                // of its scope, preserving the hop count.
                let (start, len) = self.probe_scope(class);
                let view = PlacementView::new(&self.shadow, start, len);
                let target = view.random_server(&mut self.rng);
                net.send_worker(
                    target.index(),
                    WorkerMsg::Probe {
                        job,
                        class,
                        bounces,
                    },
                );
            }
            DistMsg::Node(change) => self.on_node(change),
            DistMsg::Shutdown => return true,
        }
        false
    }

    fn submit(
        &mut self,
        job: JobId,
        tasks: Vec<SimDuration>,
        estimate: SimDuration,
        class: JobClass,
        net: &mut impl Net,
    ) {
        let t = tasks.len();
        self.jobs.insert(
            job,
            DistJob {
                tasks,
                estimate,
                class,
                next_task: 0,
                remaining: t,
            },
        );
        // Probe placement is the policy's own hook — the same call the
        // simulation driver makes on a job arrival.
        let (start, len) = self.probe_scope(class);
        let view = PlacementView::new(&self.shadow, start, len);
        let mut probes = std::mem::take(&mut self.probe_buf);
        self.scheduler
            .probe_targets_into(&view, t, &mut self.rng, &mut probes);
        for &server in &probes {
            net.send_worker(
                server.index(),
                WorkerMsg::Probe {
                    job,
                    class,
                    bounces: 0,
                },
            );
        }
        self.probe_buf = probes;
    }

    fn bind(&mut self, job: JobId, worker: usize, net: &mut impl Net) {
        let reply = match self.jobs.get_mut(&job) {
            Some(state) if state.next_task < state.tasks.len() => {
                let duration = state.tasks[state.next_task];
                state.next_task += 1;
                Some(TaskSpec {
                    job,
                    duration,
                    estimate: state.estimate,
                    class: state.class,
                })
            }
            // All tasks given out (or unknown job after completion):
            // cancel (§3.5).
            _ => None,
        };
        net.send_worker(worker, WorkerMsg::BindReply { task: reply });
    }

    fn complete(&mut self, job: JobId, net: &mut impl Net) {
        let state = self.jobs.get_mut(&job).expect("completion for known job");
        state.remaining -= 1;
        if state.remaining == 0 {
            net.job_done(job);
            // Keep the entry so late probes still get cancels; mark
            // drained.
            state.next_task = state.tasks.len();
        }
    }

    /// A displaced probe: re-probe a random live server if the job still
    /// has unlaunched tasks (it may be needed for liveness), abandon it
    /// otherwise — a bind would only have produced a cancel. Mirrors the
    /// driver's `relocate`.
    fn reprobe(&mut self, job: JobId, class: JobClass, net: &mut impl Net) {
        let alive = self
            .jobs
            .get(&job)
            .is_some_and(|state| state.next_task < state.tasks.len());
        if !alive {
            self.stats.abandons += 1;
            return;
        }
        self.stats.migrations += 1;
        let (start, len) = self.probe_scope(class);
        let view = PlacementView::new(&self.shadow, start, len);
        let target = view.random_server(&mut self.rng);
        net.send_worker(
            target.index(),
            WorkerMsg::Probe {
                job,
                class,
                bounces: 0,
            },
        );
    }

    fn on_node(&mut self, change: NodeChange) {
        match change {
            NodeChange::Down(server) => {
                // The shadow holds no queue state; the drain is empty.
                self.shadow
                    .fail_server(ServerId(server), &mut self.drain_scratch);
                debug_assert!(self.drain_scratch.is_empty());
            }
            NodeChange::Up(server) => {
                self.shadow.revive_server(ServerId(server));
            }
        }
    }
}

/// The centralized scheduler daemon: the shared §3.7 waiting-time
/// algorithm ([`hawk_core::CentralScheduler`]) behind a mailbox.
pub(crate) struct CentralDaemon {
    inner: CentralScheduler,
    remaining: HashMap<JobId, usize>,
    place_buf: Vec<ServerId>,
    pub(crate) stats: SchedStats,
}

impl CentralDaemon {
    pub(crate) fn new(scope: usize) -> Self {
        CentralDaemon {
            inner: CentralScheduler::new(scope),
            remaining: HashMap::new(),
            place_buf: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// Handles one message; returns `true` on shutdown.
    pub(crate) fn handle(&mut self, msg: CentralMsg, net: &mut impl Net) -> bool {
        self.stats.handled += 1;
        match msg {
            CentralMsg::Submit {
                job,
                tasks,
                estimate,
                class,
            } => {
                self.remaining.insert(job, tasks.len());
                let mut placement = std::mem::take(&mut self.place_buf);
                self.inner
                    .assign_job_into(tasks.len(), estimate, &mut placement);
                for (i, &server) in placement.iter().enumerate() {
                    net.send_worker(
                        server.index(),
                        WorkerMsg::Assign(TaskSpec {
                            job,
                            duration: tasks[i],
                            estimate,
                            class,
                        }),
                    );
                }
                self.place_buf = placement;
            }
            CentralMsg::TaskDone {
                job,
                worker,
                estimate,
            } => {
                self.inner
                    .on_task_complete(ServerId(worker as u32), estimate);
                let left = self
                    .remaining
                    .get_mut(&job)
                    .expect("completion for known job");
                *left -= 1;
                if *left == 0 {
                    self.remaining.remove(&job);
                    net.job_done(job);
                }
            }
            CentralMsg::Relocate { from, spec } => {
                // The driver's task-migration policy: the live server the
                // §3.7 queue would pick next, bookkeeping following the
                // task.
                let target = self.inner.least_loaded();
                self.inner
                    .reassign(ServerId(from as u32), target, spec.estimate);
                self.stats.migrations += 1;
                net.send_worker(target.index(), WorkerMsg::Assign(spec));
            }
            CentralMsg::Node(change) => match change {
                NodeChange::Down(server) if (server as usize) < self.inner.scope() => {
                    self.inner.fail(ServerId(server));
                }
                NodeChange::Up(server) if (server as usize) < self.inner.scope() => {
                    self.inner.revive(ServerId(server));
                }
                _ => {}
            },
            CentralMsg::Shutdown => return true,
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_core::scheduler::{Hawk, Sparrow};

    #[derive(Default)]
    struct RecordingNet {
        worker_msgs: Vec<(usize, WorkerMsg)>,
        done: Vec<JobId>,
    }

    impl Net for RecordingNet {
        fn send_worker(&mut self, to: usize, msg: WorkerMsg) {
            self.worker_msgs.push((to, msg));
        }
        fn send_dist(&mut self, _to: usize, _msg: DistMsg) {}
        fn send_central(&mut self, _msg: CentralMsg) {}
        fn schedule_finish(&mut self, _worker: usize, _occupancy: SimDuration) {}
        fn job_done(&mut self, job: JobId) {
            self.done.push(job);
        }
        fn add_running(&mut self, _delta: i64) {}
        fn add_capacity(&mut self, _delta: i64) {}
    }

    fn submit(job: u32, tasks: usize, secs: u64, class: JobClass) -> DistMsg {
        DistMsg::Submit {
            job: JobId(job),
            tasks: vec![SimDuration::from_secs(secs); tasks],
            estimate: SimDuration::from_secs(secs),
            class,
        }
    }

    #[test]
    fn submit_sends_probe_ratio_times_tasks_probes() {
        let mut sched = DistScheduler::new(Arc::new(Sparrow::new()), 50, SimRng::seed_from_u64(3));
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 4, 10, JobClass::Short), &mut net);
        assert_eq!(net.worker_msgs.len(), 8, "2t probes");
        let mut targets: Vec<usize> = net.worker_msgs.iter().map(|(to, _)| *to).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), 8, "distinct while the scope allows");
    }

    #[test]
    fn hawk_short_probes_cover_the_whole_cluster() {
        // Hawk shorts probe Scope::Whole — including the reserved
        // partition — which is what makes stealing able to rescue them.
        let mut sched = DistScheduler::new(Arc::new(Hawk::new(0.5)), 10, SimRng::seed_from_u64(1));
        let mut net = RecordingNet::default();
        for j in 0..20 {
            sched.handle(submit(j, 2, 1, JobClass::Short), &mut net);
        }
        assert!(
            net.worker_msgs.iter().any(|(to, _)| *to >= 5),
            "short probes must reach the reserved partition"
        );
    }

    #[test]
    fn late_binding_hands_out_tasks_then_cancels() {
        let mut sched = DistScheduler::new(Arc::new(Sparrow::new()), 10, SimRng::seed_from_u64(5));
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 1, 7, JobClass::Short), &mut net);
        net.worker_msgs.clear();
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 4,
            },
            &mut net,
        );
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 6,
            },
            &mut net,
        );
        match (&net.worker_msgs[0], &net.worker_msgs[1]) {
            (
                (4, WorkerMsg::BindReply { task: Some(spec) }),
                (6, WorkerMsg::BindReply { task: None }),
            ) => {
                assert_eq!(spec.job, JobId(1));
                assert_eq!(spec.duration, SimDuration::from_secs(7));
            }
            other => panic!("expected a task then a cancel, got {other:?}"),
        }
        // Completion of the single task completes the job.
        sched.handle(DistMsg::TaskDone { job: JobId(1) }, &mut net);
        assert_eq!(net.done, vec![JobId(1)]);
    }

    #[test]
    fn shadow_cluster_keeps_probes_off_failed_servers() {
        let mut sched = DistScheduler::new(Arc::new(Sparrow::new()), 4, SimRng::seed_from_u64(9));
        let mut net = RecordingNet::default();
        for s in [0u32, 1] {
            sched.handle(DistMsg::Node(NodeChange::Down(s)), &mut net);
        }
        for j in 0..10 {
            sched.handle(submit(j, 2, 1, JobClass::Short), &mut net);
        }
        assert!(
            net.worker_msgs.iter().all(|(to, _)| *to >= 2),
            "probes must avoid down servers"
        );
        // Revival restores the full scope.
        sched.handle(DistMsg::Node(NodeChange::Up(0)), &mut net);
        net.worker_msgs.clear();
        for j in 10..40 {
            sched.handle(submit(j, 2, 1, JobClass::Short), &mut net);
        }
        assert!(net.worker_msgs.iter().any(|(to, _)| *to == 0));
        assert!(net.worker_msgs.iter().all(|(to, _)| *to != 1));
    }

    #[test]
    fn reprobe_migrates_live_jobs_and_abandons_drained_ones() {
        let mut sched = DistScheduler::new(Arc::new(Sparrow::new()), 8, SimRng::seed_from_u64(2));
        let mut net = RecordingNet::default();
        sched.handle(submit(1, 1, 5, JobClass::Short), &mut net);
        net.worker_msgs.clear();
        // Unlaunched task left: re-probe.
        sched.handle(
            DistMsg::ReProbe {
                job: JobId(1),
                class: JobClass::Short,
            },
            &mut net,
        );
        assert_eq!(net.worker_msgs.len(), 1);
        assert_eq!(sched.stats.migrations, 1);
        // Launch the task; now a displaced spare reservation is dead.
        sched.handle(
            DistMsg::TaskRequest {
                job: JobId(1),
                worker: 0,
            },
            &mut net,
        );
        net.worker_msgs.clear();
        sched.handle(
            DistMsg::ReProbe {
                job: JobId(1),
                class: JobClass::Short,
            },
            &mut net,
        );
        assert!(net.worker_msgs.is_empty());
        assert_eq!(sched.stats.abandons, 1);
    }

    #[test]
    fn central_daemon_places_like_the_shared_scheduler() {
        let mut daemon = CentralDaemon::new(4);
        let mut net = RecordingNet::default();
        daemon.handle(
            CentralMsg::Submit {
                job: JobId(1),
                tasks: vec![SimDuration::from_secs(100); 4],
                estimate: SimDuration::from_secs(100),
                class: JobClass::Long,
            },
            &mut net,
        );
        // Waiting-time balancing: one task per server.
        let mut targets: Vec<usize> = net.worker_msgs.iter().map(|(to, _)| *to).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1, 2, 3]);
        // Completions drain the job.
        for w in 0..4 {
            daemon.handle(
                CentralMsg::TaskDone {
                    job: JobId(1),
                    worker: w,
                    estimate: SimDuration::from_secs(100),
                },
                &mut net,
            );
        }
        assert_eq!(net.done, vec![JobId(1)]);
    }

    #[test]
    fn central_daemon_relocates_off_failed_workers() {
        let mut daemon = CentralDaemon::new(2);
        let mut net = RecordingNet::default();
        daemon.handle(
            CentralMsg::Submit {
                job: JobId(1),
                tasks: vec![SimDuration::from_secs(50)],
                estimate: SimDuration::from_secs(50),
                class: JobClass::Long,
            },
            &mut net,
        );
        let placed_on = net.worker_msgs[0].0;
        daemon.handle(
            CentralMsg::Node(NodeChange::Down(placed_on as u32)),
            &mut net,
        );
        net.worker_msgs.clear();
        let spec = TaskSpec {
            job: JobId(1),
            duration: SimDuration::from_secs(50),
            estimate: SimDuration::from_secs(50),
            class: JobClass::Long,
        };
        daemon.handle(
            CentralMsg::Relocate {
                from: placed_on,
                spec,
            },
            &mut net,
        );
        let (target, msg) = &net.worker_msgs[0];
        assert_ne!(*target, placed_on, "relocation must pick a live server");
        assert!(matches!(msg, WorkerMsg::Assign(_)));
        assert_eq!(daemon.stats.migrations, 1);
    }
}
