//! Distributed and centralized scheduler threads.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use hawk_simcore::{IndexedMinHeap, SimRng};
use hawk_workload::{JobClass, JobId};
use std::sync::mpsc::{Receiver, Sender};

use crate::msg::{CentralMsg, DistMsg, ProtoTask, TaskOrigin, WorkerMsg};
use crate::runtime::Topology;

/// Per-job state held by a distributed scheduler.
struct DistJob {
    tasks: Vec<Duration>,
    estimate_us: u64,
    class: JobClass,
    next_task: usize,
    remaining: usize,
}

/// A distributed scheduler thread: Sparrow batch probing with late binding
/// (§3.5). Each instance owns the jobs submitted to it and answers task
/// requests from workers whose probes reached their queue heads.
pub(crate) struct DistScheduler {
    index: usize,
    rx: Receiver<DistMsg>,
    topo: Topology,
    jobs: HashMap<JobId, DistJob>,
    done_tx: Sender<(JobId, Instant)>,
    probe_ratio: f64,
    /// Contiguous probe scope `[start, start+len)`.
    scope: (usize, usize),
    rng: SimRng,
}

impl DistScheduler {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: usize,
        rx: Receiver<DistMsg>,
        topo: Topology,
        done_tx: Sender<(JobId, Instant)>,
        probe_ratio: f64,
        scope: (usize, usize),
        seed: u64,
    ) -> Self {
        DistScheduler {
            index,
            rx,
            topo,
            jobs: HashMap::new(),
            done_tx,
            probe_ratio,
            scope,
            rng: SimRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0xC2B2_AE35)),
        }
    }

    pub(crate) fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                DistMsg::Submit {
                    job,
                    tasks,
                    estimate_us,
                    class,
                } => self.submit(job, tasks, estimate_us, class),
                DistMsg::TaskRequest { job, worker } => self.bind(job, worker),
                DistMsg::TaskDone { job } => self.complete(job),
                DistMsg::Shutdown => return,
            }
        }
    }

    fn submit(&mut self, job: JobId, tasks: Vec<Duration>, estimate_us: u64, class: JobClass) {
        let t = tasks.len();
        self.jobs.insert(
            job,
            DistJob {
                tasks,
                estimate_us,
                class,
                next_task: 0,
                remaining: t,
            },
        );
        // ⌈ratio·t⌉ probes, distinct while the scope allows, topping up
        // with repeats otherwise (scaled-down clusters only).
        let probes = (self.probe_ratio * t as f64).ceil() as usize;
        let (start, len) = self.scope;
        let mut targets = Vec::with_capacity(probes);
        for _ in 0..probes / len {
            targets.extend(start..start + len);
        }
        targets.extend(
            self.rng
                .sample_distinct(len, probes % len)
                .into_iter()
                .map(|i| start + i),
        );
        for worker in targets {
            let _ = self.topo.workers[worker].send(WorkerMsg::Probe {
                job,
                sched: self.index,
                class,
            });
        }
    }

    fn bind(&mut self, job: JobId, worker: usize) {
        let reply = match self.jobs.get_mut(&job) {
            Some(state) if state.next_task < state.tasks.len() => {
                let duration = state.tasks[state.next_task];
                state.next_task += 1;
                Some(ProtoTask {
                    job,
                    duration,
                    estimate_us: state.estimate_us,
                    class: state.class,
                    origin: TaskOrigin::Distributed { index: self.index },
                })
            }
            // All tasks given out (or unknown job after completion): cancel.
            _ => None,
        };
        let _ = self.topo.workers[worker].send(WorkerMsg::BindReply { task: reply });
    }

    fn complete(&mut self, job: JobId) {
        let state = self.jobs.get_mut(&job).expect("completion for known job");
        state.remaining -= 1;
        if state.remaining == 0 {
            let _ = self.done_tx.send((job, Instant::now()));
            // Keep the entry so late probes still get cancels; mark drained.
            state.next_task = state.tasks.len();
        }
    }
}

/// The centralized scheduler thread: the §3.7 waiting-time algorithm over
/// the general partition.
pub(crate) struct CentralScheduler {
    rx: Receiver<CentralMsg>,
    topo: Topology,
    done_tx: Sender<(JobId, Instant)>,
    /// Estimated unfinished work per general-partition worker, µs.
    work: IndexedMinHeap,
    remaining: HashMap<JobId, usize>,
}

impl CentralScheduler {
    pub(crate) fn new(
        rx: Receiver<CentralMsg>,
        topo: Topology,
        done_tx: Sender<(JobId, Instant)>,
        general_count: usize,
    ) -> Self {
        CentralScheduler {
            rx,
            topo,
            done_tx,
            work: IndexedMinHeap::new(general_count.max(1), 0),
            remaining: HashMap::new(),
        }
    }

    pub(crate) fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                CentralMsg::Submit {
                    job,
                    tasks,
                    estimate_us,
                    class,
                } => {
                    self.remaining.insert(job, tasks.len());
                    for duration in tasks {
                        let worker = self.work.min_id();
                        self.work.add(worker, estimate_us);
                        let _ = self.topo.workers[worker].send(WorkerMsg::Assign(ProtoTask {
                            job,
                            duration,
                            estimate_us,
                            class,
                            origin: TaskOrigin::Central,
                        }));
                    }
                }
                CentralMsg::TaskDone {
                    job,
                    worker,
                    estimate_us,
                } => {
                    self.work.sub(worker, estimate_us);
                    let left = self
                        .remaining
                        .get_mut(&job)
                        .expect("completion for known job");
                    *left -= 1;
                    if *left == 0 {
                        self.remaining.remove(&job);
                        let _ = self.done_tx.send((job, Instant::now()));
                    }
                }
                CentralMsg::Shutdown => return,
            }
        }
    }
}
