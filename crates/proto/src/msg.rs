//! Message and queue-entry types exchanged between prototype threads.

use std::time::Duration;

use hawk_workload::{JobClass, JobId};

/// Who placed a task (determines where its completion is reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOrigin {
    /// Placed by the centralized scheduler.
    Central,
    /// Bound through a probe of distributed scheduler `index`.
    Distributed {
        /// The owning distributed scheduler.
        index: usize,
    },
}

/// A concrete task bound to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoTask {
    /// The owning job.
    pub job: JobId,
    /// Real-time execution duration (the "sleep").
    pub duration: Duration,
    /// Job-level estimated task runtime in microseconds (for the central
    /// scheduler's waiting-time bookkeeping).
    pub estimate_us: u64,
    /// The job's scheduling class.
    pub class: JobClass,
    /// Placement origin.
    pub origin: TaskOrigin,
}

/// One entry in a worker's FIFO queue (the prototype analogue of
/// `hawk_cluster::QueueEntry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entry {
    /// A late-binding reservation for a job owned by distributed scheduler
    /// `sched`.
    Probe {
        /// The job.
        job: JobId,
        /// Owning distributed scheduler index.
        sched: usize,
        /// The job's scheduling class.
        class: JobClass,
    },
    /// A directly-placed task.
    Task(ProtoTask),
}

impl Entry {
    /// True if the entry belongs to a long job.
    pub fn is_long(&self) -> bool {
        match self {
            Entry::Probe { class, .. } => class.is_long(),
            Entry::Task(t) => t.class.is_long(),
        }
    }

    /// True if the entry belongs to a short job.
    pub fn is_short(&self) -> bool {
        !self.is_long()
    }
}

/// Messages delivered to a worker (node monitor).
#[derive(Debug)]
pub enum WorkerMsg {
    /// A probe from a distributed scheduler.
    Probe {
        /// The job probed for.
        job: JobId,
        /// Owning distributed scheduler.
        sched: usize,
        /// The job's class.
        class: JobClass,
    },
    /// A direct task placement from the centralized scheduler.
    Assign(ProtoTask),
    /// Response to this worker's task request: a task or a cancel.
    BindReply {
        /// `Some` launches, `None` cancels.
        task: Option<ProtoTask>,
    },
    /// Another worker asks to steal from us.
    StealRequest {
        /// Index of the thief, for the reply.
        thief: usize,
    },
    /// Stolen entries arriving at the thief.
    StealReply {
        /// The stolen group (possibly empty = steal failed).
        entries: Vec<Entry>,
    },
    /// Terminate the worker thread.
    Shutdown,
}

/// Messages delivered to a distributed scheduler.
#[derive(Debug)]
pub enum DistMsg {
    /// A job to schedule (Sparrow batch probing).
    Submit {
        /// The job.
        job: JobId,
        /// Per-task durations, already real-time scaled.
        tasks: Vec<Duration>,
        /// Job-level estimate, microseconds.
        estimate_us: u64,
        /// The job's class.
        class: JobClass,
    },
    /// A worker whose probe reached its queue head requests a task.
    TaskRequest {
        /// The job.
        job: JobId,
        /// The requesting worker.
        worker: usize,
    },
    /// A worker finished one of this scheduler's tasks.
    TaskDone {
        /// The job.
        job: JobId,
    },
    /// Terminate the scheduler thread.
    Shutdown,
}

/// Messages delivered to the centralized scheduler.
#[derive(Debug)]
pub enum CentralMsg {
    /// A long job to place on the general partition.
    Submit {
        /// The job.
        job: JobId,
        /// Per-task durations, already real-time scaled.
        tasks: Vec<Duration>,
        /// Job-level estimate, microseconds.
        estimate_us: u64,
        /// The job's class.
        class: JobClass,
    },
    /// A worker finished a centrally-placed task.
    TaskDone {
        /// The job.
        job: JobId,
        /// The worker that ran it.
        worker: usize,
        /// The estimate charged at assignment, microseconds.
        estimate_us: u64,
    },
    /// Terminate the scheduler thread.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_class_helpers() {
        let p = Entry::Probe {
            job: JobId(1),
            sched: 0,
            class: JobClass::Short,
        };
        assert!(p.is_short());
        let t = Entry::Task(ProtoTask {
            job: JobId(2),
            duration: Duration::from_millis(5),
            estimate_us: 5_000,
            class: JobClass::Long,
            origin: TaskOrigin::Central,
        });
        assert!(t.is_long());
        assert!(!t.is_short());
    }
}
