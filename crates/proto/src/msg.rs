//! Messages exchanged between prototype daemons, and the [`Net`] surface
//! the daemons send them through.
//!
//! Since the prototype became a backend for the shared
//! [`Scheduler`](hawk_core::Scheduler) policies, its wire types are the
//! *simulator's* types: queue entries are [`hawk_cluster::QueueEntry`],
//! bound tasks are [`hawk_cluster::TaskSpec`], durations are
//! [`hawk_simcore::SimDuration`]. The two backends therefore cannot drift
//! apart structurally — a probe or a stolen group means the same thing in
//! both.
//!
//! The [`Net`] trait is the transport/clock seam: daemon state machines
//! call it to send messages, arm the task-finish timer and report
//! completions. The threaded runtime implements it over `mpsc` channels
//! and the wall clock; the virtual runtime over a deterministic
//! single-threaded router and a virtual clock. Daemon code is identical
//! under both.

use hawk_cluster::{QueueEntry, TaskSpec};
use hawk_simcore::{SimDuration, SimTime};
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobClass, JobId};

/// Messages delivered to a worker (node monitor).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// A probe from a distributed scheduler (`bounces` counts probe-
    /// avoidance hops already taken; 0 under the paper's policies).
    Probe {
        /// The job probed for.
        job: JobId,
        /// The job's scheduled class.
        class: JobClass,
        /// Probe-avoidance hops taken so far.
        bounces: u8,
    },
    /// A direct task placement from the centralized scheduler.
    Assign(TaskSpec),
    /// Response to this worker's task request: a task or a cancel.
    BindReply {
        /// The job the request was for — lets the hardened protocol match
        /// a reply to the wait it answers (a duplicated or reordered
        /// reply for a stale wait is discarded, not mis-bound).
        job: JobId,
        /// `Some` launches, `None` cancels.
        task: Option<TaskSpec>,
    },
    /// Another worker asks to steal from us.
    StealRequest {
        /// Index of the thief, for the reply.
        thief: usize,
    },
    /// Stolen entries arriving at the thief.
    StealReply {
        /// The victim that granted (or refused) the steal — the address
        /// the hardened protocol acks to.
        from: usize,
        /// Transfer nonce of a hardened non-empty grant (0 otherwise):
        /// the thief's dedup/ack key, so a retransmitted grant is never
        /// enqueued twice.
        nonce: u64,
        /// The stolen group (possibly empty = steal failed), in the
        /// victim's queue order.
        entries: Vec<QueueEntry>,
    },
    /// Hardened protocol: the thief acknowledges receipt of a non-empty
    /// steal grant, releasing the victim's pending-transfer buffer.
    StealAck {
        /// The grant's transfer nonce.
        nonce: u64,
    },
    /// Hardened self-timer: the bind reply for the request tagged `epoch`
    /// has not arrived — retransmit or resolve locally.
    BindTimeout {
        /// The bind epoch the timer was armed for (stale fires are
        /// ignored).
        epoch: u64,
    },
    /// Hardened self-timer: the steal request tagged `epoch` got no
    /// reply — advance to the next victim.
    StealTimeout {
        /// The steal epoch the timer was armed for.
        epoch: u64,
    },
    /// Hardened self-timer (victim side): the grant tagged `nonce` is
    /// still unacked — retransmit it, or relocate the entries after the
    /// retry budget.
    StealRetransmit {
        /// The pending grant's transfer nonce.
        nonce: u64,
    },
    /// Scenario dynamics: the node leaves service (drains its queue) or
    /// rejoins empty.
    Node(NodeChange),
    /// Terminate the worker thread (threaded runtime only).
    Shutdown,
}

/// Messages delivered to a distributed scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum DistMsg {
    /// A job to schedule by batch probing (§3.5). Probe targets come from
    /// [`Scheduler::probe_targets_into`](hawk_core::Scheduler::probe_targets_into).
    Submit {
        /// The job.
        job: JobId,
        /// Per-task durations.
        tasks: Vec<SimDuration>,
        /// Job-level estimated task runtime.
        estimate: SimDuration,
        /// The job's scheduled class.
        class: JobClass,
    },
    /// A worker whose probe reached its queue head requests a task.
    TaskRequest {
        /// The job.
        job: JobId,
        /// The requesting worker.
        worker: usize,
    },
    /// A worker finished one of this scheduler's tasks.
    TaskDone {
        /// The job.
        job: JobId,
        /// The finished task's index within the job — the hardened
        /// protocol's completion-dedup key (ignored fault-free, where
        /// every completion is delivered exactly once).
        task: u32,
    },
    /// A probe was displaced (drained off a failed worker, or arrived at a
    /// down one): re-probe a random live server if the job still has
    /// unlaunched tasks, abandon it otherwise.
    ReProbe {
        /// The job.
        job: JobId,
        /// The job's scheduled class.
        class: JobClass,
    },
    /// A worker bounced a probe off long-held work
    /// ([`Scheduler::bounce_probe`](hawk_core::Scheduler::bounce_probe));
    /// retry on a fresh random server of the class's scope.
    Bounce {
        /// The job.
        job: JobId,
        /// The job's scheduled class.
        class: JobClass,
        /// Hops taken including the bounce that produced this message.
        bounces: u8,
    },
    /// Hardened self-timer: the per-job retry chain fires — re-probe if
    /// unlaunched tasks remain, relaunch handed-out tasks presumed lost,
    /// and re-arm with backoff until the job completes.
    JobTimeout {
        /// The job whose chain fired.
        job: JobId,
    },
    /// Scenario dynamics notification: keeps the scheduler's membership
    /// view (its shadow cluster) current.
    Node(NodeChange),
    /// Terminate the scheduler thread (threaded runtime only).
    Shutdown,
}

/// Messages delivered to the centralized scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum CentralMsg {
    /// A job to place with the §3.7 waiting-time algorithm.
    Submit {
        /// The job.
        job: JobId,
        /// Per-task durations.
        tasks: Vec<SimDuration>,
        /// Job-level estimated task runtime.
        estimate: SimDuration,
        /// The job's scheduled class.
        class: JobClass,
    },
    /// A worker finished a centrally-placed task.
    TaskDone {
        /// The job.
        job: JobId,
        /// The worker that ran it.
        worker: usize,
        /// The estimate charged at assignment.
        estimate: SimDuration,
        /// The finished task's index within the job — the hardened
        /// protocol's completion-dedup key (ignored fault-free).
        task: u32,
    },
    /// A centrally-placed task was displaced off a failed worker: re-place
    /// it on the least-loaded live server, moving the waiting-time
    /// bookkeeping with it.
    Relocate {
        /// The worker the task drained off.
        from: usize,
        /// The displaced task.
        spec: TaskSpec,
    },
    /// Hardened self-timer: the per-job retry chain fires — relaunch
    /// placed tasks presumed lost and re-arm with backoff until the job
    /// completes.
    JobTimeout {
        /// The job whose chain fired.
        job: JobId,
    },
    /// Scenario dynamics notification (fail/revive the server's
    /// waiting-time key).
    Node(NodeChange),
    /// Terminate the scheduler thread (threaded runtime only).
    Shutdown,
}

/// The transport + clock surface a daemon state machine runs against.
///
/// Implementations: `ThreadNet` (mpsc channels, wall clock) and
/// `VirtualNet` (deterministic router, virtual clock). All sends are
/// fire-and-forget; delivery order between a fixed (sender, receiver)
/// pair is FIFO under both implementations.
pub(crate) trait Net {
    /// Sends a message to worker `to`.
    fn send_worker(&mut self, to: usize, msg: WorkerMsg);
    /// Sends a message to distributed scheduler `to`.
    fn send_dist(&mut self, to: usize, msg: DistMsg);
    /// Sends a message to the centralized scheduler.
    fn send_central(&mut self, msg: CentralMsg);
    /// Arms worker `worker`'s task-finish timer `occupancy` from now (the
    /// speed-scaled slot occupancy of the task it just started).
    fn schedule_finish(&mut self, worker: usize, occupancy: SimDuration);
    /// Reports job completion, timestamped with the harness clock.
    fn job_done(&mut self, job: JobId);
    /// Adjusts the cluster-wide running-task gauge (utilization samples).
    fn add_running(&mut self, delta: i64);
    /// Adjusts the usable-capacity gauge: in-service workers plus down
    /// workers still draining a task — the simulator's utilization
    /// denominator under scenario dynamics (`Cluster::utilization`).
    fn add_capacity(&mut self, delta: i64);

    /// The harness clock (virtual time under the router). The hardened
    /// protocol stamps launch times with it; daemons never arm timers or
    /// read the clock unless hardening is enabled, so the fault-free
    /// router's delivery sequence is untouched.
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    /// Arms a hardened self-timer at worker `to`, `after` from now. Timer
    /// deliveries bypass the network entirely: they are local alarms,
    /// immune to faults, and count as pending work for the liveness
    /// watchdog.
    fn self_timer_worker(&mut self, to: usize, after: SimDuration, msg: WorkerMsg) {
        let _ = (to, after, msg);
        unimplemented!("hardened timers require the virtual-clock router");
    }
    /// Arms a hardened self-timer at distributed scheduler `to`.
    fn self_timer_dist(&mut self, to: usize, after: SimDuration, msg: DistMsg) {
        let _ = (to, after, msg);
        unimplemented!("hardened timers require the virtual-clock router");
    }
    /// Arms a hardened self-timer at the centralized scheduler.
    fn self_timer_central(&mut self, after: SimDuration, msg: CentralMsg) {
        let _ = (after, msg);
        unimplemented!("hardened timers require the virtual-clock router");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_simcore::SimDuration;

    #[test]
    fn messages_carry_cluster_types() {
        // The prototype's wire format is the simulator's entry model.
        let spec = TaskSpec {
            job: JobId(2),
            duration: SimDuration::from_millis(5),
            estimate: SimDuration::from_millis(5),
            class: JobClass::Long,
            task: 0,
            attempt: 0,
        };
        let msg = WorkerMsg::Assign(spec);
        match msg {
            WorkerMsg::Assign(s) => assert!(s.class.is_long()),
            _ => unreachable!(),
        }
        let steal = WorkerMsg::StealReply {
            from: 3,
            nonce: 0,
            entries: vec![QueueEntry::Probe {
                job: JobId(1),
                class: JobClass::Short,
            }],
        };
        match steal {
            WorkerMsg::StealReply { entries, .. } => assert!(entries[0].is_short()),
            _ => unreachable!(),
        }
    }
}
