//! A real-time, multi-threaded Hawk prototype (§3.8, §4.10).
//!
//! The paper implements Hawk as a Spark scheduler plug-in — Sparrow's node
//! monitors augmented with a centralized scheduler and work stealing over
//! Thrift RPC — and validates the simulator against a 100-node cluster run
//! where scaled-down trace tasks execute as *sleeps*. This crate is the
//! equivalent in-process system:
//!
//! * every **node monitor** is an OS thread owning a FIFO queue; task
//!   execution is a real-time deadline (the thread stays responsive to
//!   probes, bind replies and steal requests while "executing", exactly
//!   like a node monitor hosting a sleep task);
//! * **distributed schedulers** (10 by default) are threads implementing
//!   Sparrow batch probing with late binding;
//! * the **centralized scheduler** is a thread running the §3.7
//!   waiting-time algorithm;
//! * all parties exchange messages over channels (the Thrift-RPC stand-in).
//!
//! Because it runs on the wall clock, results are *not* bit-deterministic —
//! the same sources of noise the paper observes (message latency, sleep
//! inaccuracy, scheduling jitter) apply (§4.10).
//!
//! # Examples
//!
//! ```
//! use hawk_proto::{ProtoConfig, ProtoMode, run_prototype};
//! use hawk_workload::sample::PrototypeSampleConfig;
//!
//! // A tiny sample so the doc test finishes in milliseconds.
//! let sample = PrototypeSampleConfig {
//!     short_jobs: 20,
//!     long_jobs: 2,
//!     cluster_size: 8,
//!     duration_divisor: 100_000,
//! };
//! let trace = sample.generate(1);
//! let cfg = ProtoConfig {
//!     workers: 8,
//!     mode: ProtoMode::Hawk,
//!     cutoff: sample.cutoff(),
//!     ..ProtoConfig::default()
//! };
//! let report = run_prototype(&trace, &cfg);
//! assert_eq!(report.jobs.len(), trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod msg;
mod report;
mod runtime;
mod scheduler;
mod worker;

pub use msg::{Entry, ProtoTask, TaskOrigin};
pub use report::{ProtoJobResult, ProtoReport};
pub use runtime::{run_prototype, ProtoConfig, ProtoMode};
