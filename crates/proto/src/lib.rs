//! The real-time prototype **backend**: the same `Scheduler` policies the
//! simulator runs, executing on live node daemons (§3.8, §4.10).
//!
//! The paper implements Hawk as a Spark scheduler plug-in — Sparrow's node
//! monitors augmented with a centralized scheduler and work stealing over
//! Thrift RPC — and validates the simulator against a 100-node cluster run
//! where scaled-down trace tasks execute as *sleeps* (§4.4). This crate is
//! the equivalent in-process system, built so that **policy code is
//! shared, not re-implemented**:
//!
//! * every **node monitor** embeds the simulator's
//!   [`hawk_cluster::Server`] state machine (same FIFO queue, same late
//!   binding, same packed stat word, same Figure 3 steal scan);
//! * **distributed schedulers** place probes by calling
//!   [`Scheduler::probe_targets_into`](hawk_core::Scheduler::probe_targets_into)
//!   over a membership-only shadow cluster;
//! * the **centralized scheduler** wraps the simulator's
//!   [`hawk_core::CentralScheduler`] (§3.7 waiting-time algorithm);
//! * steal victims come from
//!   [`Scheduler::pick_victims_into`](hawk_core::Scheduler::pick_victims_into),
//!   probe bouncing from
//!   [`Scheduler::bounce_probe`](hawk_core::Scheduler::bounce_probe).
//!
//! Two execution modes share those daemons ([`ExecutionMode`]): real OS
//! threads exchanging channel messages on the wall clock (the paper's
//! deployment model — noisy, non-deterministic, §4.10), and a
//! single-threaded **virtual-clock** router whose runs are byte-identical
//! per seed. The virtual mode is what lets `tests/backend_conformance.rs`
//! hold the prototype and the simulator side by side on the same trace.
//!
//! [`ProtoBackend`] packages all of this as a
//! [`Backend`](hawk_core::Backend), and
//! [`ProtoReport::into_metrics`] converts results into the simulator's
//! [`MetricsReport`](hawk_core::MetricsReport) conventions.
//!
//! # Examples
//!
//! ```
//! use hawk_core::{Experiment, SimBackend};
//! use hawk_core::scheduler::Hawk;
//! use hawk_proto::ProtoBackend;
//! use hawk_workload::sample::PrototypeSampleConfig;
//!
//! // A tiny sample so the doc test finishes in milliseconds.
//! let sample = PrototypeSampleConfig {
//!     short_jobs: 20,
//!     long_jobs: 2,
//!     cluster_size: 8,
//!     duration_divisor: 100_000,
//! };
//! let trace = sample.generate(1);
//! let cell = Experiment::builder()
//!     .nodes(8)
//!     .cutoff(sample.cutoff())
//!     .scheduler(Hawk::new(0.25))
//!     .trace(trace)
//!     .build();
//!
//! // One policy, two backends.
//! let sim = cell.run_on(&SimBackend);
//! let proto = cell.run_on(&ProtoBackend::deterministic());
//! assert_eq!(sim.results.len(), proto.results.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod fault;
mod msg;
mod report;
mod runtime;
mod scheduler;
mod virt;
mod worker;

pub use backend::ProtoBackend;
pub use fault::{DelaySpike, FaultSpec, PartitionWindow, TimeoutSpec};
pub use msg::{CentralMsg, DistMsg, WorkerMsg};
pub use report::{ProtoJobResult, ProtoReport};
pub use runtime::{run_prototype, ExecutionMode, ProtoConfig};
