//! Topology-aware network layer.
//!
//! The paper's simulator charges a flat 0.5 ms for every message — probes,
//! bind requests, task placements, bounces — and makes steal transfers free
//! (§4.1). That constant lives in [`hawk_cluster::NetworkModel`]. This crate
//! generalizes it behind one seam, the [`Topology`] trait: *message delay as
//! a function of where the two endpoints sit in the fabric and how loaded
//! the links between them currently are*.
//!
//! Three implementations ship:
//!
//! * [`Constant`] — wraps a [`NetworkModel`] and returns its one-way delay
//!   for every endpoint pair. Bit-identical to the pre-topology engine;
//!   the golden-digest suites pin that equivalence.
//! * [`FatTree`] — a k-ary fat-tree with rack/pod placement derived
//!   deterministically from [`ServerId`] (`rack = id / hosts_per_rack`,
//!   `pod = rack / racks_per_pod`). Delay depends on the link class the
//!   path crosses (rack-local, cross-rack, cross-pod) plus per-link
//!   transmission time, with rack uplinks slowed by the configured
//!   oversubscription factor — but links never queue.
//! * [`FatTreeContended`] — the same geometry with per-link FIFO
//!   contention: each link keeps a busy-until horizon and every message
//!   serializes behind the previous one, so probe storms and steal bursts
//!   queue behind each other. At zero load it degenerates to [`FatTree`];
//!   it allocates nothing after construction.
//!
//! Both simulation backends (the discrete-event driver in `hawk-core` and
//! the prototype's virtual-clock router in `hawk-proto`) route every
//! message delay through this trait, so sim↔proto conformance extends to
//! topologies. Experiments select a model with [`TopologySpec`], which is
//! plain config data (`Copy`, serializable) and builds the boxed model at
//! run start.
//!
//! Determinism rules: a topology's delay may depend only on its own
//! construction parameters, the query arguments, and the order of previous
//! queries — never on wall-clock time, addresses, or iteration order of
//! anything unordered. The event loops of both backends query it in a
//! deterministic order, which makes contended runs reproducible and
//! digest-pinnable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constant;
mod fat_tree;

pub use constant::Constant;
pub use fat_tree::{FatTree, FatTreeContended, FatTreeParams};

/// Rack/pod placement divisors of a placement-aware topology, exposed so
/// schedulers (rack-first victim picking) and the sharded driver
/// (rack-aligned partitioning) can reason about the fabric without holding
/// the built [`Topology`].
///
/// Placement follows the fat-tree rule: `rack = host / hosts_per_rack`,
/// `pod = rack / racks_per_pod`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackGeometry {
    /// Hosts per rack (placement divisor, ≥ 1).
    pub hosts_per_rack: usize,
    /// Racks per pod (placement divisor, ≥ 1).
    pub racks_per_pod: usize,
}

impl RackGeometry {
    /// The rack a host sits in.
    pub fn rack_of(&self, host: usize) -> usize {
        host / self.hosts_per_rack.max(1)
    }

    /// The pod a rack sits in.
    pub fn pod_of_rack(&self, rack: usize) -> usize {
        rack / self.racks_per_pod.max(1)
    }
}

use hawk_cluster::{NetworkModel, ServerId};
use hawk_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One end of a message: a server, a distributed scheduler front-end, or
/// the centralized scheduler.
///
/// Servers have a real position in the fabric (host → rack → pod, derived
/// from the dense [`ServerId`]). Scheduler front-ends are stateless probes'
/// origin points; a fat-tree co-locates scheduler `s` with host
/// `s % nodes`, modeling the paper's deployment where distributed
/// schedulers run on cluster nodes. The centralized scheduler is co-located
/// with host 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A cluster server (worker node).
    Server(ServerId),
    /// A distributed scheduler front-end (in the simulator: the job's
    /// scheduler, identified by job id; in the prototype: the daemon
    /// index).
    Scheduler(u32),
    /// The centralized long-job scheduler.
    Central,
}

impl Endpoint {
    /// The host index this endpoint is co-located with, in a cluster of
    /// `nodes` hosts.
    pub fn host(self, nodes: usize) -> usize {
        let nodes = nodes.max(1);
        match self {
            Endpoint::Server(id) => (id.0 as usize).min(nodes - 1),
            Endpoint::Scheduler(s) => s as usize % nodes,
            Endpoint::Central => 0,
        }
    }
}

/// Message and steal-locality counters accumulated by a topology.
///
/// Placement-aware models classify every delay query by the link class the
/// path crosses; [`Constant`] has no placement and leaves every counter at
/// zero. These counters feed `MetricsReport::network` and are **not** part
/// of the golden digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Messages whose endpoints share a rack (including same-host).
    pub rack_local_msgs: u64,
    /// Messages crossing racks within one pod.
    pub cross_rack_msgs: u64,
    /// Messages crossing pods.
    pub cross_pod_msgs: u64,
    /// Steal transfers whose victim and thief share a rack.
    pub rack_local_steals: u64,
    /// Total steal transfers routed through the topology.
    pub steal_transfers: u64,
}

impl NetworkStats {
    /// Total classified messages.
    pub fn total_msgs(&self) -> u64 {
        self.rack_local_msgs + self.cross_rack_msgs + self.cross_pod_msgs
    }

    /// Fraction of steal transfers that stayed rack-local, or `None` if no
    /// steals were routed.
    pub fn rack_local_steal_rate(&self) -> Option<f64> {
        if self.steal_transfers == 0 {
            None
        } else {
            Some(self.rack_local_steals as f64 / self.steal_transfers as f64)
        }
    }
}

/// A pluggable network model: message delay as a function of endpoint
/// placement and current link load.
///
/// Implementations take `&mut self` because contended models mutate link
/// state on every query; querying a delay *commits* the message to the
/// fabric. Callers must therefore ask exactly once per message sent, in
/// the deterministic order of the event loop.
pub trait Topology: Send + std::fmt::Debug {
    /// Delay for one message sent at `now` from `src` to `dst`.
    fn delay(&mut self, now: SimTime, src: Endpoint, dst: Endpoint) -> SimDuration;

    /// Delay for moving stolen queue entries from `victim` to `thief`,
    /// also recording steal-locality statistics.
    ///
    /// The paper makes this free ("the task stealing \[does\] not incur
    /// additional costs", §4.1) and every model defaults to zero transfer
    /// cost unless configured otherwise.
    fn steal_transfer(&mut self, now: SimTime, victim: Endpoint, thief: Endpoint) -> SimDuration;

    /// Counters accumulated so far.
    fn stats(&self) -> NetworkStats;

    /// A full request/response round trip between two endpoints: two
    /// one-way messages, each individually committed to the fabric.
    ///
    /// [`NetworkModel::round_trip`] is the constant-delay projection of
    /// this default.
    fn round_trip(&mut self, now: SimTime, a: Endpoint, b: Endpoint) -> SimDuration {
        self.delay(now, a, b) + self.delay(now, b, a)
    }
}

/// Serializable topology selector: plain config data that builds a boxed
/// [`Topology`] at run start.
///
/// `Constant` is the default and reproduces the paper's flat network
/// exactly; the fat-tree variants share [`FatTreeParams`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Flat constant-delay network ([`Constant`]).
    Constant(NetworkModel),
    /// Placement-aware fat-tree without link queueing ([`FatTree`]).
    FatTree(FatTreeParams),
    /// Fat-tree with per-link FIFO contention ([`FatTreeContended`]).
    FatTreeContended(FatTreeParams),
}

impl TopologySpec {
    /// The paper's configuration: constant 0.5 ms messages, free stealing.
    pub fn paper_default() -> Self {
        TopologySpec::Constant(NetworkModel::paper_default())
    }

    /// A lower bound on the delay this spec's model charges for any
    /// one-way message, regardless of endpoints or load.
    ///
    /// This is the *lookahead* of conservative parallel simulation: a
    /// sharded driver may process each shard independently up to
    /// `horizon = min-next-event + min_message_delay()` because no
    /// cross-shard message generated before the horizon can fire inside
    /// it. The bound must hold for every [`Topology::delay`] query:
    ///
    /// * `Constant` charges exactly `one_way()` for every pair;
    /// * both fat-tree variants floor at the rack-local propagation cost
    ///   (same-host messages pay it with zero transmission time, and
    ///   contention only ever adds queueing on top).
    pub fn min_message_delay(&self) -> SimDuration {
        match *self {
            TopologySpec::Constant(model) => model.one_way(),
            TopologySpec::FatTree(params) | TopologySpec::FatTreeContended(params) => {
                params.rack_local
            }
        }
    }

    /// The rack/pod placement divisors of this spec, or `None` for models
    /// without placement ([`Constant`]).
    pub fn rack_geometry(&self) -> Option<RackGeometry> {
        match *self {
            TopologySpec::Constant(_) => None,
            TopologySpec::FatTree(params) | TopologySpec::FatTreeContended(params) => {
                Some(RackGeometry {
                    hosts_per_rack: params.hosts_per_rack.max(1),
                    racks_per_pod: params.racks_per_pod.max(1),
                })
            }
        }
    }

    /// A lower bound on the delay this spec's model charges for any one-way
    /// message whose source endpoint is hosted in `src_hosts` and whose
    /// destination endpoint is hosted in `dst_hosts` (both half-open,
    /// non-empty host ranges).
    ///
    /// This refines [`min_message_delay`](Self::min_message_delay) into the
    /// *per-shard-pair* lookahead of the sharded driver: two shards that
    /// can only reach each other across pods get the cross-pod floor, not
    /// the global rack-local one. The bound holds for both fat-tree
    /// variants because contention only ever adds queueing on top of the
    /// class propagation, and store-and-forward traversal never undercuts
    /// the uncontended per-link transmission sum.
    pub fn min_delay_between(
        &self,
        src_hosts: (usize, usize),
        dst_hosts: (usize, usize),
    ) -> SimDuration {
        match *self {
            TopologySpec::Constant(model) => model.one_way(),
            TopologySpec::FatTree(params) | TopologySpec::FatTreeContended(params) => {
                params.min_delay_between(src_hosts, dst_hosts)
            }
        }
    }

    /// Builds the runtime model for a cluster of `nodes` hosts.
    pub fn build(&self, nodes: usize) -> Box<dyn Topology> {
        match *self {
            TopologySpec::Constant(model) => Box::new(Constant::new(model)),
            TopologySpec::FatTree(params) => Box::new(FatTree::new(params, nodes)),
            TopologySpec::FatTreeContended(params) => {
                Box::new(FatTreeContended::new(params, nodes))
            }
        }
    }
}

impl Default for TopologySpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_host_mapping() {
        assert_eq!(Endpoint::Server(ServerId(7)).host(100), 7);
        assert_eq!(Endpoint::Scheduler(105).host(100), 5);
        assert_eq!(Endpoint::Central.host(100), 0);
        // Out-of-range servers clamp rather than panic.
        assert_eq!(Endpoint::Server(ServerId(500)).host(100), 99);
    }

    #[test]
    fn spec_default_is_paper_constant() {
        assert_eq!(
            TopologySpec::default(),
            TopologySpec::Constant(NetworkModel::paper_default())
        );
    }

    #[test]
    fn spec_builds_each_variant() {
        let nodes = 64;
        let constant = TopologySpec::Constant(NetworkModel::paper_default()).build(nodes);
        let flat = TopologySpec::FatTree(FatTreeParams::default()).build(nodes);
        let contended = TopologySpec::FatTreeContended(FatTreeParams::default()).build(nodes);
        for mut t in [constant, flat, contended] {
            let d = t.delay(
                SimTime::ZERO,
                Endpoint::Server(ServerId(0)),
                Endpoint::Server(ServerId(1)),
            );
            assert!(d > SimDuration::ZERO);
        }
    }

    /// The sharded driver's lookahead contract: `min_message_delay` lower-
    /// bounds every delay query of the built model, including same-host
    /// pairs and contended repeats.
    #[test]
    fn min_message_delay_bounds_every_query() {
        let nodes = 64;
        for spec in [
            TopologySpec::Constant(NetworkModel::paper_default()),
            TopologySpec::FatTree(FatTreeParams::default()),
            TopologySpec::FatTreeContended(FatTreeParams::default()),
        ] {
            let floor = spec.min_message_delay();
            assert!(floor > SimDuration::ZERO);
            let mut t = spec.build(nodes);
            let endpoints = [
                Endpoint::Server(ServerId(0)),
                Endpoint::Server(ServerId(1)),
                Endpoint::Server(ServerId(17)),
                Endpoint::Server(ServerId(63)),
                Endpoint::Scheduler(0), // same host as server 0
                Endpoint::Scheduler(130),
                Endpoint::Central,
            ];
            for _round in 0..3 {
                for &a in &endpoints {
                    for &b in &endpoints {
                        let d = t.delay(SimTime::ZERO, a, b);
                        assert!(
                            d >= floor,
                            "{spec:?}: delay {d} below floor {floor} for {a:?}->{b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stats_helpers() {
        let stats = NetworkStats {
            rack_local_msgs: 3,
            cross_rack_msgs: 2,
            cross_pod_msgs: 1,
            rack_local_steals: 1,
            steal_transfers: 4,
        };
        assert_eq!(stats.total_msgs(), 6);
        assert_eq!(stats.rack_local_steal_rate(), Some(0.25));
        assert_eq!(NetworkStats::default().rack_local_steal_rate(), None);
    }
}
