//! The flat constant-delay model: the paper's §4.1 network.

use hawk_cluster::NetworkModel;
use hawk_simcore::{SimDuration, SimTime};

use crate::{Endpoint, NetworkStats, Topology};

/// Placement-blind constant delay: every message costs
/// [`NetworkModel::one_way`], every steal transfer costs
/// [`NetworkModel::steal_transfer_delay`](NetworkModel), regardless of
/// endpoints or load.
///
/// This is the pre-topology engine expressed through the [`Topology`]
/// seam; the golden-digest suites pin that the two are bit-identical.
/// Because the model has no placement, it classifies nothing:
/// [`NetworkStats`] stays all-zero (link classes are a placement-aware
/// concept).
#[derive(Debug, Clone, Copy)]
pub struct Constant {
    model: NetworkModel,
}

impl Constant {
    /// Wraps a [`NetworkModel`].
    pub fn new(model: NetworkModel) -> Self {
        Constant { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> NetworkModel {
        self.model
    }
}

impl Topology for Constant {
    fn delay(&mut self, _now: SimTime, _src: Endpoint, _dst: Endpoint) -> SimDuration {
        self.model.one_way()
    }

    fn steal_transfer(
        &mut self,
        _now: SimTime,
        _victim: Endpoint,
        _thief: Endpoint,
    ) -> SimDuration {
        self.model.steal_transfer_delay
    }

    fn stats(&self) -> NetworkStats {
        NetworkStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_cluster::ServerId;

    #[test]
    fn delay_is_one_way_for_every_endpoint_pair() {
        let model = NetworkModel::paper_default();
        let mut t = Constant::new(model);
        let endpoints = [
            Endpoint::Server(ServerId(0)),
            Endpoint::Server(ServerId(17)),
            Endpoint::Scheduler(3),
            Endpoint::Central,
        ];
        for &a in &endpoints {
            for &b in &endpoints {
                assert_eq!(t.delay(SimTime::ZERO, a, b), model.one_way());
                assert_eq!(
                    t.delay(SimTime::from_secs(100), a, b),
                    model.one_way(),
                    "constant delay must ignore time"
                );
            }
        }
    }

    #[test]
    fn round_trip_matches_network_model() {
        // Satellite contract: `NetworkModel::round_trip` and the trait's
        // default round trip are the same seam.
        let model = NetworkModel::paper_default();
        let mut t = Constant::new(model);
        assert_eq!(
            t.round_trip(
                SimTime::ZERO,
                Endpoint::Central,
                Endpoint::Server(ServerId(1))
            ),
            model.round_trip()
        );
    }

    #[test]
    fn steal_transfer_is_models_and_uncounted() {
        let model = NetworkModel {
            delay: SimDuration::from_micros(500),
            steal_transfer_delay: SimDuration::from_micros(250),
        };
        let mut t = Constant::new(model);
        let d = t.steal_transfer(
            SimTime::ZERO,
            Endpoint::Server(ServerId(0)),
            Endpoint::Server(ServerId(1)),
        );
        assert_eq!(d, SimDuration::from_micros(250));
        assert_eq!(t.stats(), NetworkStats::default());
    }
}
