//! Fat-tree topologies: placement-aware latency and per-link contention.
//!
//! Placement is derived deterministically from the dense [`ServerId`]:
//! `rack = id / hosts_per_rack`, `pod = rack / racks_per_pod`. Every
//! message path is classified by the highest layer it crosses:
//!
//! * **rack-local** — endpoints share a rack (host uplink + host downlink);
//! * **cross-rack** — same pod, different rack (adds the rack uplink and
//!   downlink);
//! * **cross-pod** — different pods (same four links, but the longer
//!   cross-pod propagation stands in for the core layer).
//!
//! Rack uplinks/downlinks carry the aggregated traffic of a whole rack, so
//! their per-message transmission time is multiplied by the configured
//! oversubscription factor — the fat-tree knob the paper's flat network
//! cannot express.

use hawk_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::{Endpoint, NetworkStats, Topology};

/// Shared parameters of [`FatTree`] and [`FatTreeContended`].
///
/// The defaults describe a moderately oversubscribed datacenter fabric
/// whose *cross-rack* figure matches the paper's flat 0.5 ms (§4.1), so a
/// fat-tree cell brackets the paper's constant: rack-local messages are
/// cheaper, cross-pod messages dearer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FatTreeParams {
    /// Hosts per rack (placement divisor; default 16).
    pub hosts_per_rack: usize,
    /// Racks per pod (placement divisor; default 8).
    pub racks_per_pod: usize,
    /// Propagation cost of a rack-local message (default 200 µs).
    pub rack_local: SimDuration,
    /// Propagation cost of a cross-rack, same-pod message (default 500 µs).
    pub cross_rack: SimDuration,
    /// Propagation cost of a cross-pod message (default 1 ms).
    pub cross_pod: SimDuration,
    /// Per-link transmission time of one message on a host link
    /// (default 5 µs); rack links charge this times the oversubscription.
    pub msg_tx: SimDuration,
    /// Oversubscription factor of the rack uplinks (default 4.0).
    pub oversubscription: f64,
    /// Cost of moving stolen entries victim→thief (default zero, §4.1).
    pub steal_transfer: SimDuration,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        FatTreeParams {
            hosts_per_rack: 16,
            racks_per_pod: 8,
            rack_local: SimDuration::from_micros(200),
            cross_rack: SimDuration::from_micros(500),
            cross_pod: SimDuration::from_micros(1_000),
            msg_tx: SimDuration::from_micros(5),
            oversubscription: 4.0,
            steal_transfer: SimDuration::ZERO,
        }
    }
}

impl FatTreeParams {
    /// Sets the hosts-per-rack placement divisor.
    pub fn hosts_per_rack(mut self, hosts: usize) -> Self {
        self.hosts_per_rack = hosts.max(1);
        self
    }

    /// Sets the racks-per-pod placement divisor.
    pub fn racks_per_pod(mut self, racks: usize) -> Self {
        self.racks_per_pod = racks.max(1);
        self
    }

    /// Sets the rack-local propagation cost.
    pub fn rack_local(mut self, d: SimDuration) -> Self {
        self.rack_local = d;
        self
    }

    /// Sets the cross-rack propagation cost.
    pub fn cross_rack(mut self, d: SimDuration) -> Self {
        self.cross_rack = d;
        self
    }

    /// Sets the cross-pod propagation cost.
    pub fn cross_pod(mut self, d: SimDuration) -> Self {
        self.cross_pod = d;
        self
    }

    /// Sets the per-link message transmission time.
    pub fn msg_tx(mut self, d: SimDuration) -> Self {
        self.msg_tx = d;
        self
    }

    /// Sets the rack-uplink oversubscription factor (clamped to ≥ 1).
    pub fn oversubscription(mut self, factor: f64) -> Self {
        self.oversubscription = if factor.is_finite() {
            factor.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// Sets the steal-transfer cost.
    pub fn steal_transfer(mut self, d: SimDuration) -> Self {
        self.steal_transfer = d;
        self
    }

    /// Per-message transmission time on an oversubscribed rack link.
    fn rack_tx(&self) -> SimDuration {
        let micros = (self.msg_tx.as_micros() as f64 * self.oversubscription.max(1.0)).round();
        SimDuration::from_micros(micros as u64)
    }

    /// The uncontended delay of one message of link class `class`: class
    /// propagation plus the per-link transmission sum. This is exactly what
    /// [`FatTree`] charges and a lower bound on what [`FatTreeContended`]
    /// charges (queueing only ever adds on top, and store-and-forward
    /// traversal never undercuts the transmission sum).
    fn class_floor(&self, class: LinkClass) -> SimDuration {
        let prop = match class {
            LinkClass::SameHost | LinkClass::RackLocal => self.rack_local,
            LinkClass::CrossRack => self.cross_rack,
            LinkClass::CrossPod => self.cross_pod,
        };
        let tx = match class {
            LinkClass::SameHost => SimDuration::ZERO,
            LinkClass::RackLocal => self.msg_tx * 2,
            LinkClass::CrossRack | LinkClass::CrossPod => self.msg_tx * 2 + self.rack_tx() * 2,
        };
        prop + tx
    }

    /// A lower bound on the delay of any message from a source hosted in
    /// `src_hosts` to a destination hosted in `dst_hosts` (half-open,
    /// non-empty host ranges): the cheapest link class some host pair in
    /// the two ranges can realize.
    ///
    /// No cost-monotonicity across classes is assumed — the minimum is
    /// taken over the *achievable* classes explicitly, so pathological
    /// parameter sets (e.g. cross-pod cheaper than rack-local) still get a
    /// sound bound.
    pub fn min_delay_between(
        &self,
        src_hosts: (usize, usize),
        dst_hosts: (usize, usize),
    ) -> SimDuration {
        let (a0, a1) = src_hosts;
        let (b0, b1) = dst_hosts;
        debug_assert!(a0 < a1 && b0 < b1, "host ranges must be non-empty");
        let hpr = self.hosts_per_rack.max(1);
        let rpp = self.racks_per_pod.max(1);
        // Contiguous host ranges cover contiguous rack and pod intervals
        // (inclusive).
        let (ra0, ra1) = (a0 / hpr, (a1 - 1) / hpr);
        let (rb0, rb1) = (b0 / hpr, (b1 - 1) / hpr);
        let (pa0, pa1) = (ra0 / rpp, ra1 / rpp);
        let (pb0, pb1) = (rb0 / rpp, rb1 / rpp);

        let mut floor: Option<SimDuration> = None;
        let mut consider = |achievable: bool, class: LinkClass, params: &FatTreeParams| {
            if achievable {
                let f = params.class_floor(class);
                floor = Some(floor.map_or(f, |cur| cur.min(f)));
            }
        };

        // Same host: the ranges intersect.
        consider(a0 < b1 && b0 < a1, LinkClass::SameHost, self);
        // Rack-local: some rack holds hosts of both ranges. (Conservative:
        // a shared single-host rack also passes, which only lowers the
        // bound.)
        consider(ra0 <= rb1 && rb0 <= ra1, LinkClass::RackLocal, self);
        // Cross-rack: some pod holds a src rack and a *different* dst rack.
        let pl = pa0.max(pb0);
        let ph = pa1.min(pb1);
        let mut cross_rack = false;
        if pl <= ph {
            for p in pl..=ph {
                // Rack intervals of each range restricted to pod p.
                let sa = ra0.max(p * rpp);
                let ea = ra1.min((p + 1) * rpp - 1);
                let sb = rb0.max(p * rpp);
                let eb = rb1.min((p + 1) * rpp - 1);
                if sa > ea || sb > eb {
                    continue;
                }
                if !(sa == ea && sb == eb && sa == sb) {
                    cross_rack = true;
                    break;
                }
            }
        }
        consider(cross_rack, LinkClass::CrossRack, self);
        // Cross-pod: achievable unless both ranges sit in one common pod.
        consider(
            !(pa0 == pa1 && pb0 == pb1 && pa0 == pb0),
            LinkClass::CrossPod,
            self,
        );

        floor.expect("non-empty host ranges always realize some link class")
    }
}

/// The link class a path crosses, in ascending cost order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkClass {
    SameHost,
    RackLocal,
    CrossRack,
    CrossPod,
}

/// Shared placement geometry of both fat-tree models.
#[derive(Debug, Clone)]
struct Geometry {
    params: FatTreeParams,
    nodes: usize,
    rack_tx: SimDuration,
    stats: NetworkStats,
}

impl Geometry {
    fn new(params: FatTreeParams, nodes: usize) -> Self {
        let params = params
            .hosts_per_rack(params.hosts_per_rack)
            .racks_per_pod(params.racks_per_pod)
            .oversubscription(params.oversubscription);
        Geometry {
            rack_tx: params.rack_tx(),
            params,
            nodes: nodes.max(1),
            stats: NetworkStats::default(),
        }
    }

    fn rack_of(&self, host: usize) -> usize {
        host / self.params.hosts_per_rack
    }

    fn pod_of(&self, rack: usize) -> usize {
        rack / self.params.racks_per_pod
    }

    fn classify(&self, src: Endpoint, dst: Endpoint) -> (usize, usize, LinkClass) {
        let a = src.host(self.nodes);
        let b = dst.host(self.nodes);
        let class = if a == b {
            LinkClass::SameHost
        } else if self.rack_of(a) == self.rack_of(b) {
            LinkClass::RackLocal
        } else if self.pod_of(self.rack_of(a)) == self.pod_of(self.rack_of(b)) {
            LinkClass::CrossRack
        } else {
            LinkClass::CrossPod
        };
        (a, b, class)
    }

    fn record(&mut self, class: LinkClass) {
        match class {
            LinkClass::SameHost | LinkClass::RackLocal => self.stats.rack_local_msgs += 1,
            LinkClass::CrossRack => self.stats.cross_rack_msgs += 1,
            LinkClass::CrossPod => self.stats.cross_pod_msgs += 1,
        }
    }

    fn propagation(&self, class: LinkClass) -> SimDuration {
        match class {
            LinkClass::SameHost | LinkClass::RackLocal => self.params.rack_local,
            LinkClass::CrossRack => self.params.cross_rack,
            LinkClass::CrossPod => self.params.cross_pod,
        }
    }

    /// Uncontended transmission cost: the sum of per-link tx along the
    /// path, which is also the zero-load limit of the contended model.
    fn base_tx(&self, class: LinkClass) -> SimDuration {
        match class {
            LinkClass::SameHost => SimDuration::ZERO,
            LinkClass::RackLocal => self.params.msg_tx * 2,
            LinkClass::CrossRack | LinkClass::CrossPod => self.params.msg_tx * 2 + self.rack_tx * 2,
        }
    }

    fn record_steal(&mut self, victim: Endpoint, thief: Endpoint) -> SimDuration {
        let (a, b, _) = self.classify(victim, thief);
        self.stats.steal_transfers += 1;
        if self.rack_of(a) == self.rack_of(b) {
            self.stats.rack_local_steals += 1;
        }
        self.params.steal_transfer
    }
}

/// Placement-aware fat-tree latency without link queueing.
///
/// Delay is a pure function of the endpoint pair: class propagation plus
/// the uncontended per-link transmission sum. Useful to isolate *where*
/// messages travel from *how congested* the fabric is.
#[derive(Debug, Clone)]
pub struct FatTree {
    geo: Geometry,
}

impl FatTree {
    /// Builds the model for a cluster of `nodes` hosts.
    pub fn new(params: FatTreeParams, nodes: usize) -> Self {
        FatTree {
            geo: Geometry::new(params, nodes),
        }
    }
}

impl Topology for FatTree {
    fn delay(&mut self, _now: SimTime, src: Endpoint, dst: Endpoint) -> SimDuration {
        let (_, _, class) = self.geo.classify(src, dst);
        self.geo.record(class);
        self.geo.propagation(class) + self.geo.base_tx(class)
    }

    fn steal_transfer(&mut self, _now: SimTime, victim: Endpoint, thief: Endpoint) -> SimDuration {
        self.geo.record_steal(victim, thief)
    }

    fn stats(&self) -> NetworkStats {
        self.geo.stats
    }
}

/// Fat-tree with per-link FIFO contention.
///
/// Every host has an uplink and a downlink, every rack an (oversubscribed)
/// uplink and downlink; each link keeps a busy-until horizon in a flat
/// preallocated vector. A message sent at `now` traverses its path link by
/// link: on each link it starts at `max(arrival, busy_until)`, occupies
/// the link for one transmission time, and pushes the horizon forward.
/// Concurrent messages over the same link therefore serialize — a probe
/// storm into one rack queues on that rack's downlink exactly like the
/// incast it models.
///
/// Deterministic (state depends only on the query sequence) and
/// allocation-free after construction.
#[derive(Debug, Clone)]
pub struct FatTreeContended {
    geo: Geometry,
    /// Busy-until horizon per host uplink.
    host_up: Vec<SimTime>,
    /// Busy-until horizon per host downlink.
    host_down: Vec<SimTime>,
    /// Busy-until horizon per rack uplink.
    rack_up: Vec<SimTime>,
    /// Busy-until horizon per rack downlink.
    rack_down: Vec<SimTime>,
}

impl FatTreeContended {
    /// Builds the model for a cluster of `nodes` hosts, preallocating all
    /// link state.
    pub fn new(params: FatTreeParams, nodes: usize) -> Self {
        let geo = Geometry::new(params, nodes);
        let racks = geo.nodes.div_ceil(geo.params.hosts_per_rack).max(1);
        FatTreeContended {
            host_up: vec![SimTime::ZERO; geo.nodes],
            host_down: vec![SimTime::ZERO; geo.nodes],
            rack_up: vec![SimTime::ZERO; racks],
            rack_down: vec![SimTime::ZERO; racks],
            geo,
        }
    }

    /// Serializes one message through `link`: starts no earlier than the
    /// link frees up, holds it for `tx`, returns the departure time.
    fn traverse(link: &mut SimTime, arrival: SimTime, tx: SimDuration) -> SimTime {
        let start = arrival.max(*link);
        *link = start + tx;
        *link
    }
}

impl Topology for FatTreeContended {
    fn delay(&mut self, now: SimTime, src: Endpoint, dst: Endpoint) -> SimDuration {
        let (a, b, class) = self.geo.classify(src, dst);
        self.geo.record(class);
        let tx = self.geo.params.msg_tx;
        let rack_tx = self.geo.rack_tx;
        let mut t = now;
        match class {
            LinkClass::SameHost => {}
            LinkClass::RackLocal => {
                t = Self::traverse(&mut self.host_up[a], t, tx);
                t = Self::traverse(&mut self.host_down[b], t, tx);
            }
            LinkClass::CrossRack | LinkClass::CrossPod => {
                let (ra, rb) = (self.geo.rack_of(a), self.geo.rack_of(b));
                t = Self::traverse(&mut self.host_up[a], t, tx);
                t = Self::traverse(&mut self.rack_up[ra], t, rack_tx);
                t = Self::traverse(&mut self.rack_down[rb], t, rack_tx);
                t = Self::traverse(&mut self.host_down[b], t, tx);
            }
        }
        t.saturating_since(now) + self.geo.propagation(class)
    }

    fn steal_transfer(&mut self, _now: SimTime, victim: Endpoint, thief: Endpoint) -> SimDuration {
        self.geo.record_steal(victim, thief)
    }

    fn stats(&self) -> NetworkStats {
        self.geo.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_cluster::ServerId;

    fn server(id: u32) -> Endpoint {
        Endpoint::Server(ServerId(id))
    }

    /// 4 hosts per rack, 2 racks per pod ⇒ hosts 0–3 rack 0, 4–7 rack 1
    /// (pod 0), 8–11 rack 2 (pod 1).
    fn small() -> FatTreeParams {
        FatTreeParams::default().hosts_per_rack(4).racks_per_pod(2)
    }

    #[test]
    fn placement_classes_order_by_cost() {
        let mut t = FatTree::new(small(), 16);
        let same_host = t.delay(SimTime::ZERO, server(0), server(0));
        let rack_local = t.delay(SimTime::ZERO, server(0), server(1));
        let cross_rack = t.delay(SimTime::ZERO, server(0), server(4));
        let cross_pod = t.delay(SimTime::ZERO, server(0), server(8));
        assert!(same_host < rack_local, "same-host skips the host links");
        assert!(rack_local < cross_rack);
        assert!(cross_rack < cross_pod);
        let stats = t.stats();
        assert_eq!(stats.rack_local_msgs, 2);
        assert_eq!(stats.cross_rack_msgs, 1);
        assert_eq!(stats.cross_pod_msgs, 1);
    }

    #[test]
    fn uncontended_delay_is_time_invariant() {
        let mut t = FatTree::new(small(), 16);
        let early = t.delay(SimTime::ZERO, server(0), server(8));
        let late = t.delay(SimTime::from_secs(10), server(0), server(8));
        assert_eq!(early, late);
    }

    #[test]
    fn contended_zero_load_matches_uncontended() {
        for (src, dst) in [(0, 0), (0, 1), (0, 4), (0, 8)] {
            let mut flat = FatTree::new(small(), 16);
            let mut contended = FatTreeContended::new(small(), 16);
            assert_eq!(
                contended.delay(SimTime::ZERO, server(src), server(dst)),
                flat.delay(SimTime::ZERO, server(src), server(dst)),
                "first message {src}->{dst} sees an idle fabric"
            );
        }
    }

    #[test]
    fn contended_messages_queue_per_link() {
        let mut t = FatTreeContended::new(small(), 16);
        let first = t.delay(SimTime::ZERO, server(0), server(1));
        let second = t.delay(SimTime::ZERO, server(0), server(1));
        // Store-and-forward pipelining: the second message departs one
        // bottleneck transmission behind the first.
        assert_eq!(second, first + small().msg_tx);
        // A disjoint rack is unaffected.
        let other = t.delay(SimTime::ZERO, server(8), server(9));
        assert_eq!(other, first);
    }

    #[test]
    fn contention_drains_over_time() {
        let mut t = FatTreeContended::new(small(), 16);
        let idle = t.delay(SimTime::ZERO, server(0), server(1));
        t.delay(SimTime::ZERO, server(0), server(1));
        // Far in the future the links are long idle again.
        let later = t.delay(SimTime::from_secs(5), server(0), server(1));
        assert_eq!(later, idle);
    }

    #[test]
    fn rack_uplink_is_oversubscribed() {
        let params = small().oversubscription(4.0);
        let mut t = FatTreeContended::new(params, 16);
        let first = t.delay(SimTime::ZERO, server(0), server(4));
        let second = t.delay(SimTime::ZERO, server(0), server(4));
        // The pipeline bottleneck is the oversubscribed rack uplink: the
        // second message departs one rack transmission (4× the host-link
        // tx) behind the first.
        assert_eq!(second, first + params.rack_tx());
        assert_eq!(params.rack_tx(), params.msg_tx * 4);
    }

    #[test]
    fn incast_on_one_downlink_serializes() {
        let mut t = FatTreeContended::new(small(), 16);
        // Four distinct senders in the same rack target one receiver: the
        // receiver's host downlink is the bottleneck.
        let delays: Vec<SimDuration> = (1..4)
            .map(|src| t.delay(SimTime::ZERO, server(src), server(0)))
            .collect();
        assert!(delays.windows(2).all(|w| w[0] < w[1]), "{delays:?}");
    }

    #[test]
    fn contended_is_deterministic() {
        let run = || {
            let mut t = FatTreeContended::new(small(), 16);
            let mut out = Vec::new();
            for i in 0..50u32 {
                let src = server(i % 16);
                let dst = server((i * 7 + 3) % 16);
                out.push(t.delay(SimTime::from_micros(u64::from(i) * 10), src, dst));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn steal_transfer_records_locality() {
        let mut t = FatTree::new(small(), 16);
        assert_eq!(
            t.steal_transfer(SimTime::ZERO, server(0), server(1)),
            SimDuration::ZERO,
            "stealing stays free by default (§4.1)"
        );
        t.steal_transfer(SimTime::ZERO, server(0), server(8));
        let stats = t.stats();
        assert_eq!(stats.steal_transfers, 2);
        assert_eq!(stats.rack_local_steals, 1);
        assert_eq!(stats.rack_local_steal_rate(), Some(0.5));
    }

    #[test]
    fn configured_steal_transfer_cost_is_returned() {
        let params = small().steal_transfer(SimDuration::from_micros(125));
        let mut t = FatTreeContended::new(params, 16);
        assert_eq!(
            t.steal_transfer(SimTime::ZERO, server(2), server(9)),
            SimDuration::from_micros(125)
        );
    }

    #[test]
    fn schedulers_are_colocated_with_hosts() {
        let mut t = FatTree::new(small(), 16);
        // Scheduler 0 sits on host 0: same class as a host-0 message.
        assert_eq!(
            t.delay(SimTime::ZERO, Endpoint::Scheduler(0), server(1)),
            t.delay(SimTime::ZERO, server(0), server(1)),
        );
        // Central sits on host 0 too.
        assert_eq!(
            t.delay(SimTime::ZERO, Endpoint::Central, server(8)),
            t.delay(SimTime::ZERO, server(0), server(8)),
        );
    }

    /// Brute-force oracle: the per-pair floor must lower-bound every
    /// concrete delay between hosts of the two ranges, in both variants,
    /// and must be *achieved* by some pair in the uncontended model.
    #[test]
    fn range_floor_bounds_and_is_tight() {
        let params = small(); // 4 hosts/rack, 2 racks/pod
        let nodes = 32;
        let ranges = [(0, 4), (0, 8), (4, 8), (8, 16), (0, 32), (12, 20), (5, 6)];
        for &a in &ranges {
            for &b in &ranges {
                let floor = params.min_delay_between(a, b);
                let mut tightest: Option<SimDuration> = None;
                for src in a.0..a.1 {
                    for dst in b.0..b.1 {
                        let mut flat = FatTree::new(params, nodes);
                        let d = flat.delay(SimTime::ZERO, server(src as u32), server(dst as u32));
                        assert!(d >= floor, "{a:?}->{b:?}: {src}->{dst} delay {d} < {floor}");
                        tightest = Some(tightest.map_or(d, |t| t.min(d)));
                        let mut cont = FatTreeContended::new(params, nodes);
                        let dc = cont.delay(SimTime::ZERO, server(src as u32), server(dst as u32));
                        assert!(dc >= floor, "contended {src}->{dst}: {dc} < {floor}");
                    }
                }
                assert_eq!(tightest, Some(floor), "{a:?}->{b:?} floor not tight");
            }
        }
    }

    /// Inverted costs (cross-pod cheaper than rack-local) must not break
    /// the bound: the floor takes a min over achievable classes, not the
    /// "nearest" one.
    #[test]
    fn range_floor_survives_inverted_costs() {
        let params = small()
            .rack_local(SimDuration::from_micros(900))
            .cross_rack(SimDuration::from_micros(700))
            .cross_pod(SimDuration::from_micros(100));
        let nodes = 32;
        for &(a, b) in &[((0, 4), (0, 4)), ((0, 8), (0, 8)), ((0, 4), (4, 8))] {
            let floor = params.min_delay_between(a, b);
            for src in a.0..a.1 {
                for dst in b.0..b.1 {
                    let mut flat = FatTree::new(params, nodes);
                    let d = flat.delay(SimTime::ZERO, server(src as u32), server(dst as u32));
                    assert!(d >= floor, "{src}->{dst}: {d} < {floor}");
                }
            }
        }
        // Two single-rack ranges in one pod can never realize cross-pod.
        let rack_pair = params.min_delay_between((0, 4), (4, 8));
        assert_eq!(
            rack_pair,
            params.cross_rack + params.msg_tx * 2 + params.rack_tx() * 2
        );
    }

    #[test]
    fn disjoint_rack_aligned_ranges_get_class_floors() {
        let params = small(); // 4 hosts/rack, 2 racks/pod ⇒ 8 hosts/pod
        let cross_rack_floor = params.cross_rack + params.msg_tx * 2 + params.rack_tx() * 2;
        let cross_pod_floor = params.cross_pod + params.msg_tx * 2 + params.rack_tx() * 2;
        // Same pod, different racks.
        assert_eq!(params.min_delay_between((0, 4), (4, 8)), cross_rack_floor);
        // Different pods only.
        assert_eq!(params.min_delay_between((0, 8), (8, 16)), cross_pod_floor);
        // Overlapping ranges can stay on one host.
        assert_eq!(params.min_delay_between((0, 8), (0, 8)), params.rack_local);
        // Spanning ranges: pod 0 + pod 1 vs pod 1 + pod 2 share pod 1.
        assert_eq!(
            params.min_delay_between((0, 16), (8, 24)),
            params.rack_local
        );
    }

    #[test]
    fn degenerate_single_host_cluster() {
        let mut t = FatTreeContended::new(small(), 1);
        let d = t.delay(SimTime::ZERO, server(0), Endpoint::Scheduler(5));
        assert_eq!(d, small().rack_local);
    }
}
