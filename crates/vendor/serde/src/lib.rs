//! Offline no-op stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait and derive names so that
//! `#[derive(Serialize, Deserialize)]` compiles without the real crate.
//! The traits are blanket-implemented for every type and carry no methods;
//! nothing in this workspace serializes through serde (trace JSON is
//! hand-rolled in `hawk-workload`). See `crates/vendor/README.md`.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
