//! Offline miniature stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `throughput` / `sample_size`, `bench_function` / `bench_with_input`,
//! and `Bencher::iter`. Timing is plain wall-clock sampling with a short
//! warm-up; each benchmark reports mean and minimum time per iteration
//! (and throughput when configured). No statistical analysis or HTML
//! reports — run the real criterion for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark, reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Times `f`: warms up, then takes timed samples and records the mean
    /// and minimum per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(f());
        let mut est = start.elapsed().max(Duration::from_nanos(1));
        // For fast bodies, batch iterations so each sample is >= ~5 ms.
        let batch = (Duration::from_millis(5).as_nanos() / est.as_nanos()).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed() / batch as u32;
            total += dt;
            min = min.min(dt);
        }
        est = total / self.samples as u32;
        self.result = Some(Sample { mean: est, min });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        self.report(&id, b.result);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        self.report(&id, b.result);
        self
    }

    /// Ends the group (formatting only in this stand-in).
    pub fn finish(self) {
        println!();
    }

    fn report(&mut self, id: &BenchmarkId, result: Option<Sample>) {
        let full = format!("{}/{}", self.name, id);
        match result {
            Some(s) => {
                let mut line = format!(
                    "{full:<60} mean {:>12} min {:>12}",
                    fmt_duration(s.mean),
                    fmt_duration(s.min)
                );
                if let Some(tp) = self.throughput {
                    let per_sec = |n: u64| n as f64 / s.mean.as_secs_f64();
                    match tp {
                        Throughput::Elements(n) => {
                            line.push_str(&format!("  {:>14.0} elem/s", per_sec(n)));
                        }
                        Throughput::Bytes(n) => {
                            line.push_str(&format!("  {:>14.0} B/s", per_sec(n)));
                        }
                    }
                }
                println!("{line}");
            }
            None => println!("{full:<60} (no measurement)"),
        }
        self.criterion.benchmarks_run += 1;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    benchmarks_run: usize,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            benchmarks_run: 0,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: 3,
            result: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        let s = b.result.expect("sample recorded");
        assert!(s.min <= s.mean);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("push", 42).to_string(), "push/42");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .throughput(Throughput::Elements(10))
            .bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(c.benchmarks_run, 2);
    }
}
