//! Offline miniature stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! deterministic random case generation through the [`Strategy`](strategy::Strategy) trait
//! (ranges, tuples, `vec`, [`Just`](strategy::Just), `prop_map`,
//! `prop_oneof!`), the [`proptest!`] test macro with an optional
//! `#![proptest_config(..)]` header, and panic-based `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with its case number; cases
//!   are generated from a seed derived deterministically from the test
//!   name and case index, so any failure replays exactly.
//! * Case count comes from [`ProptestConfig::with_cases`] or the
//!   `PROPTEST_CASES` environment variable (default 256).

/// The per-test configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic generator state for one test case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

pub mod strategy {
    //! Value-generation strategies (the mini [`Strategy`] trait and its
    //! combinators).

    use super::TestRng;
    use std::ops::Range;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty strategy range");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add((rng.next_u64() % span) as i64)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A strategy generating `Vec`s with a length drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy over `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Prints the failing case number when a test body panics, so the case can
/// be replayed (generation is deterministic in the test name and index).
pub struct CaseGuard {
    /// Test name (for the failure report).
    pub name: &'static str,
    /// Case index.
    pub case: u64,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest (vendored mini): test `{}` failed at case {} — \
                 cases are deterministic in (test name, case index)",
                self.name, self.case
            );
        }
    }
}

pub mod prelude {
    //! The usual single-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `arg in strategy` binding is regenerated
/// for every case and the body re-runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let _guard = $crate::CaseGuard { name: stringify!($name), case };
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0.25f64..0.75, z in 1usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u32..3, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _b) in v {
                prop_assert!(n < 3);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u64), (10u64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
