//! No-op `Serialize` / `Deserialize` derive macros for the vendored serde
//! stand-in. The traits they "implement" are blanket-implemented in the
//! `serde` stub, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
