//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the Hawk
//! paper and prints a TSV series to stdout (plus commentary on stderr).
//! They share a tiny CLI convention:
//!
//! * default — the paper's cluster sizes with a truncated job count
//!   (tens of thousands of jobs; seconds to a few minutes per figure);
//! * `--quick` — clusters and task counts scaled down 10× for smoke runs;
//! * `--full-trace` (alias `--paper-scale`) — the full published job count
//!   (506,460 jobs for the Google trace; minutes to tens of minutes);
//! * `--jobs N` / `--seed S` — explicit overrides.
//!
//! Truncating the job count shortens the simulated horizon but preserves
//! the arrival rate, and therefore the offered load at every sweep point —
//! the quantity the paper's figures are parameterized by.
//!
//! # Examples
//!
//! ```
//! use hawk_bench::{HarnessOpts, RunMode, GOOGLE_DEFAULT_JOBS, GOOGLE_FULL_JOBS};
//!
//! // The shared CLI convention resolves job counts per mode.
//! let opts = HarnessOpts { mode: RunMode::Quick, ..Default::default() };
//! assert_eq!(opts.cluster_scale(), 10);
//! assert_eq!(
//!     opts.job_count(GOOGLE_DEFAULT_JOBS, GOOGLE_FULL_JOBS),
//!     GOOGLE_DEFAULT_JOBS / 6
//! );
//! let full = HarnessOpts { mode: RunMode::FullTrace, ..Default::default() };
//! assert_eq!(full.job_count(GOOGLE_DEFAULT_JOBS, GOOGLE_FULL_JOBS), 506_460);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Arc;

use hawk_core::{compare, Experiment, ExperimentBuilder, MetricsReport, Scheduler, SweepResults};
use hawk_workload::google::GoogleTraceConfig;
use hawk_workload::{JobClass, Trace};

/// How much of the paper's configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// 10×-scaled clusters, small trace: CI-speed smoke runs.
    Quick,
    /// Paper cluster sizes, truncated trace (the default).
    Paper,
    /// Paper cluster sizes, full published job count.
    FullTrace,
}

/// Parsed harness options.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Scale mode.
    pub mode: RunMode,
    /// Job-count override.
    pub jobs: Option<usize>,
    /// Seed override.
    pub seed: u64,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            mode: RunMode::Paper,
            jobs: None,
            seed: hawk_core::DEFAULT_SEED,
        }
    }
}

impl HarnessOpts {
    /// Job count for this run: the override if given, else per mode.
    pub fn job_count(&self, default_jobs: usize, full_jobs: usize) -> usize {
        self.jobs.unwrap_or(match self.mode {
            RunMode::Quick => (default_jobs / 6).max(500),
            RunMode::Paper => default_jobs,
            RunMode::FullTrace => full_jobs,
        })
    }

    /// Cluster scale divisor: 10 in quick mode, 1 otherwise.
    pub fn cluster_scale(&self) -> u64 {
        match self.mode {
            RunMode::Quick => 10,
            _ => 1,
        }
    }
}

/// Parses `std::env::args()` under the shared convention; exits with a
/// usage message on unknown flags.
pub fn parse_args(binary: &str, description: &str) -> HarnessOpts {
    parse_args_with(binary, description, &[]).0
}

/// Like [`parse_args`], but a binary may declare extra boolean flags
/// (`(flag, help)` pairs, e.g. `("--faults", "add faulty rows")`).
/// Returns the shared options plus the extra flags that were present;
/// anything undeclared still exits with the usage message.
pub fn parse_args_with(
    binary: &str,
    description: &str,
    extra: &[(&str, &str)],
) -> (HarnessOpts, Vec<String>) {
    let mut opts = HarnessOpts::default();
    let mut flags = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.mode = RunMode::Quick,
            "--full-trace" | "--paper-scale" => opts.mode = RunMode::FullTrace,
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                opts.jobs = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage(binary, description, extra)),
                );
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                opts.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage(binary, description, extra));
            }
            "--help" | "-h" => usage(binary, description, extra),
            other => {
                if extra.iter().any(|(flag, _)| *flag == other) {
                    flags.push(other.to_string());
                } else {
                    usage(binary, description, extra);
                }
            }
        }
    }
    (opts, flags)
}

fn usage(binary: &str, description: &str, extra: &[(&str, &str)]) -> ! {
    eprintln!("{binary}: {description}");
    let extras: String = extra.iter().map(|(flag, _)| format!(" [{flag}]")).collect();
    eprintln!("usage: {binary} [--quick | --full-trace] [--jobs N] [--seed S]{extras}");
    for (flag, help) in extra {
        eprintln!("  {flag}: {help}");
    }
    std::process::exit(2);
}

/// The Google trace job count the paper uses after cleaning.
pub const GOOGLE_FULL_JOBS: usize = 506_460;

/// Default truncated Google job count for paper-size clusters.
pub const GOOGLE_DEFAULT_JOBS: usize = 30_000;

/// Generates the Google-like trace and its cluster-size sweep for `opts`.
pub fn google_setup(opts: &HarnessOpts) -> (Arc<Trace>, Vec<usize>) {
    let scale = opts.cluster_scale();
    let jobs = opts.job_count(GOOGLE_DEFAULT_JOBS, GOOGLE_FULL_JOBS);
    eprintln!("generating Google-like trace: {jobs} jobs, cluster scale 1/{scale}");
    let trace = GoogleTraceConfig::with_scale(scale, jobs).generate(opts.seed);
    (Arc::new(trace), GoogleTraceConfig::scaled_node_sweep(scale))
}

/// The Google-trace cluster size the sensitivity studies fix (15,000 nodes
/// in the paper; scaled in quick mode).
pub fn google_sensitivity_nodes(opts: &HarnessOpts) -> usize {
    15_000 / opts.cluster_scale() as usize
}

/// Prints a TSV header row to stdout.
pub fn tsv_header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints one TSV row of preformatted values.
pub fn tsv_row(values: &[String]) {
    println!("{}", values.join("\t"));
}

/// Formats an optional float with 4 decimals for TSV output.
pub fn fmt4(x: impl Into<Option<f64>>) -> String {
    match x.into() {
        Some(v) => format!("{v:.4}"),
        None => "-".into(),
    }
}

/// Formats any displayable value.
pub fn fmt<T: Display>(x: T) -> String {
    x.to_string()
}

/// The base experiment description for a harness run: the paper's
/// defaults with the run's seed. Binaries refine it with `.cutoff(..)`,
/// `.central_overhead(..)` etc. before fanning out cells.
pub fn base(opts: &HarnessOpts) -> ExperimentBuilder {
    Experiment::builder().seed(opts.seed)
}

/// Runs one scheduler on a trace at one cluster size.
pub fn run_cell(
    trace: &Arc<Trace>,
    scheduler: impl Scheduler + 'static,
    nodes: usize,
    base: &ExperimentBuilder,
) -> MetricsReport {
    base.clone()
        .trace(trace)
        .scheduler(scheduler)
        .nodes(nodes)
        .run()
}

/// Runs `subject` and `baseline` across a cluster-size sweep — every cell
/// in parallel — and returns `(nodes, subject report, baseline report)`
/// rows in sweep order. The boilerplate loop of most paper figures.
///
/// # Panics
///
/// Panics if the two schedulers share a name (the rows could not be
/// paired).
pub fn sweep_pair(
    trace: &Arc<Trace>,
    subject: impl Scheduler + 'static,
    baseline: impl Scheduler + 'static,
    nodes: &[usize],
    base: &ExperimentBuilder,
) -> Vec<(usize, MetricsReport, MetricsReport)> {
    let subject_name = subject.name();
    let baseline_name = baseline.name();
    assert_ne!(
        subject_name, baseline_name,
        "schedulers must be nameable apart"
    );
    let results = base
        .clone()
        .trace(trace)
        .sweep()
        .scheduler(subject)
        .scheduler(baseline)
        .nodes(nodes.iter().copied())
        .run_all();
    // Grid order is schedulers × nodes: the first half of the cells is the
    // subject's node sweep, the second half the baseline's. Move the
    // reports out instead of cloning them (at --full-trace scale a report
    // holds one JobResult per job), with name/nodes asserts guarding the
    // pairing against any future grid-order change.
    let mut subject_cells = results.cells;
    assert_eq!(subject_cells.len(), 2 * nodes.len());
    let baseline_cells = subject_cells.split_off(nodes.len());
    nodes
        .iter()
        .zip(subject_cells)
        .zip(baseline_cells)
        .map(|((&n, s), b)| {
            assert!(
                s.scheduler == subject_name && s.nodes == n,
                "subject cell order"
            );
            assert!(
                b.scheduler == baseline_name && b.nodes == n,
                "baseline cell order"
            );
            (n, s.report, b.report)
        })
        .collect()
}

/// Runs a list of fully built cells in parallel, preserving order.
pub fn run_cells(cells: Vec<Experiment>) -> SweepResults {
    let mut sweep = Experiment::builder().sweep();
    for cell in cells {
        sweep = sweep.cell(cell);
    }
    sweep.run_all()
}

/// The four normalized ratios most figures report: (p50 long, p90 long,
/// p50 short, p90 short) of `subject` over `baseline`.
pub fn ratio_quad(
    subject: &MetricsReport,
    baseline: &MetricsReport,
) -> (Option<f64>, Option<f64>, Option<f64>, Option<f64>) {
    let long = compare(subject, baseline, JobClass::Long);
    let short = compare(subject, baseline, JobClass::Short);
    (
        long.p50_ratio,
        long.p90_ratio,
        short.p50_ratio,
        short.p90_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt4_formats() {
        assert_eq!(fmt4(1.23456), "1.2346");
        assert_eq!(fmt4(None), "-");
        assert_eq!(fmt4(Some(0.5)), "0.5000");
    }

    #[test]
    fn job_count_per_mode() {
        let mut opts = HarnessOpts::default();
        assert_eq!(opts.job_count(30_000, 506_460), 30_000);
        opts.mode = RunMode::FullTrace;
        assert_eq!(opts.job_count(30_000, 506_460), 506_460);
        opts.mode = RunMode::Quick;
        assert_eq!(opts.job_count(30_000, 506_460), 5_000);
        opts.jobs = Some(42);
        assert_eq!(opts.job_count(30_000, 506_460), 42);
    }

    #[test]
    fn cluster_scale_per_mode() {
        let mut opts = HarnessOpts::default();
        assert_eq!(opts.cluster_scale(), 1);
        opts.mode = RunMode::Quick;
        assert_eq!(opts.cluster_scale(), 10);
    }
}
