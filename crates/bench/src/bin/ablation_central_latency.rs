//! Ablation: centralized-scheduler decision cost.
//!
//! The paper's §1 motivation for hybrid scheduling is that "the very large
//! number of scheduling decisions … can overwhelm centralized schedulers"
//! — yet its simulator gives the fully-centralized baseline free
//! decisions (§4.1). This bench makes the cost explicit: the centralized
//! scheduler processes jobs serially at a configurable per-task decision
//! cost, and we sweep that cost.
//!
//! Expectation: the fully-centralized baseline's short-job latency
//! explodes once the decision pipeline saturates (its arrival rate ×
//! processing cost approaches 1), while Hawk — whose centralized
//! component only sees the few long jobs — is barely affected. This
//! quantifies the paper's core scalability argument.

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, run_cells, tsv_header,
    tsv_row,
};
use hawk_core::scheduler::{Centralized, Hawk};
use hawk_core::CentralOverhead;
use hawk_simcore::SimDuration;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

/// Per-task decision costs to sweep, in milliseconds.
///
/// With the default truncated trace, jobs arrive every ≈1.46 s and average
/// ≈20 tasks, so the serial decision pipeline of the fully-centralized
/// baseline saturates near 70 ms per task; the sweep brackets that point.
const PER_TASK_MS: [u64; 6] = [0, 10, 30, 70, 100, 150];

fn main() {
    let opts = parse_args(
        "ablation_central_latency",
        "centralized decision-cost ablation (§1 motivation)",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    // The overhead axis is not a fluent sweep dimension; build the 2 cells
    // per cost point explicitly and run the whole list in parallel.
    let mut cells = Vec::new();
    for ms in PER_TASK_MS {
        let env = base(&opts)
            .nodes(nodes)
            .trace(&trace)
            .central_overhead(CentralOverhead {
                per_job: SimDuration::from_millis(2 * ms),
                per_task: SimDuration::from_millis(ms),
            });
        cells.push(env.clone().scheduler(Centralized::new()).build());
        cells.push(env.scheduler(Hawk::new(GOOGLE_SHORT_PARTITION)).build());
    }
    eprintln!(
        "ablation_central_latency: running {} cells at {nodes} nodes in parallel...",
        cells.len()
    );
    let results = run_cells(cells);

    tsv_header(&[
        "per_task_decision_ms",
        "centralized_p50_short_s",
        "centralized_p90_short_s",
        "hawk_p50_short_s",
        "hawk_p90_short_s",
        "centralized_p90_long_s",
        "hawk_p90_long_s",
    ]);
    assert_eq!(results.cells.len(), 2 * PER_TASK_MS.len());
    for (i, ms) in PER_TASK_MS.iter().enumerate() {
        let central = &results.cells[2 * i].report;
        let hawk = &results.cells[2 * i + 1].report;
        // Guard the index pairing against any future cell-order change.
        assert_eq!(central.scheduler, "centralized");
        assert_eq!(hawk.scheduler, "hawk");
        tsv_row(&[
            fmt(ms),
            fmt4(central.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(central.runtime_percentile(JobClass::Short, 90.0)),
            fmt4(hawk.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(hawk.runtime_percentile(JobClass::Short, 90.0)),
            fmt4(central.runtime_percentile(JobClass::Long, 90.0)),
            fmt4(hawk.runtime_percentile(JobClass::Long, 90.0)),
        ]);
    }
    eprintln!("ablation_central_latency: done (absolute runtimes in seconds)");
}
