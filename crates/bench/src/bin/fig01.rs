//! Figure 1: CDF of short-job runtime under Sparrow in a loaded,
//! heterogeneous cluster (the §2.3 motivation).
//!
//! The scenario: 15,000 servers; 1,000 jobs; 95 % short (100 tasks of
//! 100 s), 5 % long (1,000 tasks of 20,000 s); Poisson arrivals with a
//! 50 s mean. The paper reports median utilization 86 % and maximum
//! 97.8 %, and a short-job runtime CDF with a large fraction of jobs
//! beyond 15,000 s even though ≈300 servers are free at any time — pure
//! head-of-line blocking behind long tasks.
//!
//! Output: the short-job runtime CDF (one row per 2 % of jobs), then the
//! utilization summary.

use hawk_bench::{base, fmt, fmt4, parse_args, tsv_header, tsv_row};
use hawk_core::scheduler::Sparrow;
use hawk_simcore::stats::percentile_of_sorted;
use hawk_workload::classify::Cutoff;
use hawk_workload::motivation::MotivationConfig;
use hawk_workload::JobClass;

fn main() {
    let opts = parse_args(
        "fig01",
        "short-job runtime CDF under Sparrow (Figure 1 / §2.3)",
    );
    let mut scenario = MotivationConfig::default();
    if let Some(jobs) = opts.jobs {
        scenario.jobs = jobs;
    }
    let nodes = MotivationConfig::PAPER_NODES / opts.cluster_scale() as usize;
    if opts.cluster_scale() != 1 {
        // Keep offered load: fewer nodes need proportionally slower arrivals.
        scenario.mean_interarrival = scenario.mean_interarrival * opts.cluster_scale();
    }

    eprintln!(
        "fig01: {} jobs on {} nodes under Sparrow...",
        scenario.jobs, nodes
    );
    let trace = scenario.generate(opts.seed);
    let report = base(&opts)
        .nodes(nodes)
        .scheduler(Sparrow::new())
        // Any cutoff between 100 s and 20,000 s classifies this synthetic
        // mix exactly; use the Google default.
        .cutoff(Cutoff::GOOGLE_DEFAULT)
        .trace(trace)
        .run();

    let mut runtimes = report.runtimes(JobClass::Short);
    runtimes.sort_by(|a, b| a.partial_cmp(b).expect("runtimes are finite"));

    tsv_header(&["cdf_pct", "short_job_runtime_s"]);
    for pct in (2..=100).step_by(2) {
        let value = percentile_of_sorted(&runtimes, pct as f64);
        tsv_row(&[fmt(pct), fmt4(value)]);
    }

    eprintln!(
        "fig01: median utilization {:.1}% (paper: 86%), max {:.1}% (paper: 97.8%)",
        report.median_utilization * 100.0,
        report.max_utilization * 100.0
    );
    let blocked = runtimes.iter().filter(|&&r| r > 15_000.0).count();
    eprintln!(
        "fig01: {:.1}% of short jobs exceed 15,000 s (paper: \"a large fraction\"); ideal runtime is ~100 s",
        100.0 * blocked as f64 / runtimes.len().max(1) as f64
    );
}
