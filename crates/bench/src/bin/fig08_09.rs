//! Figures 8 and 9: Hawk normalized to the fully centralized scheduler,
//! Google trace, sweeping cluster size — short jobs (Fig 8) and long jobs
//! (Fig 9).
//!
//! Paper findings: under heavy load (10k–15k nodes) the centralized
//! scheduler penalizes short jobs (Hawk's ratios ≪ 1) because it has no
//! idle options and queues shorts behind longs; as load drops the two
//! converge. For long jobs the centralized approach is slightly better
//! (ratios a bit above 1): it can use the entire cluster, Hawk only the
//! general partition.

use hawk_bench::{
    base, fmt, fmt4, google_setup, parse_args, ratio_quad, sweep_pair, tsv_header, tsv_row,
};
use hawk_core::scheduler::{Centralized, Hawk};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

fn main() {
    let opts = parse_args("fig08_09", "Hawk vs fully centralized (Figures 8 and 9)");
    let (trace, sweep) = google_setup(&opts);
    let base = base(&opts);

    tsv_header(&[
        "nodes",
        "p50_short",
        "p90_short",
        "p50_long",
        "p90_long",
        "centralized_median_util",
    ]);
    eprintln!("fig08_09: running {} cells in parallel...", 2 * sweep.len());
    let rows = sweep_pair(
        &trace,
        Hawk::new(GOOGLE_SHORT_PARTITION),
        Centralized::new(),
        &sweep,
        &base,
    );
    for (nodes, hawk, central) in rows {
        let (p50l, p90l, p50s, p90s) = ratio_quad(&hawk, &central);
        tsv_row(&[
            fmt(nodes),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(p50l),
            fmt4(p90l),
            fmt4(central.median_utilization),
        ]);
    }
    eprintln!("fig08_09: done (Fig 8 = short columns, Fig 9 = long columns)");
}
