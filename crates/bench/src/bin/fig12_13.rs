//! Figures 12 and 13: sensitivity to the short/long cutoff. Hawk
//! normalized to Sparrow at 15,000 nodes on the Google trace, sweeping the
//! cutoff over 750–2000 s — long jobs (Fig 12) and short jobs (Fig 13).
//!
//! Paper findings: Hawk's benefits hold across the whole range. Smaller
//! cutoffs improve short jobs the most (more jobs count as long, the short
//! partition is underloaded, stealing is easier) but hurt the long-job
//! 90th percentile (Sparrow can spread long jobs over the whole cluster).

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, ratio_quad, tsv_header,
    tsv_row,
};
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::classify::Cutoff;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

/// The paper's cutoff sweep, seconds (1129 s is the default cutoff).
const CUTOFFS: [u64; 6] = [750, 1_000, 1_129, 1_300, 1_500, 2_000];

fn main() {
    let opts = parse_args("fig12_13", "cutoff sensitivity (Figures 12 and 13)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!(
        "fig12_13: running {} cells at {nodes} nodes in parallel...",
        2 * CUTOFFS.len()
    );
    let results = base(&opts)
        .nodes(nodes)
        .trace(&trace)
        .sweep()
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
        .scheduler(Sparrow::new())
        .cutoffs(CUTOFFS.iter().map(|&s| Cutoff::from_secs(s)))
        .run_all();

    tsv_header(&[
        "cutoff_s",
        "p50_long",
        "p90_long",
        "p50_short",
        "p90_short",
        "long_jobs_pct",
    ]);
    for cutoff_secs in CUTOFFS {
        let cutoff = Cutoff::from_secs(cutoff_secs);
        let cell = |name: &str| {
            &results
                .find(|c| c.scheduler == name && c.cutoff == cutoff)
                .expect("cell ran")
                .report
        };
        let (hawk, sparrow) = (cell("hawk"), cell("sparrow"));
        let (p50l, p90l, p50s, p90s) = ratio_quad(hawk, sparrow);
        let long_pct = 100.0
            * hawk
                .results
                .iter()
                .filter(|r| r.true_class.is_long())
                .count() as f64
            / hawk.results.len() as f64;
        tsv_row(&[
            fmt(cutoff_secs),
            fmt4(p50l),
            fmt4(p90l),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(long_pct),
        ]);
    }
    eprintln!("fig12_13: done (Fig 12 = long columns, Fig 13 = short columns) at {nodes} nodes");
}
