//! Figure 5: Hawk normalized to Sparrow on the Google trace, sweeping
//! cluster size (paper: 10,000–50,000 nodes).
//!
//! * Fig 5a — 50th/90th percentile runtime ratios for **long** jobs, plus
//!   Sparrow's median cluster utilization.
//! * Fig 5b — the same ratios for **short** jobs.
//! * Fig 5c — fraction of jobs Hawk improves-or-equals and the average
//!   runtime ratio, per class.
//!
//! Paper reference points (best cases, 15,000–25,000 nodes): Hawk improves
//! short jobs by 80 % (p50) and 90 % (p90) — ratios 0.2 and 0.1 — and long
//! jobs by 35 % (p50) and 10 % (p90) — ratios 0.65 and 0.90. At 15,000
//! nodes Hawk improves 68 % of short jobs and is ≥ Sparrow for 86 % (72 %
//! for long jobs); the short-job average runtime ratio dips to ≈1/7.

use hawk_bench::{
    base, fmt, fmt4, google_setup, parse_args, ratio_quad, sweep_pair, tsv_header, tsv_row,
};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

fn main() {
    let opts = parse_args("fig05", "Hawk vs Sparrow on the Google trace (Figure 5)");
    let (trace, sweep) = google_setup(&opts);
    let base = base(&opts);

    tsv_header(&[
        "nodes",
        "p50_long",
        "p90_long",
        "p50_short",
        "p90_short",
        "sparrow_median_util",
        "hawk_median_util",
        "frac_improved_or_eq_long",
        "frac_improved_or_eq_short",
        "mean_ratio_long",
        "mean_ratio_short",
        "hawk_steals",
    ]);

    eprintln!("fig05: running {} cells in parallel...", 2 * sweep.len());
    let rows = sweep_pair(
        &trace,
        Hawk::new(GOOGLE_SHORT_PARTITION),
        Sparrow::new(),
        &sweep,
        &base,
    );
    for (nodes, hawk, sparrow) in rows {
        let (p50l, p90l, p50s, p90s) = ratio_quad(&hawk, &sparrow);
        let long = compare(&hawk, &sparrow, JobClass::Long);
        let short = compare(&hawk, &sparrow, JobClass::Short);
        tsv_row(&[
            fmt(nodes),
            fmt4(p50l),
            fmt4(p90l),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(sparrow.median_utilization),
            fmt4(hawk.median_utilization),
            fmt4(long.fraction_improved_or_equal),
            fmt4(short.fraction_improved_or_equal),
            fmt4(long.mean_ratio),
            fmt4(short.mean_ratio),
            fmt(hawk.steals),
        ]);
    }
    eprintln!("fig05: done");
}
