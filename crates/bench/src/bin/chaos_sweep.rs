//! Robustness sweep: the hardened virtual prototype under increasing
//! network hostility.
//!
//! Sweeps message drop rate × scripted partition length on the §4.4
//! conformance cell (Hawk at ~90 % offered load, 100 nodes) and reports,
//! per fault cell: job completion (the hardened protocol must land
//! **every** job), the p90 short/long runtimes and their degradation
//! over the fault-free baseline, and the fault/recovery counters
//! (drops, dups, retries, timeouts fired, tasks relaunched). Every cell
//! is a seeded virtual-clock run, so each row replays byte-identically.
//!
//! `--smoke` runs one moderate cell (1 % drops + one partition window)
//! twice and asserts 100 % completion and a deterministic digest across
//! the two runs — the CI leg.

use std::sync::Arc;
use std::time::Instant;

use hawk_bench::{fmt4, parse_args_with, tsv_header, tsv_row, RunMode};
use hawk_core::scheduler::Hawk;
use hawk_core::{Scheduler, SimConfig};
use hawk_proto::{run_prototype, FaultSpec, ProtoBackend, ProtoConfig, ProtoReport};
use hawk_simcore::SimTime;
use hawk_workload::scenario::{ScenarioSpec, TraceFamily};
use hawk_workload::{JobClass, Trace};

/// The conformance cell: ~90 % offered load on 100 nodes.
const NODES: usize = 100;
const SCALE: u64 = 150;

/// Ten workers with no co-hosted scheduler daemons (the central daemon
/// lives on host 0, distributed scheduler `s` on host `s % workers`).
fn island() -> Vec<u32> {
    (40..50).collect()
}

/// FNV-1a over the per-job runtimes and every counter — fault counters
/// included, so two "identical" runs that drop different messages are
/// *not* considered identical.
fn digest(report: &ProtoReport) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let eat = |h: u64, x: u64| (h ^ x).wrapping_mul(PRIME);
    for j in &report.jobs {
        h = eat(h, j.runtime.as_micros() as u64);
    }
    for x in [
        report.steals,
        report.steal_attempts,
        report.migrations,
        report.messages,
        report.drops,
        report.dups,
        report.retries,
        report.timeouts_fired,
        report.relaunched,
    ] {
        h = eat(h, x);
    }
    h
}

fn run(trace: &Trace, cfg: &ProtoConfig) -> (ProtoReport, f64) {
    let start = Instant::now();
    let report = run_prototype(trace, Arc::new(Hawk::new(0.17)) as Arc<dyn Scheduler>, cfg);
    (report, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let (opts, flags) = parse_args_with(
        "chaos_sweep",
        "drop-rate x partition-length sweep of the hardened virtual prototype",
        &[(
            "--smoke",
            "one moderate fault cell run twice: assert 100% completion and \
             a deterministic digest",
        )],
    );
    let smoke = flags.iter().any(|f| f == "--smoke");
    let jobs = opts.jobs.unwrap_or(match opts.mode {
        RunMode::Quick => 200,
        RunMode::Paper => 1_000,
        RunMode::FullTrace => 5_000,
    });
    let scenario = ScenarioSpec::new(TraceFamily::Google { scale: SCALE }, jobs);
    eprintln!(
        "chaos_sweep: {jobs} jobs on {NODES} nodes ({})",
        scenario.label()
    );
    let trace = Arc::new(scenario.trace(opts.seed));
    let cfg_for = |faults: FaultSpec| {
        ProtoBackend::deterministic()
            .faults(faults)
            .config_for(&SimConfig {
                nodes: NODES,
                seed: opts.seed,
                ..SimConfig::default()
            })
    };

    if smoke {
        // The CI cell: 1 % drops, duplicates, reorder jitter, plus one
        // 1000 s partition window islanding ten workers.
        let faults = FaultSpec::chaos().partition(
            SimTime::from_secs(100),
            SimTime::from_secs(1_100),
            island(),
        );
        let cfg = cfg_for(faults);
        let (a, wall_a) = run(&trace, &cfg);
        let (b, wall_b) = run(&trace, &cfg);
        assert_eq!(
            a.jobs.len(),
            trace.len(),
            "hardened prototype lost jobs under the smoke fault cell"
        );
        assert!(a.drops > 0, "the smoke cell dropped nothing");
        assert_eq!(
            digest(&a),
            digest(&b),
            "two seeded faulty runs diverged (smoke digest mismatch)"
        );
        tsv_header(&[
            "completed",
            "drops",
            "dups",
            "retries",
            "timeouts",
            "relaunched",
            "digest",
            "wall_ms",
        ]);
        tsv_row(&[
            format!("{}/{}", a.jobs.len(), trace.len()),
            a.drops.to_string(),
            a.dups.to_string(),
            a.retries.to_string(),
            a.timeouts_fired.to_string(),
            a.relaunched.to_string(),
            format!("{:016x}", digest(&a)),
            format!("{:.1}+{:.1}", wall_a, wall_b),
        ]);
        eprintln!("chaos_sweep --smoke: all jobs completed, digest deterministic");
        return;
    }

    // The fault-free baseline: FaultSpec::none(), the exact historical
    // router path (not even hardened timers).
    let (baseline, _) = run(&trace, &cfg_for(FaultSpec::none()));
    let base_p90 = |class: JobClass| baseline.runtime_percentile(class, 90.0);

    tsv_header(&[
        "drop",
        "partition_s",
        "completed",
        "p90_short",
        "p90_long",
        "p90_short_x",
        "p90_long_x",
        "drops",
        "dups",
        "retries",
        "timeouts",
        "relaunched",
        "wall_ms",
    ]);
    let partitions: [(&str, Option<u64>); 3] =
        [("0", None), ("300", Some(300)), ("3000", Some(3000))];
    for &drop in &[0.0, 0.01, 0.02, 0.05] {
        for &(label, window) in &partitions {
            let mut faults = FaultSpec::chaos().drop_probability(drop);
            if let Some(secs) = window {
                faults = faults.partition(
                    SimTime::from_secs(100),
                    SimTime::from_secs(100 + secs),
                    island(),
                );
            }
            let (report, wall) = run(&trace, &cfg_for(faults));
            assert_eq!(
                report.jobs.len(),
                trace.len(),
                "hardened prototype lost jobs at drop {drop}, partition {label}s"
            );
            let p90 = |class: JobClass| report.runtime_percentile(class, 90.0);
            let ratio = |class: JobClass| match (p90(class), base_p90(class)) {
                (Some(f), Some(b)) if b > 0.0 => Some(f / b),
                _ => None,
            };
            tsv_row(&[
                format!("{drop}"),
                label.to_string(),
                format!("{}/{}", report.jobs.len(), trace.len()),
                fmt4(p90(JobClass::Short)),
                fmt4(p90(JobClass::Long)),
                fmt4(ratio(JobClass::Short)),
                fmt4(ratio(JobClass::Long)),
                report.drops.to_string(),
                report.dups.to_string(),
                report.retries.to_string(),
                report.timeouts_fired.to_string(),
                report.relaunched.to_string(),
                format!("{wall:.1}"),
            ]);
        }
    }
    eprintln!("chaos_sweep: done (p90_*_x = degradation over the fault-free baseline)");
}
