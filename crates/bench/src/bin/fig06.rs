//! Figure 6: Hawk normalized to Sparrow on the Cloudera (6a), Facebook
//! (6b) and Yahoo (6c) traces — 90th percentile runtimes for long and
//! short jobs, plus Sparrow's median utilization, sweeping cluster size.
//!
//! Paper sweeps: Cloudera 15k–50k nodes (9 % short partition), Facebook
//! 70k–170k (2 %), Yahoo 5k–19k (2 %). The paper's headline: Hawk's
//! benefits hold across all traces, with *larger* short-job improvements
//! than on Google because the short partitions are less utilized, leaving
//! more stealing opportunities.

use hawk_bench::{base, fmt, fmt4, parse_args, sweep_pair, tsv_header, tsv_row, RunMode};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::classify::Cutoff;
use hawk_workload::kmeans::KmeansTraceConfig;
use hawk_workload::JobClass;
use std::sync::Arc;

fn sweep(base: &[usize], scale: u64) -> Vec<usize> {
    base.iter().map(|&n| n / scale as usize).collect()
}

fn main() {
    let opts = parse_args("fig06", "Hawk vs Sparrow on derived traces (Figure 6)");
    let scale = opts.cluster_scale();

    // (config, paper cluster sweep, default job count)
    let cases: Vec<(KmeansTraceConfig, Vec<usize>, usize)> = vec![
        (
            KmeansTraceConfig::cloudera_c(0),
            vec![
                15_000, 20_000, 25_000, 30_000, 35_000, 40_000, 45_000, 50_000,
            ],
            21_030,
        ),
        (
            KmeansTraceConfig::facebook(0),
            vec![70_000, 90_000, 110_000, 130_000, 150_000, 170_000],
            60_000,
        ),
        (
            KmeansTraceConfig::yahoo(0),
            vec![5_000, 7_000, 9_000, 11_000, 13_000, 15_000, 17_000, 19_000],
            24_262,
        ),
    ];

    tsv_header(&[
        "trace",
        "nodes",
        "p90_long",
        "p90_short",
        "p50_long",
        "p50_short",
        "sparrow_median_util",
    ]);

    for (mut cfg, paper_sweep, default_jobs) in cases {
        cfg.jobs = opts.jobs.unwrap_or(match opts.mode {
            RunMode::Quick => default_jobs.min(6_000),
            RunMode::Paper => default_jobs,
            RunMode::FullTrace => cfg.paper_job_count().unwrap_or(default_jobs),
        });
        if scale != 1 {
            // Preserve offered load on scaled-down clusters.
            cfg.mean_interarrival = cfg.mean_interarrival * scale;
        }
        eprintln!("fig06: generating {} ({} jobs)...", cfg.name, cfg.jobs);
        let trace = Arc::new(cfg.generate(opts.seed));
        let env = base(&opts).cutoff(Cutoff::from_secs(cfg.default_cutoff_secs));
        let nodes_sweep = sweep(&paper_sweep, scale);
        eprintln!(
            "fig06: {}: running {} cells in parallel...",
            cfg.name,
            2 * nodes_sweep.len()
        );
        let rows = sweep_pair(
            &trace,
            Hawk::new(cfg.short_partition_fraction),
            Sparrow::new(),
            &nodes_sweep,
            &env,
        );
        for (nodes, hawk, sparrow) in rows {
            let long = compare(&hawk, &sparrow, JobClass::Long);
            let short = compare(&hawk, &sparrow, JobClass::Short);
            tsv_row(&[
                fmt(cfg.name),
                fmt(nodes),
                fmt4(long.p90_ratio),
                fmt4(short.p90_ratio),
                fmt4(long.p50_ratio),
                fmt4(short.p50_ratio),
                fmt4(sparrow.median_utilization),
            ]);
        }
    }
    eprintln!("fig06: done");
}
