//! Figures 10 and 11: Hawk normalized to a split cluster, Google trace,
//! sweeping cluster size — short jobs (Fig 10) and long jobs (Fig 11).
//!
//! The split cluster reserves 17 % for short jobs and 83 % exclusively for
//! long jobs (no shared general partition, no stealing). Paper findings:
//! the split cluster is slightly better for long jobs (shorts never take
//! its space) but dramatically worse for short jobs at intermediate sizes,
//! where shorts cannot overflow into the rest of the cluster.

use hawk_bench::{
    base, fmt, fmt4, google_setup, parse_args, ratio_quad, sweep_pair, tsv_header, tsv_row,
};
use hawk_core::scheduler::{Hawk, SplitCluster};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

fn main() {
    let opts = parse_args("fig10_11", "Hawk vs split cluster (Figures 10 and 11)");
    let (trace, sweep) = google_setup(&opts);
    let base = base(&opts);

    tsv_header(&["nodes", "p50_short", "p90_short", "p50_long", "p90_long"]);
    eprintln!("fig10_11: running {} cells in parallel...", 2 * sweep.len());
    let rows = sweep_pair(
        &trace,
        Hawk::new(GOOGLE_SHORT_PARTITION),
        SplitCluster::new(GOOGLE_SHORT_PARTITION),
        &sweep,
        &base,
    );
    for (nodes, hawk, split) in rows {
        let (p50l, p90l, p50s, p90s) = ratio_quad(&hawk, &split);
        tsv_row(&[fmt(nodes), fmt4(p50s), fmt4(p90s), fmt4(p50l), fmt4(p90l)]);
    }
    eprintln!("fig10_11: done (Fig 10 = short columns, Fig 11 = long columns)");
}
