//! Topology-latency ablation: the paper's §4.8 network-latency study on a
//! congesting fat tree.
//!
//! The paper varies the flat message delay and observes that Hawk's
//! short-job tail degrades gracefully while remaining ahead of Sparrow
//! (§4.8, "impact of network latency"). This bench re-runs that ablation
//! on the `hawk-net` contended fat tree instead of the flat model: the
//! cluster keeps its default rack/pod geometry and per-link transmission
//! queues, and the sweep grows the **cross-pod propagation cost** — the
//! long-haul hops a placement-blind prober cannot avoid — from the flat
//! 0.5 ms up to the same latency : task-duration ratio as the paper's
//! worst studied point (see `CROSS_POD_US`).
//!
//! Reported per sweep point, for Hawk and Sparrow on the same trace:
//! short-job p50/p90, the Hawk/Sparrow p90 ratio, Hawk's rack-local steal
//! hit rate, and the per-link-class message counts from
//! `MetricsReport::network` (how much of the traffic actually crossed
//! pods).
//!
//! Usage: `latency_topology [--smoke | --quick | --full-trace] [--jobs N]
//! [--seed S]` — `--smoke` is the CI spelling of `--quick`.

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, run_cells, tsv_header, tsv_row,
    HarnessOpts, RunMode,
};
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_core::{FatTreeParams, TopologySpec};
use hawk_simcore::SimDuration;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

/// Cross-pod propagation costs to sweep, in microseconds. The first point
/// matches the paper's flat 0.5 ms delay. The synthetic Google-like trace
/// has ~150 s median short tasks (real deployments: sub-second), so the
/// tail scales the delay proportionally — what the ablation studies is the
/// latency : task-duration ratio, and 5 s of cross-pod cost against 150 s
/// tasks corresponds to ~10 ms against sub-second tasks, the worst case
/// the paper considers.
const CROSS_POD_US: [u64; 5] = [500, 100_000, 1_000_000, 2_500_000, 5_000_000];

fn parse() -> HarnessOpts {
    let mut opts = HarnessOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `--smoke` is what CI passes; keep the shared `--quick` too.
            "--smoke" | "--quick" => opts.mode = RunMode::Quick,
            "--full-trace" | "--paper-scale" => opts.mode = RunMode::FullTrace,
            "--jobs" => opts.jobs = args.next().and_then(|v| v.parse().ok()).or_else(|| usage()),
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => usage(),
            },
            _ => usage(),
        }
    }
    opts
}

fn usage() -> ! {
    eprintln!("latency_topology: §4.8 network-latency ablation on a contended fat tree");
    eprintln!("usage: latency_topology [--smoke | --quick | --full-trace] [--jobs N] [--seed S]");
    std::process::exit(2);
}

fn main() {
    let opts = parse();
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    let mut cells = Vec::new();
    for us in CROSS_POD_US {
        let params = FatTreeParams::default().cross_pod(SimDuration::from_micros(us));
        let env = base(&opts)
            .nodes(nodes)
            .trace(&trace)
            .topology(TopologySpec::FatTreeContended(params));
        cells.push(
            env.clone()
                .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
                .build(),
        );
        cells.push(env.scheduler(Sparrow::new()).build());
    }
    eprintln!(
        "latency_topology: running {} contended-fat-tree cells at {nodes} nodes in parallel...",
        cells.len()
    );
    let results = run_cells(cells);

    tsv_header(&[
        "cross_pod_ms",
        "hawk_p50_short_s",
        "hawk_p90_short_s",
        "sparrow_p50_short_s",
        "sparrow_p90_short_s",
        "hawk_over_sparrow_p90_short",
        "hawk_rack_local_steal_rate",
        "hawk_rack_local_msgs",
        "hawk_cross_rack_msgs",
        "hawk_cross_pod_msgs",
    ]);
    assert_eq!(results.cells.len(), 2 * CROSS_POD_US.len());
    let mut hawk_p90s = Vec::new();
    for (i, us) in CROSS_POD_US.iter().enumerate() {
        let hawk = &results.cells[2 * i].report;
        let sparrow = &results.cells[2 * i + 1].report;
        // Guard the index pairing against any future cell-order change.
        assert_eq!(hawk.scheduler, "hawk");
        assert_eq!(sparrow.scheduler, "sparrow");
        let hawk_p90 = hawk.runtime_percentile(JobClass::Short, 90.0);
        let sparrow_p90 = sparrow.runtime_percentile(JobClass::Short, 90.0);
        if let Some(p) = hawk_p90 {
            hawk_p90s.push(p);
        }
        let ratio = match (hawk_p90, sparrow_p90) {
            (Some(h), Some(s)) if s > 0.0 => Some(h / s),
            _ => None,
        };
        tsv_row(&[
            fmt(*us as f64 / 1_000.0),
            fmt4(hawk.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(hawk_p90),
            fmt4(sparrow.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(sparrow_p90),
            fmt4(ratio),
            fmt4(hawk.network.rack_local_steal_rate()),
            fmt(hawk.network.rack_local_msgs),
            fmt(hawk.network.cross_rack_msgs),
            fmt(hawk.network.cross_pod_msgs),
        ]);
    }

    // Commentary: the §4.8 claim is graceful degradation, not immunity —
    // the tail should grow with the cross-pod cost without exploding past
    // the worst-case sum of the added hops.
    if let (Some(first), Some(last)) = (hawk_p90s.first(), hawk_p90s.last()) {
        eprintln!(
            "latency_topology: Hawk short p90 {first:.2}s at {}ms cross-pod → {last:.2}s at {}ms",
            CROSS_POD_US[0] as f64 / 1_000.0,
            CROSS_POD_US[CROSS_POD_US.len() - 1] as f64 / 1_000.0,
        );
    }

    // Sharded epoch observability: the baseline sweep point once more
    // through the rack-aligned sharded driver with rack-first stealing —
    // the configuration whose lookahead matrix is derived from this very
    // topology. The counters are reporting-only (never digested).
    let sharded = base(&opts)
        .nodes(nodes)
        .trace(&trace)
        .topology(TopologySpec::FatTreeContended(
            FatTreeParams::default().cross_pod(SimDuration::from_micros(CROSS_POD_US[0])),
        ))
        .shards(4)
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).rack_first_stealing())
        .build()
        .run();
    let stats = sharded
        .sharded
        .expect("the sharded driver must report epoch stats");
    eprintln!(
        "latency_topology: rack-aligned 4-shard cell: {} epochs, {} merge envelopes, \
         {} us avg epoch span, rack-local steal rate {}",
        stats.epochs,
        stats.merge_envelopes,
        stats.avg_epoch_span_micros,
        sharded
            .network
            .rack_local_steal_rate()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".to_string()),
    );
    eprintln!("latency_topology: done (absolute runtimes in seconds)");
}
