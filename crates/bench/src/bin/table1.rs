//! Table 1: long jobs form a small fraction of all jobs but consume the
//! bulk of the resources.
//!
//! Columns: workload, % long jobs, % task-seconds from long jobs, with the
//! paper's published values alongside. The Google trace additionally
//! reports the §2.1 statistics: long jobs' share of tasks (paper: 28 %)
//! and the per-job mean-task-duration ratio (paper: 7.34×).

use hawk_bench::{fmt, fmt4, parse_args, tsv_header, tsv_row};
use hawk_workload::classify::Cutoff;
use hawk_workload::google::GoogleTraceConfig;
use hawk_workload::kmeans::KmeansTraceConfig;
use hawk_workload::stats::WorkloadStats;

fn main() {
    let opts = parse_args("table1", "workload heterogeneity statistics (Table 1)");
    let jobs = opts.jobs.unwrap_or(60_000);

    tsv_header(&[
        "workload",
        "long_jobs_pct",
        "paper_long_jobs_pct",
        "task_seconds_pct",
        "paper_task_seconds_pct",
        "long_task_share_pct",
        "mean_duration_ratio",
    ]);

    // Google: classified by the 1129 s cutoff on mean task duration (§2.1).
    let google = GoogleTraceConfig::with_scale(1, jobs).generate(opts.seed);
    let gs = WorkloadStats::by_cutoff(&google, Cutoff::GOOGLE_DEFAULT);
    tsv_row(&[
        fmt("google-2011"),
        fmt4(gs.long_job_fraction * 100.0),
        fmt("10.00"),
        fmt4(gs.long_task_seconds_share * 100.0),
        fmt("83.65"),
        fmt4(gs.long_task_share * 100.0),
        fmt4(gs.mean_duration_ratio),
    ]);

    // Derived workloads: classified by source cluster (§4.1).
    let derived: [(KmeansTraceConfig, f64, f64); 5] = [
        (KmeansTraceConfig::cloudera_b(jobs), 7.67, 99.65),
        (KmeansTraceConfig::cloudera_c(jobs), 5.02, 92.79),
        (KmeansTraceConfig::cloudera_d(jobs), 4.12, 89.72),
        (KmeansTraceConfig::facebook(jobs), 2.01, 99.79),
        (KmeansTraceConfig::yahoo(jobs), 9.41, 98.31),
    ];
    for (cfg, paper_long, paper_ts) in derived {
        let trace = cfg.generate(opts.seed);
        let s = WorkloadStats::by_provenance(&trace, Cutoff::from_secs(cfg.default_cutoff_secs));
        tsv_row(&[
            fmt(cfg.name),
            fmt4(s.long_job_fraction * 100.0),
            fmt4(paper_long),
            fmt4(s.long_task_seconds_share * 100.0),
            fmt4(paper_ts),
            fmt4(s.long_task_share * 100.0),
            fmt4(s.mean_duration_ratio),
        ]);
    }
    eprintln!("table1: done ({jobs} jobs per workload)");
}
