//! Wall-clock performance baseline for the simulation engine.
//!
//! Unlike the figure binaries (which reproduce the paper's *results*), this
//! binary measures how fast the simulator itself runs: it times
//! representative end-to-end cells — the 90 %-load Google-like workload at
//! 1k / 5k / 15k / 50k nodes under Hawk and Sparrow, plus a churning
//! heterogeneous cell and a contended-fat-tree topology cell at 5k — and
//! writes `BENCH_perf.json` at the repository root so the engine's
//! throughput trajectory is tracked across PRs. The 50k-node pair is the paper's
//! largest Figure 5 cluster: the slab-backed queue rework exists precisely
//! so per-event throughput stays flat out to that scale.
//!
//! Each cell keeps the offered load constant (~90 % at every cluster size)
//! by scaling the arrival rate with the node count, so the cells differ in
//! *state size* (servers, pending events), not in load regime.
//!
//! The `PRE_REWORK_WALL_S` constants record the wall-clock time of the
//! 30,000-job cells measured on the binary-heap engine and linear-scan
//! cluster immediately before the indexed-engine rework (same machine,
//! same seed); `speedup_vs_pre_rework` in the JSON is current-run speedup
//! against that frozen baseline.
//!
//! Beyond tracking, the binary *enforces* a floor: every cell has a frozen
//! per-cell `floor_events_per_sec` (the throughput measured when the cell
//! was introduced, same machine class that produces `BENCH_perf.json`),
//! and a comparable run (non-smoke, default jobs, default seed) exits
//! nonzero if any cell drops below [`FLOOR_FRACTION`] of its floor — a
//! perf regression fails the bench the way a broken digest fails the
//! golden tests. Smoke and custom-parameter runs only report.
//!
//! The `hawk-sharded` cells run the same workload through the sharded
//! driver (`shards = 4`) at 15k / 50k / 100k nodes — the 100k cell is the
//! headline: twice the paper's largest cluster, beyond what the
//! single-stream driver is tracked at. Sharded cells are timed at both
//! `workers = 1` and `workers = 4` (the reports are byte-identical; only
//! the wall clock may differ), and the `hawk-sharded-rack` cell runs the
//! 15k workload rack-aligned on the default fat tree with rack-first
//! stealing — the configuration the per-pair lookahead matrix exists
//! for. Sharded rows also carry the epoch/merge observability counters
//! (`epochs`, `merge_envelopes`, `avg_epoch_span_micros`, rack-local
//! steal rate); these are excluded from golden digests.
//!
//! Every row carries a `streaming_max_rel_err` column: the bounded-memory
//! streaming percentiles cross-checked against the exact sorted reads on
//! the same report, asserted under the sink's documented ε-rank budget
//! (`StreamingQuantiles::RELATIVE_ERROR`). The `hawk-live` row runs the
//! 5k cell with 60 s live windows and surfaces the windowed serving
//! metrics; live sampling adds events, so that row has no frozen floor.
//!
//! Usage: `perf_baseline [--smoke] [--jobs N] [--seed S] [--out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use hawk_core::scheduler::{Hawk, Scheduler, Sparrow};
use hawk_core::{Experiment, FatTreeParams, MetricsReport, TopologySpec};
use hawk_simcore::stats::StreamingQuantiles;
use hawk_simcore::{SimDuration, SimTime};
use hawk_workload::google::{GoogleTraceConfig, GOOGLE_SHORT_PARTITION};
use hawk_workload::scenario::{DynamicsScript, SpeedSpec};
use hawk_workload::{JobClass, Trace};

/// Default job count for the timed cells.
const DEFAULT_JOBS: usize = 30_000;

/// Job count in `--smoke` mode (CI): exercises every cell in seconds.
const SMOKE_JOBS: usize = 2_000;

/// The cluster sizes timed, largest last (the headline cell). 50,000 is
/// the top of the paper's Figure 5 sweep.
const NODE_CELLS: [usize; 4] = [1_000, 5_000, 15_000, 50_000];

/// The cluster sizes timed through the sharded driver. 100,000 is twice
/// the paper's largest cluster — the scale the sharded driver exists for.
const SHARDED_NODE_CELLS: [usize; 3] = [15_000, 50_000, 100_000];

/// Shard count of the `hawk-sharded` cells (worker threads are capped by
/// the machine's parallelism; the results are worker-count-invariant).
const SHARDED_SHARDS: usize = 4;

/// Worker-thread counts each sharded cell is timed at. The reports are
/// byte-identical across the axis (worker-count invariance is a pinned
/// contract); only the wall clock may move.
const SHARDED_WORKER_CELLS: [usize; 2] = [1, 4];

/// Cluster size of the rack-aligned sharded fat-tree cell.
const SHARDED_RACK_NODES: usize = 15_000;

/// Cluster size of the scenario-engine churn cell.
const CHURN_NODES: usize = 5_000;

/// Cluster size of the contended-fat-tree topology cell.
const FAT_TREE_NODES: usize = 5_000;

/// The churn cell's scenario: rolling failures (one of 50 spread-out
/// servers down for 30 s every 60 s, from t = 500 s, effectively forever)
/// on a two-tier cluster with 20 % of servers at half speed. Exercises
/// the whole dynamics path — queue drains, task/probe migration, central
/// fail/revive, live-map rebuilds, speed-scaled slots — under load.
fn churn_dynamics() -> DynamicsScript {
    let servers: Vec<u32> = (0..50).map(|i| i * 97).collect();
    DynamicsScript::rolling(
        &servers,
        SimTime::from_secs(500),
        SimDuration::from_secs(60),
        SimDuration::from_secs(30),
        5_000,
    )
}

fn churn_speeds() -> SpeedSpec {
    SpeedSpec::TwoTier {
        slow_fraction: 0.2,
        slow_speed: 0.5,
    }
}

/// The arrival-rate anchor: `with_scale(1)` calibrates ~90 % load at
/// 15,000 nodes, so `scale = ANCHOR_NODES / nodes` holds load constant.
const ANCHOR_NODES: u64 = 15_000;

/// The trace for one cell, holding offered load at ~90 % for any cluster
/// size. Sizes that divide the anchor go through `with_scale` and produce
/// byte-identical traces to earlier trajectory entries; larger cells
/// (50k) scale the mean inter-arrival directly by `anchor / nodes`.
fn trace_for(nodes: usize, jobs: usize, seed: u64) -> Trace {
    if nodes as u64 <= ANCHOR_NODES && ANCHOR_NODES.is_multiple_of(nodes as u64) {
        return GoogleTraceConfig::with_scale(ANCHOR_NODES / nodes as u64, jobs).generate(seed);
    }
    let anchor = GoogleTraceConfig::with_scale(1, jobs);
    let ratio = ANCHOR_NODES as f64 / nodes as f64;
    GoogleTraceConfig {
        mean_interarrival: hawk_simcore::SimDuration::from_secs_f64(
            anchor.mean_interarrival.as_secs_f64() * ratio,
        ),
        ..anchor
    }
    .generate(seed)
}

/// Pre-rework wall-clock seconds per `(scheduler, nodes)` cell at the
/// default 30,000 jobs and default seed, measured on the binary-heap
/// engine (commit d65d7bf) on the machine that produced `BENCH_perf.json`.
///
/// Methodology: a binary built from the pre-rework commit and the current
/// binary were run alternately (three interleaved rounds, best-of-2 per
/// cell per round) so both sides saw the same machine state; the value
/// recorded is the minimum across rounds, the same statistic the current
/// cells report. `None` where no pre-rework measurement was taken.
fn pre_rework_wall_s(scheduler: &str, nodes: usize) -> Option<f64> {
    match (scheduler, nodes) {
        ("hawk", 1_000) => Some(0.864),
        ("hawk", 5_000) => Some(0.958),
        ("hawk", 15_000) => Some(1.090),
        ("sparrow", 1_000) => Some(0.713),
        ("sparrow", 5_000) => Some(0.777),
        ("sparrow", 15_000) => Some(0.889),
        _ => None,
    }
}

/// A comparable run fails if any cell's throughput drops below this
/// fraction of its frozen floor. 0.75 absorbs machine noise (the floors
/// were single measurements, not distributions) while still catching any
/// real regression — the engine reworks this guards were each >1.4x.
const FLOOR_FRACTION: f64 = 0.75;

/// Frozen events-per-second floors per `(scheduler, nodes)` cell at the
/// default 30,000 jobs and default seed: the *minimum* throughput across
/// repeated full runs on the single-core container that froze them (the
/// machine class that produces `BENCH_perf.json`), rounded down to two
/// significant digits. The min-of-observed statistic plus the
/// `FLOOR_FRACTION` cushion absorbs that container's measured run-to-run
/// noise (up to ~35 % on the fastest cells) while still catching the
/// multi-x regressions the floors exist for. A comparable run must stay
/// above `FLOOR_FRACTION x` these (see [`check_floors`]); re-freeze
/// deliberately — with a sentence in the PR about what changed — never to
/// make a red run green.
/// Sharded floors are keyed by worker count too (the cells are timed at
/// `workers ∈ {1, 4}`); the sharded values were re-frozen by the
/// work-claiming epoch-scheduler PR, which replaced the per-epoch
/// barrier round and roughly doubled sharded throughput.
fn floor_events_per_sec(scheduler: &str, nodes: usize, workers: usize) -> Option<f64> {
    match (scheduler, nodes, workers) {
        ("hawk", 1_000, _) => Some(4_100_000.0),
        ("hawk", 5_000, _) => Some(4_400_000.0),
        ("hawk", 15_000, _) => Some(3_500_000.0),
        // Re-frozen (was 3.9e6) by the work-claiming scheduler PR: the
        // 50k single-stream cell is the most memory-bound in the file
        // and showed a 2.06–3.67e6 swing across four interleaved full
        // runs on the BENCH container that day — the high end sits at
        // the old floor, so the fast path is intact and the old value
        // flakes on machine state, which a floor must never do.
        ("hawk", 50_000, _) => Some(2_000_000.0),
        ("sparrow", 1_000, _) => Some(7_700_000.0),
        ("sparrow", 5_000, _) => Some(5_300_000.0),
        ("sparrow", 15_000, _) => Some(5_000_000.0),
        ("sparrow", 50_000, _) => Some(4_200_000.0),
        ("hawk-churn", 5_000, _) => Some(3_800_000.0),
        ("hawk-fat-tree", 5_000, _) => Some(3_700_000.0),
        ("hawk-sharded", 15_000, _) => Some(1_700_000.0),
        ("hawk-sharded", 50_000, _) => Some(1_500_000.0),
        ("hawk-sharded", 100_000, _) => Some(1_600_000.0),
        ("hawk-sharded-rack", 15_000, _) => Some(2_200_000.0),
        _ => None,
    }
}

struct Opts {
    smoke: bool,
    jobs: Option<usize>,
    seed: u64,
    repeats: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        jobs: None,
        seed: hawk_core::DEFAULT_SEED,
        repeats: 2,
        out: "BENCH_perf.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--jobs" => opts.jobs = Some(expect_value(args.next())),
            "--seed" => opts.seed = expect_value(args.next()),
            "--repeats" => opts.repeats = expect_value::<usize>(args.next()).max(1),
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    opts
}

fn expect_value<T: std::str::FromStr>(arg: Option<String>) -> T {
    arg.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

fn usage() -> ! {
    eprintln!("perf_baseline: time representative end-to-end cells and write BENCH_perf.json");
    eprintln!("usage: perf_baseline [--smoke] [--jobs N] [--seed S] [--repeats R] [--out PATH]");
    std::process::exit(2);
}

/// Cross-checks the bounded-memory streaming percentiles against the
/// exact sorted-runtime reads on one cell's report, returning the
/// maximum relative error across both classes at p50/p90/p99.
///
/// Every bench cell runs admission-free, so the exact and streaming
/// populations are identical and the sink's documented ε-rank bound
/// ([`StreamingQuantiles::RELATIVE_ERROR`]) must hold — a violation
/// aborts the bench the way a broken digest fails the golden tests.
/// Sharded cells read merged shard-local sinks, so the column also
/// guards merge transparency at scale.
fn streaming_max_rel_err(name: &str, report: &MetricsReport) -> f64 {
    let mut max_rel = 0.0f64;
    for (class, summary) in [
        (JobClass::Short, &report.streaming.short),
        (JobClass::Long, &report.streaming.long),
    ] {
        for (p, streamed) in [
            (50.0, summary.p50),
            (90.0, summary.p90),
            (99.0, summary.p99),
        ] {
            let exact = report.runtime_percentile(class, p);
            let (Some(exact), Some(streamed)) = (exact, streamed) else {
                continue;
            };
            let rel = (streamed - exact).abs() / exact.abs().max(1e-12);
            assert!(
                rel <= StreamingQuantiles::RELATIVE_ERROR + 1e-9,
                "{name}: streaming {class:?} p{p} = {streamed:.6}s drifted \
                 {rel:.2e} from the exact {exact:.6}s (budget {:.2e})",
                StreamingQuantiles::RELATIVE_ERROR
            );
            max_rel = max_rel.max(rel);
        }
    }
    max_rel
}

/// One timed cell result.
struct CellTiming {
    scheduler: String,
    nodes: usize,
    jobs: usize,
    shards: usize,
    workers: usize,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    steals: u64,
    speedup_vs_pre_rework: Option<f64>,
    floor: Option<f64>,
    vs_floor: Option<f64>,
    /// Epoch/merge observability for sharded cells (`None` single-stream).
    sharded: Option<hawk_core::ShardedStats>,
    /// Fraction of steal transfers that stayed rack-local, where the
    /// topology classifies racks and any transfer happened.
    rack_local_steal_rate: Option<f64>,
    /// Max relative error of the streaming percentiles against the exact
    /// sorted reads (see [`streaming_max_rel_err`]); asserted under the
    /// sink's documented budget before the row is recorded.
    streaming_max_rel_err: f64,
}

/// Times one cell `repeats` times and keeps the fastest run (standard
/// minimum-of-N benchmarking: the min is the least noise-contaminated
/// estimate of the engine's cost; the runs are bit-identical anyway).
fn time_cell(
    trace: &Arc<Trace>,
    scheduler: Arc<dyn Scheduler>,
    nodes: usize,
    repeats: usize,
) -> (f64, MetricsReport) {
    time_cell_with(
        trace,
        scheduler,
        nodes,
        repeats,
        1,
        1,
        DynamicsScript::none(),
        SpeedSpec::Uniform,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn time_cell_with(
    trace: &Arc<Trace>,
    scheduler: Arc<dyn Scheduler>,
    nodes: usize,
    repeats: usize,
    shards: usize,
    workers: usize,
    dynamics: DynamicsScript,
    speeds: SpeedSpec,
    topology: Option<TopologySpec>,
) -> (f64, MetricsReport) {
    let mut builder = Experiment::builder()
        .trace(trace)
        .scheduler_shared(scheduler)
        .nodes(nodes)
        .shards(shards)
        .dynamics(dynamics)
        .speeds(speeds);
    if let Some(spec) = topology {
        builder = builder.topology(spec);
    }
    let cell = builder.build();
    let mut best: Option<(f64, MetricsReport)> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let report = cell.run_with_workers(workers);
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| wall < *b) {
            best = Some((wall, report));
        }
    }
    best.expect("repeats >= 1")
}

/// Builds (and reports on stderr) one sharded cell row, including the
/// epoch/merge observability counters the sharded driver exposes.
fn sharded_cell(
    name: &str,
    nodes: usize,
    jobs: usize,
    workers: usize,
    wall_s: f64,
    report: MetricsReport,
) -> CellTiming {
    let events_per_sec = report.events as f64 / wall_s.max(1e-9);
    let streaming_drift = streaming_max_rel_err(name, &report);
    let stats = report
        .sharded
        .expect("sharded cell must report epoch stats");
    let rack_rate = report.network.rack_local_steal_rate();
    eprintln!(
        "  {name} x {nodes:>6} nodes ({SHARDED_SHARDS} shards, {workers} workers): \
         {wall_s:8.3} s  ({events_per_sec:.2e} events/s, {} steals, {} epochs, \
         {} merge envelopes, {} us avg epoch span{})",
        report.steals,
        stats.epochs,
        stats.merge_envelopes,
        stats.avg_epoch_span_micros,
        rack_rate
            .map(|r| format!(", {:.1}% rack-local steals", r * 100.0))
            .unwrap_or_default()
    );
    CellTiming {
        scheduler: name.to_string(),
        nodes,
        jobs,
        shards: SHARDED_SHARDS,
        workers,
        wall_s,
        events: report.events,
        events_per_sec,
        steals: report.steals,
        speedup_vs_pre_rework: None,
        floor: None,
        vs_floor: None,
        sharded: Some(stats),
        rack_local_steal_rate: rack_rate,
        streaming_max_rel_err: streaming_drift,
    }
}

fn main() {
    let opts = parse_args();
    let jobs = opts
        .jobs
        .unwrap_or(if opts.smoke { SMOKE_JOBS } else { DEFAULT_JOBS });
    let comparable = !opts.smoke && opts.jobs.is_none() && opts.seed == hawk_core::DEFAULT_SEED;

    eprintln!(
        "perf_baseline: {jobs} jobs, seed {:#x}, best of {} per cell, \
         cells {NODE_CELLS:?} x {{hawk, sparrow}} + hawk-churn x {CHURN_NODES} \
         + hawk-fat-tree x {FAT_TREE_NODES} \
         + hawk-sharded ({SHARDED_SHARDS} shards, workers {SHARDED_WORKER_CELLS:?}) \
         x {SHARDED_NODE_CELLS:?} + hawk-sharded-rack x {SHARDED_RACK_NODES} \
         + hawk-live x {CHURN_NODES}",
        opts.seed, opts.repeats
    );

    let mut cells: Vec<CellTiming> = Vec::new();
    for nodes in NODE_CELLS {
        // Hold offered load at ~90 % for every cluster size.
        let trace = Arc::new(trace_for(nodes, jobs, opts.seed));
        let schedulers: Vec<Arc<dyn Scheduler>> = vec![
            Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION)),
            Arc::new(Sparrow::new()),
        ];
        for scheduler in schedulers {
            let name = scheduler.name();
            let (wall_s, report) = time_cell(&trace, scheduler, nodes, opts.repeats);
            let events_per_sec = report.events as f64 / wall_s.max(1e-9);
            let streaming_drift = streaming_max_rel_err(&name, &report);
            let speedup = if comparable {
                pre_rework_wall_s(&name, nodes).map(|before| before / wall_s.max(1e-9))
            } else {
                None
            };
            eprintln!(
                "  {name:>8} x {nodes:>6} nodes: {wall_s:8.3} s  ({:.2e} events/s, \
                 streaming drift {streaming_drift:.1e}{})",
                events_per_sec,
                speedup
                    .map(|s| format!(", {s:.2}x vs pre-rework"))
                    .unwrap_or_default()
            );
            cells.push(CellTiming {
                scheduler: name,
                nodes,
                jobs,
                shards: 1,
                workers: 1,
                wall_s,
                events: report.events,
                events_per_sec,
                steals: report.steals,
                speedup_vs_pre_rework: speedup,
                floor: None,
                vs_floor: None,
                sharded: None,
                rack_local_steal_rate: None,
                streaming_max_rel_err: streaming_drift,
            });
        }
    }

    // The scenario-engine churn cell: same workload shape at 5k nodes,
    // with rolling failures and a heterogeneous speed profile. Tracks the
    // dynamics path's throughput next to the static cells.
    {
        let trace = Arc::new(trace_for(CHURN_NODES, jobs, opts.seed));
        let scheduler: Arc<dyn Scheduler> = Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION));
        let (wall_s, report) = time_cell_with(
            &trace,
            scheduler,
            CHURN_NODES,
            opts.repeats,
            1,
            1,
            churn_dynamics(),
            churn_speeds(),
            None,
        );
        let events_per_sec = report.events as f64 / wall_s.max(1e-9);
        let streaming_drift = streaming_max_rel_err("hawk-churn", &report);
        eprintln!(
            "  hawk-churn x {CHURN_NODES:>6} nodes: {wall_s:8.3} s  \
             ({events_per_sec:.2e} events/s, {} migrations, {} abandons)",
            report.migrations, report.abandons
        );
        cells.push(CellTiming {
            scheduler: "hawk-churn".to_string(),
            nodes: CHURN_NODES,
            jobs,
            shards: 1,
            workers: 1,
            wall_s,
            events: report.events,
            events_per_sec,
            steals: report.steals,
            speedup_vs_pre_rework: None,
            floor: None,
            vs_floor: None,
            sharded: None,
            rack_local_steal_rate: None,
            streaming_max_rel_err: streaming_drift,
        });
    }

    // The topology-engine cell: the same workload at 5k nodes on a
    // contended fat tree — every message charged through per-link FIFO
    // queues. Tracks the hawk-net contention path's cost next to the
    // flat-network static cells.
    {
        let trace = Arc::new(trace_for(FAT_TREE_NODES, jobs, opts.seed));
        let scheduler: Arc<dyn Scheduler> = Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION));
        let (wall_s, report) = time_cell_with(
            &trace,
            scheduler,
            FAT_TREE_NODES,
            opts.repeats,
            1,
            1,
            DynamicsScript::none(),
            SpeedSpec::Uniform,
            Some(TopologySpec::FatTreeContended(FatTreeParams::default())),
        );
        let events_per_sec = report.events as f64 / wall_s.max(1e-9);
        let streaming_drift = streaming_max_rel_err("hawk-fat-tree", &report);
        eprintln!(
            "  hawk-fat-tree x {FAT_TREE_NODES:>6} nodes: {wall_s:8.3} s  \
             ({events_per_sec:.2e} events/s, {} msgs classified)",
            report.network.total_msgs()
        );
        cells.push(CellTiming {
            scheduler: "hawk-fat-tree".to_string(),
            nodes: FAT_TREE_NODES,
            jobs,
            shards: 1,
            workers: 1,
            wall_s,
            events: report.events,
            events_per_sec,
            steals: report.steals,
            speedup_vs_pre_rework: None,
            floor: None,
            vs_floor: None,
            sharded: None,
            rack_local_steal_rate: None,
            streaming_max_rel_err: streaming_drift,
        });
    }

    // The sharded-driver cells: the same ~90 %-load Hawk workload pushed
    // through `ShardedDriver` with a fixed shard count, up to 100k nodes —
    // twice the paper's largest cluster, at both ends of the worker axis.
    // Tracks epoch-merge + wire-routing overhead and the scale the
    // single-stream driver is never timed at.
    for nodes in SHARDED_NODE_CELLS {
        let trace = Arc::new(trace_for(nodes, jobs, opts.seed));
        for workers in SHARDED_WORKER_CELLS {
            let scheduler: Arc<dyn Scheduler> = Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION));
            let (wall_s, report) = time_cell_with(
                &trace,
                scheduler,
                nodes,
                opts.repeats,
                SHARDED_SHARDS,
                workers,
                DynamicsScript::none(),
                SpeedSpec::Uniform,
                None,
            );
            cells.push(sharded_cell(
                "hawk-sharded",
                nodes,
                jobs,
                workers,
                wall_s,
                report,
            ));
        }
    }

    // The rack-aligned sharded cell: the 15k workload on the default
    // (uncontended) fat tree with rack-first stealing — whole pods per
    // shard, per-pair lookahead floors, locality-ordered victim lists.
    {
        let trace = Arc::new(trace_for(SHARDED_RACK_NODES, jobs, opts.seed));
        for workers in SHARDED_WORKER_CELLS {
            let scheduler: Arc<dyn Scheduler> =
                Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION).rack_first_stealing());
            let (wall_s, report) = time_cell_with(
                &trace,
                scheduler,
                SHARDED_RACK_NODES,
                opts.repeats,
                SHARDED_SHARDS,
                workers,
                DynamicsScript::none(),
                SpeedSpec::Uniform,
                Some(TopologySpec::FatTree(FatTreeParams::default())),
            );
            cells.push(sharded_cell(
                "hawk-sharded-rack",
                SHARDED_RACK_NODES,
                jobs,
                workers,
                wall_s,
                report,
            ));
        }
    }

    // The serving-mode cell: the 5k Hawk workload with 60 s live windows,
    // surfacing the windowed metrics (arrival rate, backlog, occupancy,
    // per-window streaming percentiles) next to the timings. Live
    // sampling adds periodic events, so the row carries no frozen floor —
    // it is reported and cross-checked, never floor-compared against the
    // classic cells.
    {
        let trace = Arc::new(trace_for(CHURN_NODES, jobs, opts.seed));
        let cell = Experiment::builder()
            .trace(&trace)
            .scheduler_shared(Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION)) as Arc<dyn Scheduler>)
            .nodes(CHURN_NODES)
            .live_window(SimDuration::from_secs(60))
            .build();
        let mut best: Option<(f64, MetricsReport)> = None;
        for _ in 0..opts.repeats {
            let start = Instant::now();
            let report = cell.run_with_workers(1);
            let wall = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                best = Some((wall, report));
            }
        }
        let (wall_s, report) = best.expect("repeats >= 1");
        let events_per_sec = report.events as f64 / wall_s.max(1e-9);
        let streaming_drift = streaming_max_rel_err("hawk-live", &report);
        let live = report.live.as_ref().expect("live_window was set");
        let last = live.windows.last().expect("the run closed no windows");
        eprintln!(
            "  hawk-live x {CHURN_NODES:>6} nodes: {wall_s:8.3} s  \
             ({events_per_sec:.2e} events/s; last 60 s window: \
             {:.1} arrivals/s, backlog {}, occupancy {:.2}, short p90 {})",
            live.arrival_rate(last),
            last.backlog,
            last.occupancy,
            last.short
                .p90
                .map(|p| format!("{p:.2}s"))
                .unwrap_or_else(|| "-".to_string()),
        );
        cells.push(CellTiming {
            scheduler: "hawk-live".to_string(),
            nodes: CHURN_NODES,
            jobs,
            shards: 1,
            workers: 1,
            wall_s,
            events: report.events,
            events_per_sec,
            steals: report.steals,
            speedup_vs_pre_rework: None,
            floor: None,
            vs_floor: None,
            sharded: None,
            rack_local_steal_rate: None,
            streaming_max_rel_err: streaming_drift,
        });
    }

    for c in &mut cells {
        c.floor = floor_events_per_sec(&c.scheduler, c.nodes, c.workers);
        c.vs_floor = c.floor.map(|f| c.events_per_sec / f);
    }

    let json = render_json(&opts, jobs, comparable, &cells);
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| {
        eprintln!("perf_baseline: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", opts.out);

    if !check_floors(comparable, &cells) {
        std::process::exit(1);
    }
}

/// Enforce the per-cell floors on comparable runs. Returns `false` (and
/// reports every offender) if any cell ran below `FLOOR_FRACTION` of its
/// frozen floor; smoke and custom-parameter runs always pass.
fn check_floors(comparable: bool, cells: &[CellTiming]) -> bool {
    if !comparable {
        return true;
    }
    let mut ok = true;
    for c in cells {
        if let (Some(floor), Some(ratio)) = (c.floor, c.vs_floor) {
            if ratio < FLOOR_FRACTION {
                ok = false;
                eprintln!(
                    "perf_baseline: FLOOR VIOLATION: {}/{} (workers {}) ran at {:.2e} \
                     events/s, below {FLOOR_FRACTION} x the frozen floor {floor:.2e} \
                     (ratio {ratio:.3})",
                    c.scheduler, c.nodes, c.workers, c.events_per_sec
                );
            }
        }
    }
    if !ok {
        eprintln!(
            "perf_baseline: throughput floor violated — investigate the regression (or \
             re-freeze the floors deliberately if the slowdown is an accepted trade)"
        );
    }
    ok
}

fn render_json(opts: &Opts, jobs: usize, comparable: bool, cells: &[CellTiming]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"perf_baseline\",\n");
    out.push_str("  \"schema_version\": 3,\n");
    let _ = writeln!(out, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"seed\": {},", opts.seed);
    let _ = writeln!(out, "  \"best_of\": {},", opts.repeats);
    let _ = writeln!(out, "  \"comparable_to_pre_rework\": {comparable},");
    out.push_str("  \"pre_rework\": {\n");
    out.push_str(
        "    \"engine\": \"BinaryHeap event queue, linear cluster scans (commit d65d7bf)\",\n",
    );
    out.push_str("    \"jobs\": 30000,\n    \"wall_s\": {\n");
    let mut first = true;
    for nodes in NODE_CELLS {
        for scheduler in ["hawk", "sparrow"] {
            if let Some(before) = pre_rework_wall_s(scheduler, nodes) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(out, "      \"{scheduler}/{nodes}\": {before}");
            }
        }
    }
    out.push_str("\n    }\n  },\n");
    let _ = writeln!(out, "  \"floor_fraction\": {FLOOR_FRACTION},");
    let _ = writeln!(
        out,
        "  \"floors_enforced\": {},",
        comparable && cells.iter().any(|c| c.floor.is_some())
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scheduler\": \"{}\", \"nodes\": {}, \"jobs\": {}, \"shards\": {}, \
             \"workers\": {}, \"wall_s\": {:.4}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"steals\": {}, \"speedup_vs_pre_rework\": {}, \"floor_events_per_sec\": {}, \
             \"vs_floor\": {}",
            c.scheduler,
            c.nodes,
            c.jobs,
            c.shards,
            c.workers,
            c.wall_s,
            c.events,
            c.events_per_sec,
            c.steals,
            c.speedup_vs_pre_rework
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "null".to_string()),
            c.floor
                .map(|f| format!("{f:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            c.vs_floor
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "null".to_string()),
        );
        let _ = write!(
            out,
            ", \"streaming_max_rel_err\": {:.3e}",
            c.streaming_max_rel_err
        );
        if let Some(stats) = &c.sharded {
            let _ = write!(
                out,
                ", \"epochs\": {}, \"merge_envelopes\": {}, \"avg_epoch_span_micros\": {}",
                stats.epochs, stats.merge_envelopes, stats.avg_epoch_span_micros
            );
        }
        if let Some(rate) = c.rack_local_steal_rate {
            let _ = write!(out, ", \"rack_local_steal_rate\": {rate:.4}");
        }
        out.push('}');
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
