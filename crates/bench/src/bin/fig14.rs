//! Figure 14: sensitivity to task-runtime misestimation. Hawk with
//! misestimated task runtimes normalized to Sparrow, long jobs, 15,000
//! nodes, Google trace, averaged over ten runs.
//!
//! Each job's correct estimate is multiplied by a uniform factor from the
//! range on the x-axis (0.1–1.9 is the widest, 0.7–1.3 the narrowest).
//! Jobs are grouped by the class they'd have *without* misestimation.
//! Paper finding: Hawk is robust — opposing misclassifications cancel, and
//! at 15,000 nodes long jobs misclassified as short actually benefit from
//! the less-loaded short partition, so the p90 improves slightly as the
//! range widens.

use hawk_bench::{
    base, fmt4, google_sensitivity_nodes, google_setup, parse_args, tsv_header, tsv_row, RunMode,
};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::classify::MisestimateRange;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

/// The paper's misestimation ranges: symmetric deltas 0.9 down to 0.3.
const DELTAS: [f64; 7] = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3];

fn main() {
    let opts = parse_args("fig14", "misestimation sensitivity (Figure 14)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let runs = if opts.mode == RunMode::Quick { 3 } else { 10 };
    let seeds: Vec<u64> = (0..runs).map(|i| opts.seed + i).collect();
    let env = base(&opts).nodes(nodes).trace(&trace);

    // Sparrow ignores estimates; one run per seed is shared by all ranges.
    eprintln!("fig14: {runs} Sparrow baseline runs at {nodes} nodes in parallel...");
    let sparrows = env
        .clone()
        .sweep()
        .scheduler(Sparrow::new())
        .seeds(seeds.iter().copied())
        .run_all();

    eprintln!(
        "fig14: {} misestimated Hawk runs in parallel...",
        DELTAS.len() * runs as usize
    );
    let hawks = env
        .sweep()
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
        .misestimates(DELTAS.iter().map(|&d| MisestimateRange::symmetric(d)))
        .seeds(seeds.iter().copied())
        .run_all();

    tsv_header(&["range", "p50_long", "p90_long", "p50_short", "p90_short"]);
    for delta in DELTAS {
        let range = MisestimateRange::symmetric(delta);
        let mut sums = [0.0f64; 4];
        for &seed in &seeds {
            let sparrow = &sparrows
                .find(|c| c.seed == seed)
                .expect("baseline cell ran")
                .report;
            let hawk = &hawks
                .find(|c| c.seed == seed && c.misestimate == Some(range))
                .expect("hawk cell ran")
                .report;
            let long = compare(hawk, sparrow, JobClass::Long);
            let short = compare(hawk, sparrow, JobClass::Short);
            sums[0] += long.p50_ratio.unwrap_or(f64::NAN);
            sums[1] += long.p90_ratio.unwrap_or(f64::NAN);
            sums[2] += short.p50_ratio.unwrap_or(f64::NAN);
            sums[3] += short.p90_ratio.unwrap_or(f64::NAN);
        }
        let n = runs as f64;
        tsv_row(&[
            format!("{:.1}-{:.1}", range.lo, range.hi),
            fmt4(sums[0] / n),
            fmt4(sums[1] / n),
            fmt4(sums[2] / n),
            fmt4(sums[3] / n),
        ]);
        eprintln!("fig14: range {:.1}-{:.1} done", range.lo, range.hi);
    }
    eprintln!("fig14: done (long columns are Figure 14; short columns show the paper's \"minute variations\")");
}
