//! Figures 16 and 17: implementation vs. simulation. Hawk normalized to
//! Sparrow on a Google-trace sample, in both the real-time prototype and
//! the simulator, sweeping load — short jobs (Fig 16), long jobs (Fig 17).
//!
//! The paper runs a 3,300-job sample (3,000 short via 10 distributed
//! schedulers, 300 long via the centralized one) on a 100-node cluster,
//! with task durations scaled 1000× down into sleeps, and varies the mean
//! job inter-arrival time as a multiple of the mean task runtime (x-axis
//! 1–2.25). Simulation and implementation agree in trend: Hawk is best at
//! high load, converging to Sparrow as load drops, with short-job p90
//! still clearly better at medium load.
//!
//! The default harness shrinks the sample (330 jobs, 20,000× time scale)
//! so the wall-clock run stays in minutes; `--full-trace` runs the paper's
//! exact 3,300 jobs at 1000× (hours of wall time).

use std::sync::Arc;

use hawk_bench::{base, fmt, fmt4, parse_args, tsv_header, tsv_row, RunMode};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_proto::{run_prototype, ProtoConfig};
use hawk_simcore::SimRng;
use hawk_workload::sample::{arrivals_for_load_multiplier, PrototypeSampleConfig};
use hawk_workload::{JobClass, Trace};

/// The paper's load sweep: multiplier 1 is the most loaded point (our
/// anchor: offered load 1.0 on the 100-node cluster; see
/// `arrivals_for_load_multiplier`), 2.25 the lightest.
const MULTIPLIERS: [f64; 7] = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25];

/// Workers in the prototype cluster (paper: 100 nodes).
const WORKERS: usize = 100;

fn ratio(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(a), Some(b)) if b > 0.0 => Some(a / b),
        _ => None,
    }
}

fn main() {
    let opts = parse_args(
        "fig16_17",
        "prototype vs simulation, Hawk vs Sparrow (Figures 16 and 17)",
    );
    let (sample_cfg, multipliers): (PrototypeSampleConfig, &[f64]) = match opts.mode {
        RunMode::FullTrace => (PrototypeSampleConfig::default(), &MULTIPLIERS),
        RunMode::Paper => (
            PrototypeSampleConfig {
                short_jobs: opts.jobs.map(|j| j * 10 / 11).unwrap_or(600),
                long_jobs: opts.jobs.map(|j| j / 11).unwrap_or(60),
                cluster_size: 100,
                duration_divisor: 20_000,
            },
            &MULTIPLIERS,
        ),
        RunMode::Quick => (
            PrototypeSampleConfig {
                short_jobs: 100,
                long_jobs: 10,
                cluster_size: 100,
                duration_divisor: 20_000,
            },
            &MULTIPLIERS[..3],
        ),
    };

    eprintln!(
        "fig16_17: sample of {} short + {} long jobs, time scale 1/{}",
        sample_cfg.short_jobs, sample_cfg.long_jobs, sample_cfg.duration_divisor
    );
    let sample = sample_cfg.generate(opts.seed);
    let cutoff = sample_cfg.cutoff();
    let mut arrival_rng = SimRng::seed_from_u64(opts.seed ^ 0xA55A);

    tsv_header(&[
        "interarrival_multiple",
        "impl_p50_short",
        "impl_p90_short",
        "impl_p50_long",
        "impl_p90_long",
        "sim_p50_short",
        "sim_p90_short",
        "sim_p50_long",
        "sim_p90_long",
        "impl_sparrow_median_util",
    ]);

    for &m in multipliers {
        let trace: Trace = arrivals_for_load_multiplier(&sample, m, WORKERS, &mut arrival_rng);
        eprintln!(
            "fig16_17: multiplier {m}: running prototype (span {:.1} s)...",
            trace.span().as_secs_f64()
        );

        // --- Real-time prototype runs: the same policy values the
        // simulator cells below run, on live threads ---
        let proto_cfg = ProtoConfig {
            cutoff,
            seed: opts.seed,
            ..ProtoConfig::default()
        };
        let proto_hawk = run_prototype(&trace, Arc::new(Hawk::new(0.17)), &proto_cfg);
        let proto_sparrow = run_prototype(&trace, Arc::new(Sparrow::new()), &proto_cfg);

        // --- Simulator runs on the identical trace ---
        let sim_base = base(&opts)
            .nodes(100)
            .cutoff(cutoff)
            // Sample utilization on the scaled clock.
            .util_interval(hawk_simcore::SimDuration::from_millis(50))
            .trace(&trace);
        let sim_hawk = sim_base.clone().scheduler(Hawk::new(0.17)).run();
        let sim_sparrow = sim_base.scheduler(Sparrow::new()).run();

        let ip50s = ratio(
            proto_hawk.runtime_percentile(JobClass::Short, 50.0),
            proto_sparrow.runtime_percentile(JobClass::Short, 50.0),
        );
        let ip90s = ratio(
            proto_hawk.runtime_percentile(JobClass::Short, 90.0),
            proto_sparrow.runtime_percentile(JobClass::Short, 90.0),
        );
        let ip50l = ratio(
            proto_hawk.runtime_percentile(JobClass::Long, 50.0),
            proto_sparrow.runtime_percentile(JobClass::Long, 50.0),
        );
        let ip90l = ratio(
            proto_hawk.runtime_percentile(JobClass::Long, 90.0),
            proto_sparrow.runtime_percentile(JobClass::Long, 90.0),
        );
        let sim_short = compare(&sim_hawk, &sim_sparrow, JobClass::Short);
        let sim_long = compare(&sim_hawk, &sim_sparrow, JobClass::Long);

        tsv_row(&[
            fmt(m),
            fmt4(ip50s),
            fmt4(ip90s),
            fmt4(ip50l),
            fmt4(ip90l),
            fmt4(sim_short.p50_ratio),
            fmt4(sim_short.p90_ratio),
            fmt4(sim_long.p50_ratio),
            fmt4(sim_long.p90_ratio),
            fmt4(proto_sparrow.median_utilization()),
        ]);
    }
    eprintln!("fig16_17: done (Fig 16 = short columns, Fig 17 = long columns)");
}
