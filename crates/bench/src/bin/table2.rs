//! Table 2: number of long jobs and total number of jobs per simulated
//! trace.
//!
//! The paper simulates the full job counts (Google 506,460; Cloudera-c
//! 21,030; Facebook 1,169,184; Yahoo 24,262). The harness generates the
//! published count for each workload unless `--jobs` overrides it (the
//! Facebook count is large; `--quick` truncates it).

use hawk_bench::{fmt, fmt4, parse_args, tsv_header, tsv_row, RunMode};
use hawk_workload::classify::Cutoff;
use hawk_workload::google::GoogleTraceConfig;
use hawk_workload::kmeans::KmeansTraceConfig;
use hawk_workload::stats::WorkloadStats;

fn main() {
    let opts = parse_args("table2", "per-trace job counts (Table 2)");

    tsv_header(&[
        "workload",
        "long_jobs_pct",
        "paper_long_jobs_pct",
        "total_jobs",
        "paper_total_jobs",
    ]);

    let cap = |published: usize| match (opts.jobs, opts.mode) {
        (Some(j), _) => j.min(published),
        (None, RunMode::Quick) => published.min(20_000),
        (None, RunMode::Paper) => published.min(120_000),
        (None, RunMode::FullTrace) => published,
    };

    let google_jobs = cap(506_460);
    let google = GoogleTraceConfig::with_scale(1, google_jobs).generate(opts.seed);
    let gs = WorkloadStats::by_cutoff(&google, Cutoff::GOOGLE_DEFAULT);
    tsv_row(&[
        fmt("google-2011"),
        fmt4(gs.long_job_fraction * 100.0),
        fmt("10.00"),
        fmt(google.len()),
        fmt(506_460),
    ]);

    let derived: [(KmeansTraceConfig, f64, usize); 3] = [
        (KmeansTraceConfig::cloudera_c(cap(21_030)), 5.02, 21_030),
        (KmeansTraceConfig::facebook(cap(1_169_184)), 2.01, 1_169_184),
        (KmeansTraceConfig::yahoo(cap(24_262)), 9.41, 24_262),
    ];
    for (cfg, paper_long, paper_total) in derived {
        let trace = cfg.generate(opts.seed);
        let s = WorkloadStats::by_provenance(&trace, Cutoff::from_secs(cfg.default_cutoff_secs));
        tsv_row(&[
            fmt(cfg.name),
            fmt4(s.long_job_fraction * 100.0),
            fmt4(paper_long),
            fmt(trace.len()),
            fmt(paper_total),
        ]);
    }
    eprintln!("table2: done");
}
