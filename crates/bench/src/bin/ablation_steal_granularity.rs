//! Ablation: steal granularity (§3.6's design rationale).
//!
//! The paper steals "the first consecutive group of short tasks that come
//! after a long task", arguing that stealing from random positions "would
//! likely end up focusing on too many jobs at the same time while failing
//! to improve most", and that a bounded group keeps the benefit on a few
//! jobs so their *job* runtimes improve. This bench pits the paper's
//! policy against that strawman (one random blocked entry per steal) and
//! against the maximally aggressive variant (every blocked short), all
//! normalized to the paper's policy.

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, ratio_quad, tsv_header,
    tsv_row,
};
use hawk_cluster::StealGranularity;
use hawk_core::scheduler::Hawk;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

fn main() {
    let opts = parse_args(
        "ablation_steal_granularity",
        "steal-granularity design-choice ablation (§3.6)",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!("ablation_steal_granularity: 3 granularities at {nodes} nodes in parallel...");
    let results = base(&opts)
        .nodes(nodes)
        .trace(&trace)
        .sweep()
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
        .scheduler(
            Hawk::new(GOOGLE_SHORT_PARTITION)
                .steal_granularity(StealGranularity::RandomBlockedEntry),
        )
        .scheduler(
            Hawk::new(GOOGLE_SHORT_PARTITION).steal_granularity(StealGranularity::AllBlockedShorts),
        )
        .run_all();
    let paper = results.get("hawk", nodes).expect("paper-policy cell ran");

    tsv_header(&[
        "granularity",
        "p50_short",
        "p90_short",
        "p50_long",
        "p90_long",
        "steals",
    ]);
    tsv_row(&[
        fmt("first-blocked-group(paper)"),
        fmt4(1.0),
        fmt4(1.0),
        fmt4(1.0),
        fmt4(1.0),
        fmt(paper.steals),
    ]);
    for cell in results.iter().skip(1) {
        let (p50l, p90l, p50s, p90s) = ratio_quad(&cell.report, paper);
        tsv_row(&[
            fmt(&cell.scheduler),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(p50l),
            fmt4(p90l),
            fmt(cell.report.steals),
        ]);
    }
    eprintln!("ablation_steal_granularity: done (>1 means worse than the paper's policy)");
}
