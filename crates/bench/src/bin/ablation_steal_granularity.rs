//! Ablation: steal granularity (§3.6's design rationale).
//!
//! The paper steals "the first consecutive group of short tasks that come
//! after a long task", arguing that stealing from random positions "would
//! likely end up focusing on too many jobs at the same time while failing
//! to improve most", and that a bounded group keeps the benefit on a few
//! jobs so their *job* runtimes improve. This bench pits the paper's
//! policy against that strawman (one random blocked entry per steal) and
//! against the maximally aggressive variant (every blocked short), all
//! normalized to the paper's policy.

use hawk_bench::{
    fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, ratio_quad, run_cell,
    tsv_header, tsv_row,
};
use hawk_cluster::StealGranularity;
use hawk_core::{ExperimentConfig, SchedulerConfig};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

fn main() {
    let opts = parse_args(
        "ablation_steal_granularity",
        "steal-granularity design-choice ablation (§3.6)",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    eprintln!("ablation_steal_granularity: baseline (first blocked group) at {nodes} nodes...");
    let paper = run_cell(
        &trace,
        SchedulerConfig::hawk(GOOGLE_SHORT_PARTITION),
        nodes,
        &base,
    );

    tsv_header(&[
        "granularity",
        "p50_short",
        "p90_short",
        "p50_long",
        "p90_long",
        "steals",
    ]);
    tsv_row(&[
        fmt("first-blocked-group(paper)"),
        fmt4(1.0),
        fmt4(1.0),
        fmt4(1.0),
        fmt4(1.0),
        fmt(paper.steals),
    ]);
    for granularity in [
        StealGranularity::RandomBlockedEntry,
        StealGranularity::AllBlockedShorts,
    ] {
        let scheduler = SchedulerConfig::hawk_with_granularity(GOOGLE_SHORT_PARTITION, granularity);
        eprintln!("ablation_steal_granularity: running {}...", scheduler.name);
        let variant = run_cell(&trace, scheduler, nodes, &base);
        let (p50l, p90l, p50s, p90s) = ratio_quad(&variant, &paper);
        tsv_row(&[
            fmt(scheduler.name),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(p50l),
            fmt4(p90l),
            fmt(variant.steals),
        ]);
    }
    eprintln!("ablation_steal_granularity: done (>1 means worse than the paper's policy)");
}
