//! Figure 15: sensitivity to the number of stealing attempts. Hawk with a
//! varying cap on the random nodes contacted per steal attempt, normalized
//! to Hawk with cap 1 — short jobs, 15,000 nodes, Google trace.
//!
//! Paper finding: performance improves with the cap, but even a low value
//! (10, the default) captures most of the benefit.

use hawk_bench::{
    fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, run_cell, tsv_header, tsv_row,
};
use hawk_core::{compare, ExperimentConfig, SchedulerConfig};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

/// The paper's cap sweep.
const CAPS: [usize; 13] = [1, 2, 3, 4, 5, 10, 15, 20, 25, 50, 75, 100, 250];

fn main() {
    let opts = parse_args("fig15", "steal-attempt cap sensitivity (Figure 15)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    eprintln!("fig15: baseline Hawk with cap 1 at {nodes} nodes...");
    let cap1 = run_cell(
        &trace,
        SchedulerConfig::hawk_with_steal_cap(GOOGLE_SHORT_PARTITION, 1),
        nodes,
        &base,
    );

    tsv_header(&["cap", "p50_short", "p90_short", "steals", "steal_attempts"]);
    for cap in CAPS {
        let hawk = if cap == 1 {
            cap1.clone()
        } else {
            run_cell(
                &trace,
                SchedulerConfig::hawk_with_steal_cap(GOOGLE_SHORT_PARTITION, cap),
                nodes,
                &base,
            )
        };
        let short = compare(&hawk, &cap1, JobClass::Short);
        tsv_row(&[
            fmt(cap),
            fmt4(short.p50_ratio),
            fmt4(short.p90_ratio),
            fmt(hawk.steals),
            fmt(hawk.steal_attempts),
        ]);
    }
    eprintln!("fig15: done");
}
