//! Figure 15: sensitivity to the number of stealing attempts. Hawk with a
//! varying cap on the random nodes contacted per steal attempt, normalized
//! to Hawk with cap 1 — short jobs, 15,000 nodes, Google trace.
//!
//! Paper finding: performance improves with the cap, but even a low value
//! (10, the default) captures most of the benefit.

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, tsv_header, tsv_row,
};
use hawk_core::compare;
use hawk_core::scheduler::Hawk;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

/// The paper's cap sweep.
const CAPS: [usize; 13] = [1, 2, 3, 4, 5, 10, 15, 20, 25, 50, 75, 100, 250];

fn main() {
    let opts = parse_args("fig15", "steal-attempt cap sensitivity (Figure 15)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!(
        "fig15: running {} Hawk cap variants at {nodes} nodes in parallel...",
        CAPS.len()
    );
    let mut sweep = base(&opts).nodes(nodes).trace(&trace).sweep();
    for cap in CAPS {
        sweep = sweep.scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).steal_cap(cap));
    }
    // Every variant is named "hawk": rows pair with CAPS by grid order
    // (insertion order of the scheduler axis, the only populated axis).
    let results = sweep.run_all();
    assert_eq!(results.cells.len(), CAPS.len());
    let cap1 = &results.cells[0].report;

    tsv_header(&["cap", "p50_short", "p90_short", "steals", "steal_attempts"]);
    for (cap, cell) in CAPS.iter().zip(results.iter()) {
        let hawk = &cell.report;
        let short = compare(hawk, cap1, JobClass::Short);
        tsv_row(&[
            fmt(cap),
            fmt4(short.p50_ratio),
            fmt4(short.p90_ratio),
            fmt(hawk.steals),
            fmt(hawk.steal_attempts),
        ]);
    }
    eprintln!("fig15: done");
}
