//! Ablation: probe ratio.
//!
//! Sparrow found a probe ratio of 2 to be best and the Hawk paper adopts
//! it ("we compare against Sparrow configured to send two probes per task
//! because the authors of Sparrow have found two to be the best probe
//! ratio", §4.1). This bench sweeps the ratio for both schedulers. Note
//! the simulator charges network delay but no server-side messaging CPU,
//! so very high ratios are kinder here than on a real cluster — the
//! interesting regime is how little ratios above 2 buy.

use hawk_bench::{
    base, fmt4, google_sensitivity_nodes, google_setup, parse_args, tsv_header, tsv_row,
};
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

const RATIOS: [f64; 5] = [1.0, 1.5, 2.0, 3.0, 4.0];

fn main() {
    let opts = parse_args("ablation_probe_ratio", "probe-ratio sweep (§4.1 parameter)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!(
        "ablation_probe_ratio: running {} cells at {nodes} nodes in parallel...",
        2 * RATIOS.len()
    );
    // Scheduler axis order: (sparrow, hawk) per ratio — rows pair with
    // RATIOS by grid order.
    let mut sweep = base(&opts).nodes(nodes).trace(&trace).sweep();
    for ratio in RATIOS {
        sweep = sweep
            .scheduler(Sparrow::new().probe_ratio(ratio))
            .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).probe_ratio(ratio));
    }
    let results = sweep.run_all();

    tsv_header(&[
        "probe_ratio",
        "sparrow_p50_short_s",
        "sparrow_p90_short_s",
        "hawk_p50_short_s",
        "hawk_p90_short_s",
    ]);
    assert_eq!(results.cells.len(), 2 * RATIOS.len());
    for (i, ratio) in RATIOS.iter().enumerate() {
        let sparrow = &results.cells[2 * i].report;
        let hawk = &results.cells[2 * i + 1].report;
        // Guard the index pairing against any future grid-order change.
        assert_eq!(sparrow.scheduler, "sparrow");
        assert_eq!(hawk.scheduler, "hawk");
        tsv_row(&[
            fmt4(*ratio),
            fmt4(sparrow.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(sparrow.runtime_percentile(JobClass::Short, 90.0)),
            fmt4(hawk.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(hawk.runtime_percentile(JobClass::Short, 90.0)),
        ]);
    }
    eprintln!("ablation_probe_ratio: done (absolute short-job runtimes, seconds)");
}
