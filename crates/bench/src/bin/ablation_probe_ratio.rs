//! Ablation: probe ratio.
//!
//! Sparrow found a probe ratio of 2 to be best and the Hawk paper adopts
//! it ("we compare against Sparrow configured to send two probes per task
//! because the authors of Sparrow have found two to be the best probe
//! ratio", §4.1). This bench sweeps the ratio for both schedulers. Note
//! the simulator charges network delay but no server-side messaging CPU,
//! so very high ratios are kinder here than on a real cluster — the
//! interesting regime is how little ratios above 2 buy.

use hawk_bench::{
    fmt4, google_sensitivity_nodes, google_setup, parse_args, run_cell, tsv_header, tsv_row,
};
use hawk_core::{ExperimentConfig, SchedulerConfig};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

const RATIOS: [f64; 5] = [1.0, 1.5, 2.0, 3.0, 4.0];

fn main() {
    let opts = parse_args("ablation_probe_ratio", "probe-ratio sweep (§4.1 parameter)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    tsv_header(&[
        "probe_ratio",
        "sparrow_p50_short_s",
        "sparrow_p90_short_s",
        "hawk_p50_short_s",
        "hawk_p90_short_s",
    ]);
    for ratio in RATIOS {
        eprintln!("ablation_probe_ratio: ratio {ratio} at {nodes} nodes...");
        let sparrow = run_cell(
            &trace,
            SchedulerConfig {
                probe_ratio: ratio,
                ..SchedulerConfig::sparrow()
            },
            nodes,
            &base,
        );
        let hawk = run_cell(
            &trace,
            SchedulerConfig {
                probe_ratio: ratio,
                ..SchedulerConfig::hawk(GOOGLE_SHORT_PARTITION)
            },
            nodes,
            &base,
        );
        tsv_row(&[
            fmt4(ratio),
            fmt4(sparrow.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(sparrow.runtime_percentile(JobClass::Short, 90.0)),
            fmt4(hawk.runtime_percentile(JobClass::Short, 50.0)),
            fmt4(hawk.runtime_percentile(JobClass::Short, 90.0)),
        ]);
    }
    eprintln!("ablation_probe_ratio: done (absolute short-job runtimes, seconds)");
}
