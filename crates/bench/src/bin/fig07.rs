//! Figure 7: break-down of Hawk's benefits — each component disabled in
//! turn, normalized to full Hawk. Google trace, 15,000 nodes.
//!
//! Paper findings: without centralized scheduling, long jobs take a
//! significant hit (and short jobs improve slightly); without the
//! partition, short jobs suffer; without stealing, short jobs are greatly
//! penalized and long jobs also degrade (they share queues with more
//! short tasks).

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, ratio_quad, tsv_header,
    tsv_row,
};
use hawk_core::scheduler::Hawk;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

fn main() {
    let opts = parse_args("fig07", "Hawk component ablations (Figure 7)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!("fig07: running full Hawk and 3 ablations at {nodes} nodes in parallel...");
    let results = base(&opts)
        .nodes(nodes)
        .trace(&trace)
        .sweep()
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).without_centralized())
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).without_partition())
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).without_stealing())
        .run_all();
    let hawk = results.get("hawk", nodes).expect("full Hawk cell ran");

    tsv_header(&["variant", "p50_short", "p90_short", "p50_long", "p90_long"]);
    for cell in results.iter().skip(1) {
        let (p50l, p90l, p50s, p90s) = ratio_quad(&cell.report, hawk);
        tsv_row(&[
            fmt(&cell.scheduler),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(p50l),
            fmt4(p90l),
        ]);
    }
    eprintln!("fig07: done (values are variant/Hawk; >1 means the variant is worse)");
}
