//! Figure 7: break-down of Hawk's benefits — each component disabled in
//! turn, normalized to full Hawk. Google trace, 15,000 nodes.
//!
//! Paper findings: without centralized scheduling, long jobs take a
//! significant hit (and short jobs improve slightly); without the
//! partition, short jobs suffer; without stealing, short jobs are greatly
//! penalized and long jobs also degrade (they share queues with more
//! short tasks).

use hawk_bench::{
    fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, ratio_quad, run_cell,
    tsv_header, tsv_row,
};
use hawk_core::{ExperimentConfig, SchedulerConfig};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;

fn main() {
    let opts = parse_args("fig07", "Hawk component ablations (Figure 7)");
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    eprintln!("fig07: running full Hawk at {nodes} nodes...");
    let hawk = run_cell(
        &trace,
        SchedulerConfig::hawk(GOOGLE_SHORT_PARTITION),
        nodes,
        &base,
    );

    let ablations = [
        SchedulerConfig::hawk_without_centralized(GOOGLE_SHORT_PARTITION),
        SchedulerConfig::hawk_without_partition(),
        SchedulerConfig::hawk_without_stealing(GOOGLE_SHORT_PARTITION),
    ];

    tsv_header(&["variant", "p50_short", "p90_short", "p50_long", "p90_long"]);
    for scheduler in ablations {
        eprintln!("fig07: running {}...", scheduler.name);
        let variant = run_cell(&trace, scheduler, nodes, &base);
        let (p50l, p90l, p50s, p90s) = ratio_quad(&variant, &hawk);
        tsv_row(&[
            fmt(scheduler.name),
            fmt4(p50s),
            fmt4(p90s),
            fmt4(p50l),
            fmt4(p90l),
        ]);
    }
    eprintln!("fig07: done (values are variant/Hawk; >1 means the variant is worse)");
}
