//! One policy, two backends: the §4.4 sim-vs-implementation cross-check
//! as a TSV grid.
//!
//! Runs a policy grid (Hawk, its no-stealing ablation, Sparrow) on the
//! same high-load Google-like scenario through the discrete-event
//! simulator and the prototype's deterministic virtual-clock backend,
//! and prints the headline percentiles side by side plus the
//! proto/sim conformance ratio per cell. Both backends execute the
//! *same* `Arc<dyn Scheduler>` values; `tests/backend_conformance.rs`
//! asserts the qualitative claims this table lets you eyeball.
//!
//! Columns: scheduler, backend, p50/p90 short, p50/p90 long, steals,
//! wall-clock milliseconds, and (on proto rows) the p90-short proto/sim
//! ratio — the Figure 16/17 agreement number.
//!
//! `--faults` adds a third row per scheduler: the virtual prototype under
//! [`FaultSpec::chaos`] plus a mid-run partition, so the fault-free and
//! faulty divergence from the simulator sit side by side.

use std::sync::Arc;
use std::time::Instant;

use hawk_bench::{fmt4, parse_args_with, tsv_header, tsv_row, RunMode};
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_core::{Backend, Experiment, MetricsReport, Scheduler, SimBackend};
use hawk_proto::{FaultSpec, ProtoBackend};
use hawk_simcore::SimTime;
use hawk_workload::scenario::{ScenarioSpec, TraceFamily};
use hawk_workload::JobClass;

/// ~90 % offered load on a 100-node cluster (the 15,000-node ρ=0.9
/// anchor divided by 150).
const NODES: usize = 100;
const SCALE: u64 = 150;

fn main() {
    let (opts, flags) = parse_args_with(
        "proto_vs_sim",
        "one policy grid through the simulator and the prototype backend",
        &[(
            "--faults",
            "add a faulty virtual-prototype row per scheduler \
             (FaultSpec::chaos + a 1000 s ten-worker partition)",
        )],
    );
    let with_faults = flags.iter().any(|f| f == "--faults");
    let jobs = opts.jobs.unwrap_or(match opts.mode {
        RunMode::Quick => 200,
        RunMode::Paper => 1_000,
        RunMode::FullTrace => 5_000,
    });
    let scenario = ScenarioSpec::new(TraceFamily::Google { scale: SCALE }, jobs);
    eprintln!(
        "proto_vs_sim: {} jobs on {NODES} nodes ({})",
        jobs,
        scenario.label()
    );
    let trace = Arc::new(scenario.trace(opts.seed));

    let schedulers: Vec<Arc<dyn Scheduler>> = vec![
        Arc::new(Hawk::new(0.17)),
        Arc::new(Hawk::new(0.17).without_stealing()),
        Arc::new(Sparrow::new()),
    ];
    let sim = SimBackend;
    let proto = ProtoBackend::deterministic();
    // The faulty axis: the chaos cell plus a partition islanding ten
    // workers (hosts 40–49 host no scheduler daemons) for 1000 s.
    let faulty = ProtoBackend::deterministic().faults(FaultSpec::chaos().partition(
        SimTime::from_secs(100),
        SimTime::from_secs(1_100),
        (40..50).collect(),
    ));

    tsv_header(&[
        "scheduler",
        "backend",
        "p50_short",
        "p90_short",
        "p50_long",
        "p90_long",
        "steals",
        "wall_ms",
        "p90_short_vs_sim",
    ]);
    for scheduler in schedulers {
        let mut sim_p90_short = None;
        let mut rows: Vec<(&dyn Backend, &str)> = vec![(&sim, "sim"), (&proto, "proto")];
        if with_faults {
            rows.push((&faulty, "proto-faulty"));
        }
        for (backend, name) in rows {
            let start = Instant::now();
            let report: MetricsReport = Experiment::builder()
                .nodes(NODES)
                .trace(&trace)
                .seed(opts.seed)
                .scheduler_shared(Arc::clone(&scheduler))
                .build()
                .run_on(backend);
            let wall = start.elapsed();
            let short = report.summary(JobClass::Short);
            let long = report.summary(JobClass::Long);
            let conformance = match name {
                "sim" => {
                    sim_p90_short = short.p90;
                    None
                }
                _ => match (short.p90, sim_p90_short) {
                    (Some(p), Some(s)) if s > 0.0 => Some(p / s),
                    _ => None,
                },
            };
            tsv_row(&[
                report.scheduler.clone(),
                name.to_string(),
                fmt4(short.p50),
                fmt4(short.p90),
                fmt4(long.p50),
                fmt4(long.p90),
                report.steals.to_string(),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
                fmt4(conformance),
            ]);
        }
    }
    eprintln!("proto_vs_sim: done (p90_short_vs_sim ≈ 1.0 = backends agree)");
}
