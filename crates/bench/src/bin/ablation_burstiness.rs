//! Ablation: arrival burstiness.
//!
//! The paper's simulator submits jobs through a smooth Poisson process;
//! real cluster traces arrive in bursts (retries, cron fan-outs, diurnal
//! waves). Burstiness is precisely what stresses a statically-sized short
//! partition: a clump of short jobs overflows it, and only a scheduler
//! that lets shorts spill into the general partition absorbs the wave.
//!
//! This bench rewrites the Google-like trace's arrivals with a two-state
//! bursty process of identical average rate and compares Hawk against
//! Sparrow and against the split cluster (§4.6) under both arrival
//! models. Expectation: the split cluster's short-job penalty grows
//! sharply under bursts, while Hawk degrades gracefully.

use hawk_bench::{
    fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, run_cell, tsv_header, tsv_row,
};
use hawk_core::{compare, ExperimentConfig, SchedulerConfig};
use hawk_simcore::SimRng;
use hawk_workload::arrivals::with_bursty_arrivals;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

fn main() {
    let opts = parse_args("ablation_burstiness", "arrival-burstiness ablation");
    let (poisson_trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let mut rng = SimRng::seed_from_u64(opts.seed ^ 0xB00B5);
    // Bursts submit jobs 10× faster, ~1 job in 5 arrives inside a burst.
    let bursty_trace = with_bursty_arrivals(&poisson_trace, 10.0, 80.0, 20.0, &mut rng);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    tsv_header(&[
        "arrivals",
        "scheduler",
        "p50_short_vs_hawk",
        "p90_short_vs_hawk",
        "p90_long_vs_hawk",
        "median_util",
    ]);
    for (label, trace) in [("poisson", &poisson_trace), ("bursty", &bursty_trace)] {
        eprintln!("ablation_burstiness: {label} arrivals at {nodes} nodes...");
        let hawk = run_cell(
            trace,
            SchedulerConfig::hawk(GOOGLE_SHORT_PARTITION),
            nodes,
            &base,
        );
        for scheduler in [
            SchedulerConfig::sparrow(),
            SchedulerConfig::split_cluster(GOOGLE_SHORT_PARTITION),
        ] {
            let other = run_cell(trace, scheduler, nodes, &base);
            let short = compare(&other, &hawk, JobClass::Short);
            let long = compare(&other, &hawk, JobClass::Long);
            tsv_row(&[
                fmt(label),
                fmt(scheduler.name),
                fmt4(short.p50_ratio),
                fmt4(short.p90_ratio),
                fmt4(long.p90_ratio),
                fmt4(other.median_utilization),
            ]);
        }
    }
    eprintln!("ablation_burstiness: done (>1 means worse than Hawk on the same arrivals)");
}
