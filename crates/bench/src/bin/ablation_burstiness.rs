//! Ablation: arrival burstiness.
//!
//! The paper's simulator submits jobs through a smooth Poisson process;
//! real cluster traces arrive in bursts (retries, cron fan-outs, diurnal
//! waves). Burstiness is precisely what stresses a statically-sized short
//! partition: a clump of short jobs overflows it, and only a scheduler
//! that lets shorts spill into the general partition absorbs the wave.
//!
//! This bench rewrites the Google-like trace's arrivals with a two-state
//! bursty process of identical average rate and compares Hawk against
//! Sparrow and against the split cluster (§4.6) under both arrival
//! models. Expectation: the split cluster's short-job penalty grows
//! sharply under bursts, while Hawk degrades gracefully.

use std::sync::Arc;

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, tsv_header, tsv_row,
};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow, SplitCluster};
use hawk_simcore::SimRng;
use hawk_workload::arrivals::with_bursty_arrivals;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

fn main() {
    let opts = parse_args("ablation_burstiness", "arrival-burstiness ablation");
    let (poisson_trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let mut rng = SimRng::seed_from_u64(opts.seed ^ 0xB00B5);
    // Bursts submit jobs 10× faster, ~1 job in 5 arrives inside a burst.
    let bursty_trace = Arc::new(with_bursty_arrivals(
        &poisson_trace,
        10.0,
        80.0,
        20.0,
        &mut rng,
    ));

    tsv_header(&[
        "arrivals",
        "scheduler",
        "p50_short_vs_hawk",
        "p90_short_vs_hawk",
        "p90_long_vs_hawk",
        "median_util",
    ]);
    for (label, trace) in [("poisson", &poisson_trace), ("bursty", &bursty_trace)] {
        eprintln!("ablation_burstiness: {label} arrivals, 3 schedulers at {nodes} nodes...");
        let results = base(&opts)
            .nodes(nodes)
            .trace(trace)
            .sweep()
            .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
            .scheduler(Sparrow::new())
            .scheduler(SplitCluster::new(GOOGLE_SHORT_PARTITION))
            .run_all();
        let hawk = results.get("hawk", nodes).expect("hawk cell ran");
        for name in ["sparrow", "split-cluster"] {
            let other = results.get(name, nodes).expect("baseline cell ran");
            let short = compare(other, hawk, JobClass::Short);
            let long = compare(other, hawk, JobClass::Long);
            tsv_row(&[
                fmt(label),
                fmt(name),
                fmt4(short.p50_ratio),
                fmt4(short.p90_ratio),
                fmt4(long.p90_ratio),
                fmt4(other.median_utilization),
            ]);
        }
    }
    eprintln!("ablation_burstiness: done (>1 means worse than Hawk on the same arrivals)");
}
