//! Ablation: short-partition sizing.
//!
//! Hawk sizes the reserved short partition from the workload's long-job
//! task-seconds share (§3.4) — 17 % for the Google trace. This bench
//! sweeps the fraction to show the trade-off the rule balances: too small
//! and short jobs lose their refuge (and stealing thieves); too large and
//! long jobs are squeezed into a cramped general partition.

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, tsv_header, tsv_row,
};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::JobClass;

/// Short-partition fractions to sweep (the paper's rule picks 0.17).
const FRACTIONS: [f64; 7] = [0.0, 0.05, 0.10, 0.17, 0.25, 0.35, 0.50];

fn main() {
    let opts = parse_args(
        "ablation_partition_size",
        "short-partition sizing sweep (§3.4)",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!(
        "ablation_partition_size: Sparrow + {} Hawk fractions at {nodes} nodes in parallel...",
        FRACTIONS.len()
    );
    // Scheduler axis order: Sparrow first, then one Hawk per fraction —
    // rows pair with FRACTIONS by grid order.
    let mut sweep = base(&opts)
        .nodes(nodes)
        .trace(&trace)
        .sweep()
        .scheduler(Sparrow::new());
    for fraction in FRACTIONS {
        sweep = sweep.scheduler(Hawk::new(fraction));
    }
    let results = sweep.run_all();
    assert_eq!(results.cells.len(), 1 + FRACTIONS.len());
    let sparrow = &results.cells[0].report;
    // Guard the index pairing against any future grid-order change
    // (fraction 0.0 names itself "hawk-wout-partition").
    assert_eq!(sparrow.scheduler, "sparrow");
    for cell in results.iter().skip(1) {
        assert!(cell.scheduler.starts_with("hawk"), "{}", cell.scheduler);
    }

    tsv_header(&[
        "short_partition_fraction",
        "p50_short_vs_sparrow",
        "p90_short_vs_sparrow",
        "p50_long_vs_sparrow",
        "p90_long_vs_sparrow",
        "steals",
    ]);
    for (fraction, cell) in FRACTIONS.iter().zip(results.iter().skip(1)) {
        let hawk = &cell.report;
        let short = compare(hawk, sparrow, JobClass::Short);
        let long = compare(hawk, sparrow, JobClass::Long);
        tsv_row(&[
            fmt4(*fraction),
            fmt4(short.p50_ratio),
            fmt4(short.p90_ratio),
            fmt4(long.p50_ratio),
            fmt4(long.p90_ratio),
            fmt(hawk.steals),
        ]);
    }
    eprintln!("ablation_partition_size: done (the paper's task-seconds rule gives 0.17)");
}
