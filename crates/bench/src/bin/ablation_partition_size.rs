//! Ablation: short-partition sizing.
//!
//! Hawk sizes the reserved short partition from the workload's long-job
//! task-seconds share (§3.4) — 17 % for the Google trace. This bench
//! sweeps the fraction to show the trade-off the rule balances: too small
//! and short jobs lose their refuge (and stealing thieves); too large and
//! long jobs are squeezed into a cramped general partition.

use hawk_bench::{
    fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, run_cell, tsv_header, tsv_row,
};
use hawk_core::{compare, ExperimentConfig, SchedulerConfig};
use hawk_workload::JobClass;

/// Short-partition fractions to sweep (the paper's rule picks 0.17).
const FRACTIONS: [f64; 7] = [0.0, 0.05, 0.10, 0.17, 0.25, 0.35, 0.50];

fn main() {
    let opts = parse_args(
        "ablation_partition_size",
        "short-partition sizing sweep (§3.4)",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    eprintln!("ablation_partition_size: Sparrow baseline at {nodes} nodes...");
    let sparrow = run_cell(&trace, SchedulerConfig::sparrow(), nodes, &base);

    tsv_header(&[
        "short_partition_fraction",
        "p50_short_vs_sparrow",
        "p90_short_vs_sparrow",
        "p50_long_vs_sparrow",
        "p90_long_vs_sparrow",
        "steals",
    ]);
    for fraction in FRACTIONS {
        let hawk = run_cell(&trace, SchedulerConfig::hawk(fraction), nodes, &base);
        let short = compare(&hawk, &sparrow, JobClass::Short);
        let long = compare(&hawk, &sparrow, JobClass::Long);
        tsv_row(&[
            fmt4(fraction),
            fmt4(short.p50_ratio),
            fmt4(short.p90_ratio),
            fmt4(long.p50_ratio),
            fmt4(long.p90_ratio),
            fmt(hawk.steals),
        ]);
    }
    eprintln!("ablation_partition_size: done (the paper's task-seconds rule gives 0.17)");
}
