//! Extension: long-aware probe bouncing (after Eagle, Hawk's successor).
//!
//! Hawk's distributed schedulers place probes blindly; stealing repairs
//! the bad placements afterwards. Eagle instead prevents them: node
//! monitors know which servers hold long work and short tasks avoid
//! queueing there. This bench evaluates a bounce-based variant of that
//! idea on top of Hawk — a short probe landing on a server with long work
//! retries elsewhere, up to a hop limit — and reports it against plain
//! Hawk and Sparrow.

use hawk_bench::{
    fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, run_cell, tsv_header, tsv_row,
};
use hawk_core::{compare, ExperimentConfig, SchedulerConfig};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

const BOUNCE_LIMITS: [u8; 4] = [1, 2, 4, 8];

fn main() {
    let opts = parse_args(
        "ext_probe_avoidance",
        "Eagle-style probe-avoidance extension on top of Hawk",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);
    let base = ExperimentConfig {
        seed: opts.seed,
        ..ExperimentConfig::default()
    };

    eprintln!("ext_probe_avoidance: plain Hawk and Sparrow baselines at {nodes} nodes...");
    let hawk = run_cell(
        &trace,
        SchedulerConfig::hawk(GOOGLE_SHORT_PARTITION),
        nodes,
        &base,
    );
    let sparrow = run_cell(&trace, SchedulerConfig::sparrow(), nodes, &base);
    let sparrow_short = compare(&hawk, &sparrow, JobClass::Short);

    tsv_header(&[
        "variant",
        "p50_short_vs_hawk",
        "p90_short_vs_hawk",
        "p90_long_vs_hawk",
        "steals",
    ]);
    tsv_row(&[
        fmt("hawk(plain)"),
        fmt4(1.0),
        fmt4(1.0),
        fmt4(1.0),
        fmt(hawk.steals),
    ]);
    for limit in BOUNCE_LIMITS {
        let scheduler = SchedulerConfig::hawk_with_probe_avoidance(GOOGLE_SHORT_PARTITION, limit);
        eprintln!("ext_probe_avoidance: bounce limit {limit}...");
        let variant = run_cell(&trace, scheduler, nodes, &base);
        let short = compare(&variant, &hawk, JobClass::Short);
        let long = compare(&variant, &hawk, JobClass::Long);
        tsv_row(&[
            format!("hawk+bounce({limit})"),
            fmt4(short.p50_ratio),
            fmt4(short.p90_ratio),
            fmt4(long.p90_ratio),
            fmt(variant.steals),
        ]);
    }
    eprintln!(
        "ext_probe_avoidance: reference — Hawk/Sparrow short ratios p50 {} p90 {}",
        sparrow_short
            .p50_ratio
            .map_or("-".into(), |r| format!("{r:.4}")),
        sparrow_short
            .p90_ratio
            .map_or("-".into(), |r| format!("{r:.4}")),
    );
    eprintln!("ext_probe_avoidance: done (<1 means the extension beats plain Hawk)");
}
