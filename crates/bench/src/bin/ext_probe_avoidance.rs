//! Extension: long-aware probe bouncing (after Eagle, Hawk's successor).
//!
//! Hawk's distributed schedulers place probes blindly; stealing repairs
//! the bad placements afterwards. Eagle instead prevents them: node
//! monitors know which servers hold long work and short tasks avoid
//! queueing there. This bench evaluates a bounce-based variant of that
//! idea on top of Hawk — a short probe landing on a server with long work
//! retries elsewhere, up to a hop limit — and reports it against plain
//! Hawk and Sparrow.

use hawk_bench::{
    base, fmt, fmt4, google_sensitivity_nodes, google_setup, parse_args, tsv_header, tsv_row,
};
use hawk_core::compare;
use hawk_core::scheduler::{Hawk, Sparrow};
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::JobClass;

const BOUNCE_LIMITS: [u8; 4] = [1, 2, 4, 8];

fn main() {
    let opts = parse_args(
        "ext_probe_avoidance",
        "Eagle-style probe-avoidance extension on top of Hawk",
    );
    let (trace, _) = google_setup(&opts);
    let nodes = google_sensitivity_nodes(&opts);

    eprintln!(
        "ext_probe_avoidance: baselines + {} bounce variants at {nodes} nodes in parallel...",
        BOUNCE_LIMITS.len()
    );
    // Scheduler axis order: hawk, sparrow, then one variant per bounce
    // limit — rows pair with BOUNCE_LIMITS by grid order.
    let mut sweep = base(&opts)
        .nodes(nodes)
        .trace(&trace)
        .sweep()
        .scheduler(Hawk::new(GOOGLE_SHORT_PARTITION))
        .scheduler(Sparrow::new());
    for limit in BOUNCE_LIMITS {
        sweep = sweep.scheduler(Hawk::new(GOOGLE_SHORT_PARTITION).probe_avoidance(limit));
    }
    let results = sweep.run_all();
    assert_eq!(results.cells.len(), 2 + BOUNCE_LIMITS.len());
    let hawk = &results.cells[0].report;
    let sparrow = &results.cells[1].report;
    // Guard the index pairing against any future grid-order change.
    assert_eq!(hawk.scheduler, "hawk");
    assert_eq!(sparrow.scheduler, "sparrow");
    for cell in results.iter().skip(2) {
        assert_eq!(cell.scheduler, "hawk-probe-avoidance");
    }
    let sparrow_short = compare(hawk, sparrow, JobClass::Short);

    tsv_header(&[
        "variant",
        "p50_short_vs_hawk",
        "p90_short_vs_hawk",
        "p90_long_vs_hawk",
        "steals",
    ]);
    tsv_row(&[
        fmt("hawk(plain)"),
        fmt4(1.0),
        fmt4(1.0),
        fmt4(1.0),
        fmt(hawk.steals),
    ]);
    for (limit, cell) in BOUNCE_LIMITS.iter().zip(results.iter().skip(2)) {
        let variant = &cell.report;
        let short = compare(variant, hawk, JobClass::Short);
        let long = compare(variant, hawk, JobClass::Long);
        tsv_row(&[
            format!("hawk+bounce({limit})"),
            fmt4(short.p50_ratio),
            fmt4(short.p90_ratio),
            fmt4(long.p90_ratio),
            fmt(variant.steals),
        ]);
    }
    eprintln!(
        "ext_probe_avoidance: reference — Hawk/Sparrow short ratios p50 {} p90 {}",
        sparrow_short
            .p50_ratio
            .map_or("-".into(), |r| format!("{r:.4}")),
        sparrow_short
            .p90_ratio
            .map_or("-".into(), |r| format!("{r:.4}")),
    );
    eprintln!("ext_probe_avoidance: done (<1 means the extension beats plain Hawk)");
}
