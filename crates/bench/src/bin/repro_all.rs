//! Runs every table/figure regeneration binary in sequence, capturing each
//! TSV into `results/<name>.tsv`.
//!
//! Flags are passed through to every binary, so
//! `repro_all --quick` smoke-runs the whole evaluation and
//! `repro_all --full-trace` reproduces the paper's full configuration.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// Regeneration binaries, in paper order.
const BINARIES: [&str; 13] = [
    "table1", "table2", "fig01", "fig04", "fig05", "fig06", "fig07", "fig08_09", "fig10_11",
    "fig12_13", "fig14", "fig15", "fig16_17",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current executable path");
    let bin_dir = exe.parent().expect("executable directory").to_path_buf();
    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("create results/");

    let mut failures = Vec::new();
    for name in BINARIES {
        let bin = bin_dir.join(name);
        if !bin.exists() {
            eprintln!(
                "repro_all: skipping {name} (binary not built: {})",
                bin.display()
            );
            failures.push(name);
            continue;
        }
        let out_path = out_dir.join(format!("{name}.tsv"));
        eprintln!("repro_all: running {name} -> {}", out_path.display());
        let out_file = fs::File::create(&out_path).expect("create output file");
        let status = Command::new(&bin)
            .args(&args)
            .stdout(Stdio::from(out_file))
            .status()
            .expect("spawn figure binary");
        if !status.success() {
            eprintln!("repro_all: {name} FAILED ({status})");
            failures.push(name);
        }
    }

    if failures.is_empty() {
        eprintln!("repro_all: all outputs written to {}", out_dir.display());
    } else {
        eprintln!("repro_all: failures: {failures:?}");
        std::process::exit(1);
    }
}
