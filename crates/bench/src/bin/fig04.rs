//! Figure 4: workload-property CDFs — average task duration per job
//! (4a long, 4b short) and number of tasks per job (4c long, 4d short)
//! for the Cloudera, Facebook, Yahoo and Google traces.
//!
//! Output: one row per decile per (trace, class, metric) series.

use hawk_bench::{fmt, fmt4, parse_args, tsv_header, tsv_row};
use hawk_simcore::stats::percentile_of_sorted;
use hawk_workload::classify::Cutoff;
use hawk_workload::google::GoogleTraceConfig;
use hawk_workload::kmeans::KmeansTraceConfig;
use hawk_workload::{JobClass, Trace};

fn series(trace: &Trace, class: JobClass, cutoff: Cutoff) -> (Vec<f64>, Vec<f64>) {
    let mut durations = Vec::new();
    let mut counts = Vec::new();
    for job in trace.jobs() {
        let c = job
            .generated_class
            .unwrap_or_else(|| cutoff.classify(job.mean_task_duration()));
        if c == class {
            durations.push(job.mean_task_duration().as_secs_f64());
            counts.push(job.num_tasks() as f64);
        }
    }
    durations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    counts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (durations, counts)
}

fn main() {
    let opts = parse_args("fig04", "workload property CDFs (Figure 4)");
    let jobs = opts.jobs.unwrap_or(40_000);

    let traces: Vec<(&str, Trace, Cutoff)> = vec![
        (
            "cloudera",
            KmeansTraceConfig::cloudera_c(jobs).generate(opts.seed),
            Cutoff::from_secs(KmeansTraceConfig::cloudera_c(jobs).default_cutoff_secs),
        ),
        (
            "facebook",
            KmeansTraceConfig::facebook(jobs).generate(opts.seed),
            Cutoff::from_secs(KmeansTraceConfig::facebook(jobs).default_cutoff_secs),
        ),
        (
            "yahoo",
            KmeansTraceConfig::yahoo(jobs).generate(opts.seed),
            Cutoff::from_secs(KmeansTraceConfig::yahoo(jobs).default_cutoff_secs),
        ),
        (
            "google",
            GoogleTraceConfig::with_scale(1, jobs).generate(opts.seed),
            Cutoff::GOOGLE_DEFAULT,
        ),
    ];

    tsv_header(&["panel", "trace", "class", "cdf_pct", "value"]);
    for (name, trace, cutoff) in &traces {
        for class in [JobClass::Long, JobClass::Short] {
            let (durations, counts) = series(trace, class, *cutoff);
            if durations.is_empty() {
                continue;
            }
            let (dur_panel, cnt_panel) = match class {
                JobClass::Long => ("4a_task_duration", "4c_tasks_per_job"),
                JobClass::Short => ("4b_task_duration", "4d_tasks_per_job"),
            };
            for pct in (10..=100).step_by(10) {
                tsv_row(&[
                    fmt(dur_panel),
                    fmt(*name),
                    fmt(class),
                    fmt(pct),
                    fmt4(percentile_of_sorted(&durations, pct as f64)),
                ]);
            }
            for pct in (10..=100).step_by(10) {
                tsv_row(&[
                    fmt(cnt_panel),
                    fmt(*name),
                    fmt(class),
                    fmt(pct),
                    fmt4(percentile_of_sorted(&counts, pct as f64)),
                ]);
            }
        }
    }
    eprintln!("fig04: done ({jobs} jobs per trace)");
}
