//! Serving-mode smoke: admission control under a saturating burst.
//!
//! Runs one Hawk cell whose bursty saturation arrivals push offered load
//! to ~130 % of cluster capacity overall (the middle-third plateau runs
//! far hotter), once without admission control and once with the
//! standard gate, and asserts the serving-mode contract end to end:
//!
//! 1. the gate engages — nonzero long-job sheds and deferrals, and the
//!    protected short class is never shed;
//! 2. queue depth stays bounded — the peak windowed backlog with the
//!    gate on is a fraction of the ungated peak, and under an absolute
//!    cap;
//! 3. the run is byte-deterministic — two gated runs produce identical
//!    reports, fingerprint and all.
//!
//! Any violated claim aborts the smoke with a nonzero exit, so the CI
//! leg fails the way a broken digest fails the golden tests.
//!
//! Usage: `saturation_smoke` (no arguments; the cell is pinned).

use std::sync::Arc;

use hawk_core::scheduler::{Hawk, Scheduler};
use hawk_core::{AdmissionPolicy, Experiment, MetricsReport};
use hawk_simcore::SimDuration;
use hawk_workload::google::GOOGLE_SHORT_PARTITION;
use hawk_workload::scenario::{ArrivalSpec, ScenarioSpec, TraceFamily};
use hawk_workload::Trace;

/// Cluster size of the smoke cell (the golden-cell geometry).
const NODES: usize = 300;

/// Jobs in the smoke trace: enough for the plateau to saturate every
/// queue, small enough to run in seconds in CI.
const JOBS: usize = 400;

/// Trace / experiment seeds (the golden pair, frozen).
const TRACE_SEED: u64 = 0xDE7E12;
const SIM_SEED: u64 = 0x5EED_601D;

/// Saturation arrivals: calm thirds every ~115 s, the middle third 6x
/// faster. On this trace's total work the overall offered load lands at
/// ~1.3x usable capacity — the plateau alone runs several-x hotter.
const CALM_MEAN_SECS: u64 = 115;
const OVERLOAD: f64 = 6.0;

/// Live window for the backlog gauge: sized so the whole run fits in
/// the 16-window ring and the peak backlog is never rotated out.
const LIVE_WINDOW_SECS: u64 = 2_400;

/// Absolute cap on the gated peak backlog (jobs offered but neither
/// resolved nor shed at a window close). The ungated run peaks around
/// the full plateau depth; the gate must keep the peak under this.
const MAX_GATED_BACKLOG: u64 = 120;

/// The gate: nominal-capacity budget windows, shorts protected, longs
/// deferred up to 4 windows before shedding.
fn policy() -> AdmissionPolicy {
    AdmissionPolicy {
        window: SimDuration::from_secs(300),
        headroom: 1.0,
        max_defer_windows: 4,
        protect_short: true,
    }
}

fn scenario() -> ScenarioSpec {
    ScenarioSpec::new(TraceFamily::Google { scale: 10 }, JOBS).arrivals(ArrivalSpec::Saturation {
        mean: SimDuration::from_secs(CALM_MEAN_SECS),
        overload: OVERLOAD,
    })
}

fn run_cell(trace: &Arc<Trace>, admission: Option<AdmissionPolicy>) -> MetricsReport {
    let mut builder = Experiment::builder()
        .trace(trace)
        .scheduler_shared(Arc::new(Hawk::new(GOOGLE_SHORT_PARTITION)) as Arc<dyn Scheduler>)
        .nodes(NODES)
        .seed(SIM_SEED)
        .live_window(SimDuration::from_secs(LIVE_WINDOW_SECS));
    if let Some(policy) = admission {
        builder = builder.admission(policy);
    }
    builder.build().run()
}

/// Peak windowed backlog across the retained live windows.
fn peak_backlog(report: &MetricsReport) -> u64 {
    report
        .live
        .as_ref()
        .expect("live_window was set")
        .windows
        .iter()
        .map(|w| w.backlog)
        .max()
        .expect("the run closed no live windows")
}

/// FNV-1a fingerprint over the fields that define the run's outcome:
/// per-job results, admission counters and the streamed populations.
fn fingerprint(report: &MetricsReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in &report.results {
        mix(r.job.0 as u64);
        mix(r.submission.as_micros());
        mix(r.completion.as_micros());
    }
    mix(report.admission.sheds_short);
    mix(report.admission.sheds_long);
    mix(report.admission.deferrals_short);
    mix(report.admission.deferrals_long);
    mix(report.streaming.short.jobs);
    mix(report.streaming.long.jobs);
    h
}

fn main() {
    let trace = Arc::new(scenario().trace(TRACE_SEED));
    let span = trace
        .jobs()
        .last()
        .expect("nonempty trace")
        .submission
        .as_secs_f64();
    let offered = trace.total_task_seconds().as_secs_f64() / (span * NODES as f64);
    eprintln!(
        "saturation_smoke: {JOBS} jobs on {NODES} nodes, offered load {:.2}x \
         over a {:.0} s arrival span (plateau {OVERLOAD}x)",
        offered, span
    );
    assert!(
        offered > 1.1,
        "the smoke cell is not saturating: offered load {offered:.2}x"
    );

    let ungated = run_cell(&trace, None);
    let gated = run_cell(&trace, Some(policy()));

    // Claim 1: the gate engaged, and only ever against longs.
    assert!(gated.admission.sheds() > 0, "the gate never shed");
    assert!(gated.admission.deferrals() > 0, "the gate never deferred");
    assert_eq!(gated.admission.sheds_short, 0, "protected shorts were shed");
    assert_eq!(ungated.admission.sheds(), 0, "ungated run shed jobs");
    assert_eq!(gated.results.len(), JOBS, "gated run lost jobs");

    // Claim 2: bounded queue depth. The ungated plateau backlog is the
    // baseline; the gate must cut the peak and stay under the cap.
    let peak_ungated = peak_backlog(&ungated);
    let peak_gated = peak_backlog(&gated);
    eprintln!(
        "  peak windowed backlog: {peak_ungated} ungated -> {peak_gated} gated \
         ({} sheds, {} deferrals; makespan {:.0} s -> {:.0} s)",
        gated.admission.sheds(),
        gated.admission.deferrals(),
        ungated.makespan.as_secs_f64(),
        gated.makespan.as_secs_f64(),
    );
    assert!(
        peak_gated <= peak_ungated,
        "the gate grew the peak backlog ({peak_gated} vs {peak_ungated})"
    );
    assert!(
        peak_gated <= MAX_GATED_BACKLOG,
        "gated peak backlog {peak_gated} exceeds the {MAX_GATED_BACKLOG} cap"
    );
    // The backlog gauge counts jobs, and the protected shorts dominate by
    // count — the decisive boundedness signal is the drain time: shedding
    // a handful of plateau longs must pull the whole tail in hard.
    let drain_ratio = gated.makespan.as_secs_f64() / ungated.makespan.as_secs_f64();
    assert!(
        drain_ratio <= 0.75,
        "the gate did not bound the drain: gated makespan is {:.2}x the ungated one",
        drain_ratio
    );

    // Claim 3: byte-determinism of the gated run.
    let again = run_cell(&trace, Some(policy()));
    let digest = fingerprint(&gated);
    assert_eq!(
        digest,
        fingerprint(&again),
        "two gated saturation runs diverged"
    );
    eprintln!("  deterministic fingerprint {digest:#018x}");
    eprintln!("saturation_smoke: OK");
}
