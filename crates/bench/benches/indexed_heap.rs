//! Microbenchmark: the centralized scheduler's waiting-time priority
//! queue (§3.7) at realistic cluster sizes.
//!
//! Every long-job task assignment is one `min_id` + `add`; every
//! completion is one `sub`. At 50,000 servers and hundreds of thousands of
//! long tasks this structure must stay O(log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hawk_core::CentralScheduler;
use hawk_simcore::{IndexedMinHeap, SimDuration, SimRng};

fn bench_heap_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_heap");
    for &servers in &[1_500usize, 15_000, 50_000] {
        let ops = 10_000u64;
        group.throughput(Throughput::Elements(ops));
        group.bench_with_input(
            BenchmarkId::new("assign_complete_cycle", servers),
            &servers,
            |b, &servers| {
                let mut rng = SimRng::seed_from_u64(3);
                b.iter(|| {
                    let mut heap = IndexedMinHeap::new(servers, 0);
                    // Assign phase: always load the least-loaded server.
                    let mut assigned = Vec::with_capacity(ops as usize);
                    for _ in 0..ops {
                        let id = heap.min_id();
                        let est = rng.gen_range(1_000, 1_000_000);
                        heap.add(id, est);
                        assigned.push((id, est));
                    }
                    // Completion phase, in random order.
                    rng.shuffle(&mut assigned);
                    for (id, est) in assigned {
                        heap.sub(id, est);
                    }
                    heap.min_key()
                });
            },
        );
    }
    group.finish();
}

fn bench_central_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("central_scheduler");
    // One paper-sized long job: 1,000 tasks placed on the general
    // partition of a 15,000-node cluster (83 % general).
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("assign_1000_task_job_12450_servers", |b| {
        b.iter(|| {
            let mut sched = CentralScheduler::new(12_450);
            sched.assign_job(1_000, SimDuration::from_secs(20_000))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_heap_cycle, bench_central_scheduler);
criterion_main!(benches);
