//! Microbenchmark: synthetic trace generation throughput.
//!
//! Paper-scale experiments regenerate half-million-job traces; generation
//! must stay a small fraction of simulation time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hawk_workload::google::GoogleTraceConfig;
use hawk_workload::kmeans::KmeansTraceConfig;
use hawk_workload::motivation::MotivationConfig;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for &jobs in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(BenchmarkId::new("google", jobs), &jobs, |b, &jobs| {
            let cfg = GoogleTraceConfig::with_scale(1, jobs);
            b.iter(|| cfg.generate(42));
        });
        group.bench_with_input(BenchmarkId::new("facebook", jobs), &jobs, |b, &jobs| {
            let cfg = KmeansTraceConfig::facebook(jobs);
            b.iter(|| cfg.generate(42));
        });
        group.bench_with_input(BenchmarkId::new("yahoo", jobs), &jobs, |b, &jobs| {
            let cfg = KmeansTraceConfig::yahoo(jobs);
            b.iter(|| cfg.generate(42));
        });
    }
    group.bench_function("motivation_1000", |b| {
        let cfg = MotivationConfig::default();
        b.iter(|| cfg.generate(42));
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
