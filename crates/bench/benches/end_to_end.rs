//! End-to-end simulation throughput: one loaded experiment cell per
//! scheduler, reported as simulation events per second.
//!
//! This is the quantity that bounds the wall-clock cost of regenerating
//! the paper's figures (Figure 5 alone is 18 paper-scale cells).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hawk_core::scheduler::{Centralized, Hawk, Scheduler, Sparrow, SplitCluster};
use hawk_core::Experiment;
use hawk_workload::google::GoogleTraceConfig;

fn bench_schedulers(c: &mut Criterion) {
    // A 100×-scaled high-load cell: 150 nodes ≈ the 15,000-node point.
    let trace = Arc::new(GoogleTraceConfig::with_scale(100, 600).generate(7));
    let base = Experiment::builder().nodes(150).trace(&trace);
    let events = base.clone().scheduler(Hawk::new(0.17)).run().events;

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    let schedulers: Vec<Arc<dyn Scheduler>> = vec![
        Arc::new(Hawk::new(0.17)),
        Arc::new(Sparrow::new()),
        Arc::new(Centralized::new()),
        Arc::new(SplitCluster::new(0.17)),
        Arc::new(Hawk::new(0.17).without_stealing()),
    ];
    for scheduler in schedulers {
        let cell = base
            .clone()
            .scheduler_shared(Arc::clone(&scheduler))
            .build();
        group.bench_function(scheduler.name(), |b| {
            b.iter(|| cell.run());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
