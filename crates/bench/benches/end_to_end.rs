//! End-to-end simulation throughput: one loaded experiment cell per
//! scheduler, reported as simulation events per second.
//!
//! This is the quantity that bounds the wall-clock cost of regenerating
//! the paper's figures (Figure 5 alone is 18 paper-scale cells).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hawk_core::{run_experiment, ExperimentConfig, SchedulerConfig};
use hawk_workload::google::GoogleTraceConfig;

fn bench_schedulers(c: &mut Criterion) {
    // A 100×-scaled high-load cell: 150 nodes ≈ the 15,000-node point.
    let trace = GoogleTraceConfig::with_scale(100, 600).generate(7);
    let events = {
        let cfg = ExperimentConfig {
            nodes: 150,
            scheduler: SchedulerConfig::hawk(0.17),
            ..ExperimentConfig::default()
        };
        run_experiment(&trace, &cfg).events
    };

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    for scheduler in [
        SchedulerConfig::hawk(0.17),
        SchedulerConfig::sparrow(),
        SchedulerConfig::centralized(),
        SchedulerConfig::split_cluster(0.17),
        SchedulerConfig::hawk_without_stealing(0.17),
    ] {
        group.bench_function(scheduler.name, |b| {
            let cfg = ExperimentConfig {
                nodes: 150,
                scheduler,
                ..ExperimentConfig::default()
            };
            b.iter(|| run_experiment(&trace, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
