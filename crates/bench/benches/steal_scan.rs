//! Microbenchmark: the Figure 3 victim-queue steal scan (§3.6).
//!
//! Every idle transition in Hawk triggers up to `cap` victim scans, so the
//! scan must be cheap both when it succeeds and (especially) when the
//! fast-path rejects an ineligible victim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hawk_cluster::steal::eligible_group;
use hawk_cluster::{QueueEntry, QueueSlab, Server, ServerId, TaskSpec};
use hawk_simcore::{SimDuration, SimRng};
use hawk_workload::{JobClass, JobId};

fn entry(long: bool, id: u32) -> QueueEntry {
    if long {
        QueueEntry::Task(TaskSpec {
            job: JobId(id),
            duration: SimDuration::from_secs(20_000),
            estimate: SimDuration::from_secs(20_000),
            class: JobClass::Long,
            task: 0,
            attempt: 0,
        })
    } else {
        QueueEntry::Probe {
            job: JobId(id),
            class: JobClass::Short,
        }
    }
}

/// Builds a busy server with `len` queued entries, `long_frac` of them
/// long, in random order.
fn victim(len: usize, long_frac: f64, seed: u64) -> (QueueSlab, Server) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut q = QueueSlab::new(1);
    let mut s = Server::new(ServerId(0));
    s.enqueue(&mut q, entry(true, 0)); // occupies the slot (a long task)
    for i in 0..len {
        s.enqueue(&mut q, entry(rng.chance(long_frac), i as u32 + 1));
    }
    (q, s)
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("steal_scan");
    for &len in &[8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::new("mixed_queue", len), &len, |b, &len| {
            let (q, s) = victim(len, 0.3, 7);
            b.iter(|| eligible_group(&s, &q));
        });
        group.bench_with_input(
            BenchmarkId::new("all_short_fast_path", len),
            &len,
            |b, &len| {
                // Short slot + all-short queue: the queued-long counter
                // rejects in O(1).
                let mut q = QueueSlab::new(1);
                let mut s = Server::new(ServerId(0));
                s.enqueue(&mut q, entry(false, 0));
                // Bind the probe so the slot is Running(short).
                s.on_bind_response(
                    &mut q,
                    Some(TaskSpec {
                        job: JobId(0),
                        duration: SimDuration::from_secs(1),
                        estimate: SimDuration::from_secs(1),
                        class: JobClass::Short,
                        task: 0,
                        attempt: 0,
                    }),
                );
                for i in 0..len {
                    s.enqueue(&mut q, entry(false, i as u32 + 1));
                }
                b.iter(|| eligible_group(&s, &q));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
