//! Microbenchmark: future-event-list throughput.
//!
//! The simulator's hot loop is dominated by event-queue pushes and pops;
//! a paper-scale Figure 5 sweep processes hundreds of millions of events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hawk_simcore::{EventQueue, SimRng, SimTime};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_then_drain", n), &n, |b, &n| {
            let mut rng = SimRng::seed_from_u64(1);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_micros(rng.gen_range(0, 1_000_000_000)))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i as u32);
                }
                let mut last = SimTime::ZERO;
                while let Some((t, _)) = q.pop() {
                    debug_assert!(t >= last);
                    last = t;
                }
                last
            });
        });
        // The steady-state pattern: interleaved push/pop at constant size.
        group.bench_with_input(BenchmarkId::new("steady_state", n), &n, |b, &n| {
            let mut rng = SimRng::seed_from_u64(2);
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(SimTime::from_micros(rng.gen_range(0, 1 << 30)), i as u32);
                }
                let mut acc = 0u64;
                for _ in 0..n {
                    let (t, _) = q.pop().expect("non-empty");
                    acc = acc.wrapping_add(t.as_micros());
                    q.push(
                        t + hawk_simcore::SimDuration::from_micros(rng.gen_range(1, 1_000)),
                        0,
                    );
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_push_pop);
criterion_main!(benches);
