//! A slab arena of queue nodes threaded into intrusive FIFO lists.
//!
//! [`EntrySlab`] backs every per-server queue of a simulated cluster with
//! *one* contiguous allocation instead of one heap object per server.
//! Each list is an intrusive singly-linked FIFO whose nodes live in the
//! shared `nodes` vector; freed nodes are recycled through an internal
//! free list, so a cluster that has reached its high-water mark of queued
//! entries never allocates again.
//!
//! # Invariants
//!
//! * **One list per owner** — list ids are dense (`0..num_lists`), fixed at
//!   construction; in `hawk-cluster` list `i` is server `i`'s queue.
//! * **O(1) push/pop/unlink** — [`EntrySlab::push_back`],
//!   [`EntrySlab::pop_front`] and [`EntrySlab::unlink_after`] touch a
//!   constant number of nodes; [`EntrySlab::unlink_run_into`] is O(run
//!   length). No operation walks a list except the iterators.
//! * **No allocation after warm-up** — nodes are recycled LIFO through the
//!   free list; the arena grows only when the total live population
//!   exceeds every previous peak ([`EntrySlab::allocated_nodes`] is
//!   monotone). [`EntrySlab::reserve_nodes`] pre-warms the arena.
//! * **FIFO order** — per list, values come out of `pop_front`/iteration
//!   in `push_back` order, with unlinked nodes excised in place.
//!
//! Values are `Copy` so a pop moves the value out by copy and the node's
//! slot can be recycled without per-node `Option` tagging.
//!
//! # Examples
//!
//! ```
//! use hawk_simcore::EntrySlab;
//!
//! let mut slab: EntrySlab<u32> = EntrySlab::new(2);
//! slab.push_back(0, 10);
//! slab.push_back(1, 99);
//! slab.push_back(0, 11);
//! assert_eq!(slab.iter(0).copied().collect::<Vec<_>>(), vec![10, 11]);
//! assert_eq!(slab.pop_front(0), Some(10));
//! assert_eq!(slab.pop_front(1), Some(99));
//! assert_eq!(slab.len(0), 1);
//! ```

/// Sentinel node index: "no node".
const NIL: u32 = u32::MAX;

/// One arena node: a value plus the intrusive `next` link (also used to
/// chain the free list).
#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    next: u32,
}

/// Head/tail/length of one intrusive FIFO list.
#[derive(Debug, Clone, Copy)]
struct ListEnds {
    head: u32,
    tail: u32,
    len: u32,
}

impl ListEnds {
    const EMPTY: ListEnds = ListEnds {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// A slab arena of entries threaded into per-owner intrusive FIFO lists
/// with free-list recycling. See the module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct EntrySlab<T> {
    nodes: Vec<Node<T>>,
    lists: Vec<ListEnds>,
    /// Head of the LIFO free list, chained through `Node::next`.
    free_head: u32,
    free_len: usize,
}

impl<T: Copy> EntrySlab<T> {
    /// Creates a slab with `lists` empty lists and no nodes.
    pub fn new(lists: usize) -> Self {
        Self::with_node_capacity(lists, 0)
    }

    /// Creates a slab with `lists` empty lists and arena capacity for
    /// `nodes` entries (warm-up ahead of time).
    pub fn with_node_capacity(lists: usize, nodes: usize) -> Self {
        EntrySlab {
            nodes: Vec::with_capacity(nodes),
            lists: vec![ListEnds::EMPTY; lists],
            free_head: NIL,
            free_len: 0,
        }
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Number of entries in `list`.
    pub fn len(&self, list: usize) -> usize {
        self.lists[list].len as usize
    }

    /// True if `list` holds no entries.
    pub fn is_empty(&self, list: usize) -> bool {
        self.lists[list].len == 0
    }

    /// Total nodes ever created (live + free). Monotone: this grows only
    /// when the live population exceeds every previous peak, which is the
    /// no-allocation-after-warm-up invariant in measurable form.
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes currently on the free list.
    pub fn free_nodes(&self) -> usize {
        self.free_len
    }

    /// Grows the arena so at least `total` nodes exist without further
    /// allocation (no-op if already that large).
    pub fn reserve_nodes(&mut self, total: usize) {
        self.nodes.reserve(total.saturating_sub(self.nodes.len()));
    }

    /// Takes a node off the free list, or grows the arena by one.
    fn alloc_node(&mut self, value: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            self.free_len -= 1;
            node.value = value;
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "EntrySlab overflow: 2^32-1 nodes");
            self.nodes.push(Node { value, next: NIL });
            idx
        }
    }

    /// Returns a node to the free list.
    fn free_node(&mut self, idx: u32) {
        self.nodes[idx as usize].next = self.free_head;
        self.free_head = idx;
        self.free_len += 1;
    }

    /// Appends `value` to the tail of `list`. O(1).
    pub fn push_back(&mut self, list: usize, value: T) {
        let idx = self.alloc_node(value);
        let ends = &mut self.lists[list];
        if ends.tail == NIL {
            ends.head = idx;
        } else {
            self.nodes[ends.tail as usize].next = idx;
        }
        ends.tail = idx;
        ends.len += 1;
    }

    /// Inserts `value` after `prev` in `list` (`None` prepends at the
    /// head). O(1) given the predecessor; callers that need a positional
    /// insert walk the list to find it.
    pub fn insert_after(&mut self, list: usize, prev: Option<u32>, value: T) {
        let idx = self.alloc_node(value);
        match prev {
            None => {
                let head = self.lists[list].head;
                self.nodes[idx as usize].next = head;
                let ends = &mut self.lists[list];
                ends.head = idx;
                if ends.tail == NIL {
                    ends.tail = idx;
                }
            }
            Some(p) => {
                let next = self.nodes[p as usize].next;
                self.nodes[p as usize].next = idx;
                self.nodes[idx as usize].next = next;
                if self.lists[list].tail == p {
                    self.lists[list].tail = idx;
                }
            }
        }
        self.lists[list].len += 1;
    }

    /// Removes and returns the head of `list`, or `None` if empty. O(1).
    pub fn pop_front(&mut self, list: usize) -> Option<T> {
        let ends = &mut self.lists[list];
        if ends.head == NIL {
            return None;
        }
        let idx = ends.head;
        let node = &self.nodes[idx as usize];
        let value = node.value;
        ends.head = node.next;
        if ends.head == NIL {
            ends.tail = NIL;
        }
        ends.len -= 1;
        self.free_node(idx);
        Some(value)
    }

    /// The head node index of `list`, or `None` if empty.
    pub fn head(&self, list: usize) -> Option<u32> {
        let h = self.lists[list].head;
        (h != NIL).then_some(h)
    }

    /// The tail node index of `list`, or `None` if empty. O(1).
    pub fn tail(&self, list: usize) -> Option<u32> {
        let t = self.lists[list].tail;
        (t != NIL).then_some(t)
    }

    /// The node following `node` in its list, or `None` at the tail.
    ///
    /// Valid only for live (linked) nodes.
    pub fn next(&self, node: u32) -> Option<u32> {
        let n = self.nodes[node as usize].next;
        (n != NIL).then_some(n)
    }

    /// The value stored at a live node.
    pub fn value(&self, node: u32) -> &T {
        &self.nodes[node as usize].value
    }

    /// Iterates `list` head to tail.
    pub fn iter(&self, list: usize) -> impl Iterator<Item = &T> {
        let mut cur = self.lists[list].head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let node = &self.nodes[cur as usize];
            cur = node.next;
            Some(&node.value)
        })
    }

    /// Unlinks and returns the value of `node`, whose predecessor in
    /// `list` is `prev` (`None` when `node` is the head). O(1).
    ///
    /// The caller supplies the predecessor (found during its scan) because
    /// a singly-linked node cannot name it; passing the wrong predecessor
    /// corrupts the list, so debug builds verify the link.
    pub fn unlink_after(&mut self, list: usize, prev: Option<u32>, node: u32) -> T {
        let next = self.nodes[node as usize].next;
        let value = self.nodes[node as usize].value;
        let ends = &mut self.lists[list];
        match prev {
            None => {
                debug_assert_eq!(ends.head, node, "unlink_after: bad head predecessor");
                ends.head = next;
            }
            Some(p) => {
                debug_assert_eq!(
                    self.nodes[p as usize].next, node,
                    "unlink_after: bad predecessor"
                );
                self.nodes[p as usize].next = next;
            }
        }
        if next == NIL {
            self.lists[list].tail = prev.unwrap_or(NIL);
        }
        self.lists[list].len -= 1;
        self.free_node(node);
        value
    }

    /// Unlinks the run of `count` consecutive nodes starting at `start`
    /// (predecessor `prev`, `None` when `start` is the head), appending
    /// their values to `out` in list order. O(count).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via link checks, in release by index
    /// errors) if the run walks off the end of the list.
    pub fn unlink_run_into(
        &mut self,
        list: usize,
        prev: Option<u32>,
        start: u32,
        count: usize,
        out: &mut Vec<T>,
    ) {
        if count == 0 {
            return;
        }
        let mut cur = start;
        // Successor of the last node taken, captured before `free_node`
        // repurposes its `next` link for the free chain.
        let mut after = NIL;
        for taken in 0..count {
            let node = &self.nodes[cur as usize];
            out.push(node.value);
            after = node.next;
            self.free_node(cur);
            if taken + 1 < count {
                debug_assert!(after != NIL, "unlink_run_into: run past the tail");
                cur = after;
            }
        }
        let ends = &mut self.lists[list];
        match prev {
            None => ends.head = after,
            Some(p) => self.nodes[p as usize].next = after,
        }
        if after == NIL {
            self.lists[list].tail = prev.unwrap_or(NIL);
        }
        self.lists[list].len -= count as u32;
    }

    /// Checks arena-wide invariants: every list's length matches a walk,
    /// the free-list length matches, and live + free node counts cover the
    /// arena exactly.
    pub fn check_invariants(&self) -> bool {
        let mut live = 0usize;
        for (i, ends) in self.lists.iter().enumerate() {
            let mut n = 0usize;
            let mut cur = ends.head;
            let mut last = NIL;
            while cur != NIL {
                last = cur;
                cur = self.nodes[cur as usize].next;
                n += 1;
                if n > self.nodes.len() {
                    return false; // cycle
                }
            }
            if n != ends.len as usize || last != ends.tail {
                return false;
            }
            let _ = i;
            live += n;
        }
        let mut free = 0usize;
        let mut cur = self.free_head;
        while cur != NIL {
            cur = self.nodes[cur as usize].next;
            free += 1;
            if free > self.nodes.len() {
                return false;
            }
        }
        free == self.free_len && live + free == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_list_and_isolation() {
        let mut s: EntrySlab<u32> = EntrySlab::new(3);
        for v in 0..5 {
            s.push_back(0, v);
            s.push_back(2, 100 + v);
        }
        assert_eq!(s.len(0), 5);
        assert_eq!(s.len(1), 0);
        assert!(s.is_empty(1));
        for v in 0..5 {
            assert_eq!(s.pop_front(0), Some(v));
        }
        assert_eq!(s.pop_front(0), None);
        assert_eq!(
            s.iter(2).copied().collect::<Vec<_>>(),
            vec![100, 101, 102, 103, 104]
        );
        assert!(s.check_invariants());
    }

    #[test]
    fn free_list_recycles_nodes() {
        let mut s: EntrySlab<u32> = EntrySlab::new(1);
        for v in 0..8 {
            s.push_back(0, v);
        }
        let peak = s.allocated_nodes();
        assert_eq!(peak, 8);
        for _ in 0..8 {
            s.pop_front(0);
        }
        assert_eq!(s.free_nodes(), 8);
        // Churn far past the original population: the arena must not grow.
        for round in 0..100u32 {
            for v in 0..8 {
                s.push_back(0, round * 10 + v);
            }
            for _ in 0..8 {
                s.pop_front(0);
            }
        }
        assert_eq!(s.allocated_nodes(), peak);
        assert!(s.check_invariants());
    }

    #[test]
    fn unlink_after_head_middle_tail() {
        let mut s: EntrySlab<u32> = EntrySlab::new(1);
        for v in 0..5 {
            s.push_back(0, v);
        }
        // Middle: value 2, predecessor node of value 1.
        let n0 = s.head(0).unwrap();
        let n1 = s.next(n0).unwrap();
        let n2 = s.next(n1).unwrap();
        assert_eq!(s.unlink_after(0, Some(n1), n2), 2);
        // Head.
        assert_eq!(s.unlink_after(0, None, n0), 0);
        // Tail: list is now [1, 3, 4]; unlink 4.
        let h = s.head(0).unwrap();
        let m = s.next(h).unwrap();
        let t = s.next(m).unwrap();
        assert_eq!(s.unlink_after(0, Some(m), t), 4);
        assert_eq!(s.iter(0).copied().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.len(0), 2);
        assert!(s.check_invariants());
        // Pushing appends after the surviving tail.
        s.push_back(0, 9);
        assert_eq!(s.iter(0).copied().collect::<Vec<_>>(), vec![1, 3, 9]);
    }

    #[test]
    fn unlink_run_excises_in_order() {
        let mut s: EntrySlab<u32> = EntrySlab::new(1);
        for v in 0..6 {
            s.push_back(0, v);
        }
        let n0 = s.head(0).unwrap();
        let n1 = s.next(n0).unwrap();
        let mut out = Vec::new();
        s.unlink_run_into(0, Some(n0), n1, 3, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(s.iter(0).copied().collect::<Vec<_>>(), vec![0, 4, 5]);
        assert_eq!(s.len(0), 3);
        assert!(s.check_invariants());
        // Run reaching the tail fixes the tail pointer.
        let h = s.head(0).unwrap();
        let m = s.next(h).unwrap();
        out.clear();
        s.unlink_run_into(0, Some(h), m, 2, &mut out);
        assert_eq!(out, vec![4, 5]);
        s.push_back(0, 7);
        assert_eq!(s.iter(0).copied().collect::<Vec<_>>(), vec![0, 7]);
        assert!(s.check_invariants());
    }

    #[test]
    fn unlink_whole_list_from_head() {
        let mut s: EntrySlab<u32> = EntrySlab::new(2);
        for v in 0..4 {
            s.push_back(1, v);
        }
        let h = s.head(1).unwrap();
        let mut out = Vec::new();
        s.unlink_run_into(1, None, h, 4, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(s.is_empty(1));
        assert_eq!(s.head(1), None);
        assert!(s.check_invariants());
        s.push_back(1, 42);
        assert_eq!(s.pop_front(1), Some(42));
    }

    #[test]
    fn insert_after_head_middle_tail() {
        let mut s: EntrySlab<u32> = EntrySlab::new(1);
        // Head insert into an empty list sets both ends.
        s.insert_after(0, None, 5);
        assert_eq!(s.iter(0).copied().collect::<Vec<_>>(), vec![5]);
        s.push_back(0, 7);
        // Head insert with entries present.
        s.insert_after(0, None, 3);
        // Middle insert.
        let head = s.head(0).unwrap();
        s.insert_after(0, Some(head), 4);
        // Tail insert moves the tail pointer.
        let mut tail = s.head(0).unwrap();
        while let Some(next) = s.next(tail) {
            tail = next;
        }
        s.insert_after(0, Some(tail), 9);
        assert_eq!(s.iter(0).copied().collect::<Vec<_>>(), vec![3, 4, 5, 7, 9]);
        s.push_back(0, 11);
        assert_eq!(
            s.iter(0).copied().collect::<Vec<_>>(),
            vec![3, 4, 5, 7, 9, 11]
        );
        assert!(s.check_invariants());
    }

    #[test]
    fn zero_count_run_is_a_no_op() {
        let mut s: EntrySlab<u32> = EntrySlab::new(1);
        s.push_back(0, 1);
        let h = s.head(0).unwrap();
        let mut out = Vec::new();
        s.unlink_run_into(0, None, h, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(s.len(0), 1);
    }

    #[test]
    fn reserve_prewarms_without_visible_change() {
        let mut s: EntrySlab<u8> = EntrySlab::with_node_capacity(1, 16);
        s.reserve_nodes(64);
        assert_eq!(s.allocated_nodes(), 0);
        assert_eq!(s.num_lists(), 1);
        s.push_back(0, 1);
        assert_eq!(s.allocated_nodes(), 1);
    }
}
