//! Summary statistics for the evaluation harness.
//!
//! The paper reports 50th/90th percentile job runtimes, medians of
//! utilization snapshots, CDFs (Figures 1 and 4) and averages. These helpers
//! implement those reductions with a fixed, documented percentile method so
//! results are reproducible.

use serde::{Deserialize, Serialize};

/// Returns the `p`-th percentile (0.0–100.0) of `values` using linear
/// interpolation between closest ranks (the same method as `numpy.percentile`
/// default).
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use hawk_simcore::stats::percentile;
///
/// let v = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.5));
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// assert_eq!(percentile(&v, 0.0), Some(1.0));
/// assert_eq!(percentile(&[][..].to_vec(), 50.0), None);
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already ascending-sorted slice (no copy, no sort).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Returns the median of `values`, or `None` if empty.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Returns the arithmetic mean, or `None` if empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// One point of an empirical CDF: `fraction` of values are `<= value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// The sample value.
    pub value: f64,
    /// Cumulative fraction in `(0, 1]`.
    pub fraction: f64,
}

/// Builds the empirical CDF of `values` as ascending points.
///
/// Duplicate values are merged into a single point carrying the highest
/// cumulative fraction, which is how the paper's CDF plots render.
///
/// # Examples
///
/// ```
/// use hawk_simcore::stats::cdf;
///
/// let points = cdf(&[3.0, 1.0, 3.0, 2.0]);
/// assert_eq!(points.len(), 3);
/// assert_eq!(points[0].value, 1.0);
/// assert!((points[0].fraction - 0.25).abs() < 1e-12);
/// assert_eq!(points[2].value, 3.0);
/// assert!((points[2].fraction - 1.0).abs() < 1e-12);
/// ```
pub fn cdf(values: &[f64]) -> Vec<CdfPoint> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("cdf: NaN in input"));
    let n = sorted.len() as f64;
    let mut out: Vec<CdfPoint> = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        let fraction = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.value == v => last.fraction = fraction,
            _ => out.push(CdfPoint { value: v, fraction }),
        }
    }
    out
}

/// Evaluates an empirical CDF at `x`: the fraction of samples `<= x`.
pub fn cdf_at(points: &[CdfPoint], x: f64) -> f64 {
    let mut frac = 0.0;
    for p in points {
        if p.value <= x {
            frac = p.fraction;
        } else {
            break;
        }
    }
    frac
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used for utilization snapshots and other per-run series where storing
/// every sample would be wasteful.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(5.5));
        assert_eq!(percentile(&v, 90.0), Some(9.1));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(10.0));
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[42.0], 90.0), Some(42.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let v = vec![1.0, 2.0];
        assert_eq!(percentile(&v, -5.0), Some(1.0));
        assert_eq!(percentile(&v, 150.0), Some(2.0));
    }

    #[test]
    fn median_and_mean() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let v = vec![5.0, 1.0, 1.0, 3.0, 5.0, 5.0];
        let points = cdf(&v);
        assert_eq!(points.len(), 3);
        for w in points.windows(2) {
            assert!(w[0].value < w[1].value);
            assert!(w[0].fraction < w[1].fraction);
        }
        assert!((points.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_steps() {
        let points = cdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf_at(&points, 0.5), 0.0);
        assert!((cdf_at(&points, 2.0) - 0.5).abs() < 1e-12);
        assert!((cdf_at(&points, 2.5) - 0.5).abs() < 1e-12);
        assert!((cdf_at(&points, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty() {
        assert!(cdf(&[]).is_empty());
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    fn online_stats_matches_batch() {
        let v: Vec<f64> = (0..100).map(|x| (x as f64) * 0.7 - 3.0).collect();
        let mut s = OnlineStats::new();
        for &x in &v {
            s.push(x);
        }
        let batch_mean = mean(&v).unwrap();
        assert!((s.mean().unwrap() - batch_mean).abs() < 1e-9);
        let batch_var = v.iter().map(|x| (x - batch_mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((s.variance().unwrap() - batch_var).abs() < 1e-9);
        assert_eq!(s.min().unwrap(), -3.0);
        assert_eq!(s.max().unwrap(), 99.0 * 0.7 - 3.0);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }
}
