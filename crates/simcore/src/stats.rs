//! Summary statistics for the evaluation harness.
//!
//! The paper reports 50th/90th percentile job runtimes, medians of
//! utilization snapshots, CDFs (Figures 1 and 4) and averages. These helpers
//! implement those reductions with a fixed, documented percentile method so
//! results are reproducible.

use serde::{Deserialize, Serialize};

/// Returns the `p`-th percentile (0.0–100.0) of `values` using linear
/// interpolation between closest ranks (the same method as `numpy.percentile`
/// default).
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use hawk_simcore::stats::percentile;
///
/// let v = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.5));
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// assert_eq!(percentile(&v, 0.0), Some(1.0));
/// assert_eq!(percentile(&[][..].to_vec(), 50.0), None);
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already ascending-sorted slice (no copy, no sort).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Returns the median of `values`, or `None` if empty.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Returns the arithmetic mean, or `None` if empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// One point of an empirical CDF: `fraction` of values are `<= value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// The sample value.
    pub value: f64,
    /// Cumulative fraction in `(0, 1]`.
    pub fraction: f64,
}

/// Builds the empirical CDF of `values` as ascending points.
///
/// Duplicate values are merged into a single point carrying the highest
/// cumulative fraction, which is how the paper's CDF plots render.
///
/// # Examples
///
/// ```
/// use hawk_simcore::stats::cdf;
///
/// let points = cdf(&[3.0, 1.0, 3.0, 2.0]);
/// assert_eq!(points.len(), 3);
/// assert_eq!(points[0].value, 1.0);
/// assert!((points[0].fraction - 0.25).abs() < 1e-12);
/// assert_eq!(points[2].value, 3.0);
/// assert!((points[2].fraction - 1.0).abs() < 1e-12);
/// ```
pub fn cdf(values: &[f64]) -> Vec<CdfPoint> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("cdf: NaN in input"));
    let n = sorted.len() as f64;
    let mut out: Vec<CdfPoint> = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        let fraction = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.value == v => last.fraction = fraction,
            _ => out.push(CdfPoint { value: v, fraction }),
        }
    }
    out
}

/// Evaluates an empirical CDF at `x`: the fraction of samples `<= x`.
pub fn cdf_at(points: &[CdfPoint], x: f64) -> f64 {
    let mut frac = 0.0;
    for p in points {
        if p.value <= x {
            frac = p.fraction;
        } else {
            break;
        }
    }
    frac
}

/// Significant mantissa bits kept by [`StreamingQuantiles`]: bucket
/// boundaries are spaced a relative `2^-7 = 1/128` apart beyond the exact
/// region, which is what bounds the sink's quantile error.
const QUANTILE_SIG_BITS: u32 = 7;
/// Values below `2^QUANTILE_SIG_BITS` get exact singleton buckets.
const QUANTILE_LINEAR: u64 = 1 << QUANTILE_SIG_BITS;
/// Largest value exponent the sink resolves; values at or beyond
/// `2^(QUANTILE_MAX_EXP + 1)` µs (~50 simulated days) clamp into the last
/// bucket.
const QUANTILE_MAX_EXP: u32 = 41;
/// Total bucket count: the linear region plus one
/// `2^QUANTILE_SIG_BITS`-bucket group per exponent.
const QUANTILE_BUCKETS: usize =
    (QUANTILE_LINEAR as usize) * (1 + (QUANTILE_MAX_EXP - QUANTILE_SIG_BITS + 1) as usize);

/// A bounded-memory streaming quantile sink over `u64` samples
/// (microseconds, in this codebase), in the spirit of GK/CKMS summaries
/// but implemented as an HDR-histogram-style log-bucketed counter array so
/// that recording is branch-light integer math, memory is fixed at
/// construction, and merging shards is exact.
///
/// # Guarantee
///
/// For any recorded stream, [`StreamingQuantiles::quantile`] is within a
/// relative error of [`StreamingQuantiles::RELATIVE_ERROR`] (`1/128`,
/// ~0.8 %) of [`percentile_of_sorted`] applied to the exact sorted stream:
/// `|est − exact| ≤ RELATIVE_ERROR × exact`. Values below 128 µs are held
/// in exact singleton buckets (zero error); above that, each bucket spans
/// a relative width of `2^-7` and is represented by its midpoint, so any
/// single sample is reconstructed within `2^-8` — the documented bound
/// keeps a 2× margin for the rank interpolation. Values beyond
/// `~2^42` µs clamp into the last bucket (far outside any simulated
/// runtime).
///
/// # Merging
///
/// Bucketing a value is a pure function of the value, so
/// [`StreamingQuantiles::merge`] (element-wise count addition) makes a
/// merged sink *bit-identical* to a single sink fed the union of the
/// streams — per-shard sinks lose nothing relative to a global one.
///
/// # Memory
///
/// One `Vec<u64>` of 4,608 buckets (36 KiB), allocated once at
/// construction; [`StreamingQuantiles::record`],
/// [`StreamingQuantiles::quantile`] and [`StreamingQuantiles::reset`]
/// never allocate, which is what lets the steady-state event loop feed a
/// sink under the zero-allocation regression window.
#[derive(Clone)]
pub struct StreamingQuantiles {
    buckets: Vec<u64>,
    count: u64,
}

impl std::fmt::Debug for StreamingQuantiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingQuantiles")
            .field("count", &self.count)
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl Default for StreamingQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingQuantiles {
    /// The documented relative-error bound of [`StreamingQuantiles::quantile`]
    /// versus [`percentile_of_sorted`] over the same stream.
    pub const RELATIVE_ERROR: f64 = 1.0 / 128.0;

    /// Creates an empty sink with all memory pre-allocated.
    pub fn new() -> Self {
        StreamingQuantiles {
            buckets: vec![0; QUANTILE_BUCKETS],
            count: 0,
        }
    }

    /// Bucket index of `value`: exact below the linear cutoff, then the
    /// top [`QUANTILE_SIG_BITS`] mantissa bits within each power-of-two
    /// exponent group.
    fn index(value: u64) -> usize {
        if value < QUANTILE_LINEAR {
            return value as usize;
        }
        let value = value.min((1u64 << (QUANTILE_MAX_EXP + 1)) - 1);
        let exp = 63 - value.leading_zeros();
        let mantissa = (value >> (exp - QUANTILE_SIG_BITS)) - QUANTILE_LINEAR;
        (QUANTILE_LINEAR as usize) * (1 + (exp - QUANTILE_SIG_BITS) as usize) + mantissa as usize
    }

    /// Midpoint representative of bucket `index` (exact for the linear
    /// region's singleton buckets).
    fn representative(index: usize) -> f64 {
        let linear = QUANTILE_LINEAR as usize;
        if index < linear {
            return index as f64;
        }
        let group = (index - linear) / linear;
        let mantissa = ((index - linear) % linear) as u64;
        let lo = (QUANTILE_LINEAR + mantissa) << group;
        let width = 1u64 << group;
        lo as f64 + width as f64 / 2.0
    }

    /// Records one sample. Never allocates.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` (element-wise count addition). The result
    /// is bit-identical to one sink fed both streams in any order.
    pub fn merge(&mut self, other: &StreamingQuantiles) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Clears all counts, keeping the allocation (window reuse).
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
    }

    /// Overwrites `self` with `other`'s counts without allocating.
    pub fn copy_from(&mut self, other: &StreamingQuantiles) {
        self.buckets.copy_from_slice(&other.buckets);
        self.count = other.count;
    }

    /// Representative of the sample at sorted position `rank` (0-based).
    fn value_at(&self, rank: u64) -> f64 {
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if rank < cumulative {
                return Self::representative(i);
            }
        }
        unreachable!("rank {rank} beyond recorded count {}", self.count)
    }

    /// The `p`-th quantile (0.0–100.0) of the recorded stream, or `None`
    /// if empty — same linear-interpolation rank convention as
    /// [`percentile_of_sorted`], within the documented
    /// [`StreamingQuantiles::RELATIVE_ERROR`] of it. Never allocates.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.count - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let frac = rank - lo as f64;
        let lo_value = self.value_at(lo);
        let hi_value = if hi == lo {
            lo_value
        } else {
            self.value_at(hi)
        };
        Some(lo_value + (hi_value - lo_value) * frac)
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used for utilization snapshots and other per-run series where storing
/// every sample would be wasteful.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(5.5));
        assert_eq!(percentile(&v, 90.0), Some(9.1));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(10.0));
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[42.0], 90.0), Some(42.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let v = vec![1.0, 2.0];
        assert_eq!(percentile(&v, -5.0), Some(1.0));
        assert_eq!(percentile(&v, 150.0), Some(2.0));
    }

    #[test]
    fn median_and_mean() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let v = vec![5.0, 1.0, 1.0, 3.0, 5.0, 5.0];
        let points = cdf(&v);
        assert_eq!(points.len(), 3);
        for w in points.windows(2) {
            assert!(w[0].value < w[1].value);
            assert!(w[0].fraction < w[1].fraction);
        }
        assert!((points.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_steps() {
        let points = cdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf_at(&points, 0.5), 0.0);
        assert!((cdf_at(&points, 2.0) - 0.5).abs() < 1e-12);
        assert!((cdf_at(&points, 2.5) - 0.5).abs() < 1e-12);
        assert!((cdf_at(&points, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty() {
        assert!(cdf(&[]).is_empty());
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    /// Exact quantile over the sorted stream, for error checks.
    fn exact(values: &mut [u64], p: f64) -> f64 {
        values.sort_unstable();
        let sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        percentile_of_sorted(&sorted, p)
    }

    fn assert_within_bound(sink: &StreamingQuantiles, values: &mut [u64], p: f64) {
        let want = exact(values, p);
        let got = sink.quantile(p).expect("non-empty sink");
        let tolerance = StreamingQuantiles::RELATIVE_ERROR * want + 1e-9;
        assert!(
            (got - want).abs() <= tolerance,
            "p{p}: streaming {got} vs exact {want} (tolerance {tolerance})"
        );
    }

    #[test]
    fn streaming_quantiles_empty_and_counts() {
        let mut sink = StreamingQuantiles::new();
        assert!(sink.is_empty());
        assert_eq!(sink.quantile(50.0), None);
        sink.record(0);
        sink.record(u64::MAX); // clamps into the last bucket, no panic
        assert_eq!(sink.count(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn streaming_quantiles_exact_in_linear_region() {
        let mut sink = StreamingQuantiles::new();
        for v in 0..QUANTILE_LINEAR {
            sink.record(v);
        }
        // Singleton buckets: every quantile of a sub-128 stream is the
        // same interpolation `percentile_of_sorted` computes, exactly.
        let mut values: Vec<u64> = (0..QUANTILE_LINEAR).collect();
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let want = exact(&mut values, p);
            assert_eq!(sink.quantile(p), Some(want), "p{p}");
        }
    }

    #[test]
    fn streaming_quantiles_within_documented_bound() {
        // Deterministic LCG over a heavy-tailed-ish range spanning both
        // the linear region and many exponent groups.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut values = Vec::with_capacity(10_000);
        let mut sink = StreamingQuantiles::new();
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 33) % 50_000_000; // 0 .. 50 s in µs
            values.push(v);
            sink.record(v);
        }
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_within_bound(&sink, &mut values, p);
        }
    }

    #[test]
    fn streaming_quantiles_merge_is_exact() {
        let mut a = StreamingQuantiles::new();
        let mut b = StreamingQuantiles::new();
        let mut global = StreamingQuantiles::new();
        for v in 0..1_000u64 {
            let value = v * 977; // spans linear and exponential buckets
            if v % 2 == 0 {
                a.record(value);
            } else {
                b.record(value);
            }
            global.record(value);
        }
        a.merge(&b);
        assert_eq!(a.count(), global.count());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.quantile(p), global.quantile(p), "p{p}");
        }
    }

    #[test]
    fn streaming_quantiles_reset_and_copy_reuse_allocation() {
        let mut sink = StreamingQuantiles::new();
        sink.record(12_345);
        let mut snapshot = StreamingQuantiles::new();
        snapshot.copy_from(&sink);
        assert_eq!(snapshot.count(), 1);
        assert_eq!(snapshot.quantile(50.0), sink.quantile(50.0));
        sink.reset();
        assert!(sink.is_empty());
        assert_eq!(sink.quantile(50.0), None);
        assert_eq!(snapshot.count(), 1, "copy survives the source reset");
    }

    #[test]
    fn streaming_quantiles_bucket_roundtrip_error() {
        // Every representable value reconstructs within half a bucket
        // width: `representative(index(v))` is within `2^-8`·v of v.
        let mut v = 1u64;
        while v < 1u64 << 42 {
            for probe in [v, v + v / 3, v + v / 2] {
                let rep = StreamingQuantiles::representative(StreamingQuantiles::index(probe));
                let err = (rep - probe as f64).abs();
                let bound = (probe as f64) / 256.0 + 0.5;
                assert!(err <= bound, "value {probe}: rep {rep}, err {err}");
            }
            v *= 2;
        }
    }

    #[test]
    fn online_stats_matches_batch() {
        let v: Vec<f64> = (0..100).map(|x| (x as f64) * 0.7 - 3.0).collect();
        let mut s = OnlineStats::new();
        for &x in &v {
            s.push(x);
        }
        let batch_mean = mean(&v).unwrap();
        assert!((s.mean().unwrap() - batch_mean).abs() < 1e-9);
        let batch_var = v.iter().map(|x| (x - batch_mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((s.variance().unwrap() - batch_var).abs() < 1e-9);
        assert_eq!(s.min().unwrap(), -3.0);
        assert_eq!(s.max().unwrap(), 99.0 * 0.7 - 3.0);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }
}
