//! Integer-microsecond simulation time.
//!
//! All simulation timestamps and durations are integer microseconds. The
//! Hawk paper's finest-grained quantity is the 0.5 ms network delay and its
//! coarsest is a 20,000 s task, so microseconds give exact arithmetic across
//! the full range with no floating-point ordering hazards in the event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Microseconds per second, the conversion factor used throughout.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute point in simulated time, measured in microseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and exact; two events scheduled for the same
/// microsecond are further ordered by their insertion sequence number (see
/// [`crate::EventQueue`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any realistic simulation horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as floating-point seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from floating-point seconds, rounding to the
    /// nearest microsecond and clamping negatives to zero.
    ///
    /// Task durations in the workload generators are produced in seconds;
    /// this is the single conversion point into integer time.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as floating-point seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction: `self - rhs`, or zero on underflow.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 3_500_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(500));
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0005).as_micros(), 500);
        assert_eq!(SimDuration::from_secs_f64(1.0).as_micros(), MICROS_PER_SEC);
        // Sub-microsecond values round to the nearest microsecond.
        assert_eq!(SimDuration::from_secs_f64(1.4e-7).as_micros(), 0);
        assert_eq!(SimDuration::from_secs_f64(6.0e-7).as_micros(), 1);
    }

    #[test]
    fn duration_from_secs_f64_clamps_invalid() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(1));
        let t0 = SimTime::from_secs(5);
        let t1 = SimTime::from_secs(3);
        assert_eq!(t1.saturating_since(t0), SimDuration::ZERO);
        assert_eq!(t0.saturating_since(t1), SimDuration::from_secs(2));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let times: Vec<SimTime> = (0..10).map(SimTime::from_micros).collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_micros(2_500_000));
    }
}
