//! A pool of recycled batch buffers addressed by small copyable handles.
//!
//! [`BatchPool`] lets an event carry a *handle* to an in-flight batch of
//! values instead of owning a `Vec`: the sender moves values into a pooled
//! slot ([`BatchPool::put`]), the event stores the returned
//! [`BatchHandle`] (a `Copy` u32), and the receiver drains the slot back
//! out ([`BatchPool::take_into`]). Slot vectors are recycled, so once the
//! pool has seen its peak of concurrently in-flight batches — and each
//! slot its peak batch size — the put/take cycle allocates nothing.
//!
//! The driving use case is the steal pipeline: `StolenArrive` events under
//! a non-zero steal-transfer delay used to own a freshly allocated
//! `Vec<QueueEntry>` per steal; with the pool they carry a 4-byte handle.
//!
//! # Examples
//!
//! ```
//! use hawk_simcore::BatchPool;
//!
//! let mut pool: BatchPool<u32> = BatchPool::new();
//! let mut buf = vec![1, 2, 3];
//! let handle = pool.put(&mut buf);
//! assert!(buf.is_empty()); // moved into the pool
//! assert_eq!(pool.in_flight(), 1);
//!
//! pool.take_into(handle, &mut buf);
//! assert_eq!(buf, vec![1, 2, 3]);
//! assert_eq!(pool.in_flight(), 0);
//! ```

/// Identifies one in-flight batch in a [`BatchPool`]. Obtained from
/// [`BatchPool::put`]; redeemed exactly once by [`BatchPool::take_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchHandle(u32);

/// A recycling store of value batches. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct BatchPool<T> {
    slots: Vec<Vec<T>>,
    occupied: Vec<bool>,
    free: Vec<u32>,
}

impl<T> BatchPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BatchPool {
            slots: Vec::new(),
            occupied: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Moves the contents of `src` into a recycled slot (leaving `src`
    /// empty with its capacity intact) and returns the slot's handle.
    pub fn put(&mut self, src: &mut Vec<T>) -> BatchHandle {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Vec::new());
                self.occupied.push(false);
                idx
            }
        };
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.is_empty(), "free slot holds stale values");
        slot.append(src);
        self.occupied[idx as usize] = true;
        BatchHandle(idx)
    }

    /// Drains the batch behind `handle` into `dst` (cleared first) and
    /// recycles the slot.
    ///
    /// # Panics
    ///
    /// Panics if `handle` was already taken (a double-delivery bug).
    pub fn take_into(&mut self, handle: BatchHandle, dst: &mut Vec<T>) {
        let idx = handle.0 as usize;
        assert!(self.occupied[idx], "batch {idx} taken twice");
        self.occupied[idx] = false;
        dst.clear();
        dst.append(&mut self.slots[idx]);
        self.free.push(handle.0);
    }

    /// Number of batches currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_roundtrip_preserves_order() {
        let mut pool: BatchPool<u8> = BatchPool::new();
        let mut a = vec![1, 2, 3];
        let mut b = vec![9];
        let ha = pool.put(&mut a);
        let hb = pool.put(&mut b);
        assert_eq!(pool.in_flight(), 2);
        let mut out = Vec::new();
        pool.take_into(ha, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        pool.take_into(hb, &mut out);
        assert_eq!(out, vec![9]);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut pool: BatchPool<u32> = BatchPool::new();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        // Peak of 2 in flight; afterwards the pool never grows past 2.
        buf.extend([1, 2]);
        let h1 = pool.put(&mut buf);
        buf.extend([3]);
        let h2 = pool.put(&mut buf);
        pool.take_into(h1, &mut out);
        pool.take_into(h2, &mut out);
        for round in 0..100 {
            buf.clear();
            buf.extend([round, round + 1]);
            let h = pool.put(&mut buf);
            pool.take_into(h, &mut out);
            assert_eq!(out, vec![round, round + 1]);
        }
        assert_eq!(pool.slots.len(), 2);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut pool: BatchPool<u8> = BatchPool::new();
        let mut buf = vec![1];
        let h = pool.put(&mut buf);
        pool.take_into(h, &mut buf);
        pool.take_into(h, &mut buf);
    }
}
