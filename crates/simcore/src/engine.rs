//! The simulation engine: a clock plus a future event list.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine.
///
/// `Engine` owns the simulation clock and the future event list. Drivers
/// (such as the scheduler drivers in `hawk-core`) call [`Engine::schedule`]
/// to enqueue work and run a `while let Some((t, ev)) = engine.pop()` loop;
/// popping an event advances the clock to its firing time.
///
/// The clock never moves backwards: scheduling an event in the past is a
/// logic error and panics in debug builds (it is clamped to `now` in release
/// builds so long experiment sweeps fail soft).
///
/// # Examples
///
/// ```
/// use hawk_simcore::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<&'static str> = Engine::new();
/// engine.schedule(SimDuration::from_secs(1), "tick");
/// engine.schedule(SimDuration::from_secs(2), "tock");
///
/// let mut seen = Vec::new();
/// while let Some((t, ev)) = engine.pop() {
///     seen.push((t, ev));
///     assert_eq!(engine.now(), t);
/// }
/// assert_eq!(seen.len(), 2);
/// assert_eq!(engine.now(), SimTime::from_secs(2));
/// ```
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates an engine with an event queue pre-sized for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulation time (the firing time of the last popped
    /// event, or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// `at` must not precede the current clock; see the type-level docs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.queue.push(at, event);
    }

    /// Removes the earliest event, advances the clock to its firing time and
    /// returns it, or returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// The firing time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimDuration::from_secs(5), 1);
        e.schedule(SimDuration::from_secs(1), 2);
        assert_eq!(e.now(), SimTime::ZERO);
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_secs(1), 2));
        assert_eq!(e.now(), SimTime::from_secs(1));
        // A delay scheduled now is relative to the advanced clock.
        e.schedule(SimDuration::from_secs(1), 3);
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(2), 3));
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(5), 1));
        assert!(e.pop().is_none());
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn schedule_at_absolute() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(3), "x");
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(e.pending(), 1);
        assert_eq!(e.pop().unwrap().1, "x");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn schedule_in_past_panics_in_debug() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(SimDuration::from_secs(10), "a");
        e.pop();
        e.schedule_at(SimTime::from_secs(1), "too-late");
    }

    #[test]
    fn zero_delay_event_fires_at_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(SimDuration::from_secs(1), "first");
        e.pop();
        e.schedule(SimDuration::ZERO, "second");
        let (t, ev) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(ev, "second");
    }
}
