//! The simulation engine: a clock plus a future event list.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine.
///
/// `Engine` owns the simulation clock and the future event list. Drivers
/// (such as the scheduler drivers in `hawk-core`) call [`Engine::schedule`]
/// to enqueue work and run a `while let Some((t, ev)) = engine.pop()` loop;
/// popping an event advances the clock to its firing time.
///
/// The clock never moves backwards: scheduling an event in the past is a
/// logic error and panics in debug builds (it is clamped to `now` in release
/// builds so long experiment sweeps fail soft).
///
/// # Examples
///
/// ```
/// use hawk_simcore::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<&'static str> = Engine::new();
/// engine.schedule(SimDuration::from_secs(1), "tick");
/// engine.schedule(SimDuration::from_secs(2), "tock");
///
/// let mut seen = Vec::new();
/// while let Some((t, ev)) = engine.pop() {
///     seen.push((t, ev));
///     assert_eq!(engine.now(), t);
/// }
/// assert_eq!(seen.len(), 2);
/// assert_eq!(engine.now(), SimTime::from_secs(2));
/// ```
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E: Copy> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates an engine with an event queue pre-sized for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulation time (the firing time of the last popped
    /// event, or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// `at` must not precede the current clock; see the type-level docs.
    ///
    /// # Scheduling in the past
    ///
    /// The divergence between build profiles is intentional and part of the
    /// contract (pinned by unit tests in both profiles):
    ///
    /// * **debug builds panic** — scheduling before *now* is a logic error
    ///   in the driver, and development runs should fail at the source;
    /// * **release builds clamp to *now*** — the event fires at the current
    ///   clock (after already-pending same-time events), so multi-hour
    ///   experiment sweeps degrade by at most one event's timing instead of
    ///   aborting.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.queue.push(at, event);
    }

    /// Schedules `event` at the absolute time `at`, returning an error —
    /// instead of panicking or clamping — when `at` precedes the clock.
    ///
    /// This is the cross-context injection path: when events produced
    /// elsewhere (another shard's engine, a co-simulation adapter) are
    /// committed into this engine, a past timestamp is not a local logic
    /// error but a broken synchronization contract, and it must surface as
    /// a hard error in **both** build profiles — the release-mode clamp of
    /// [`Engine::schedule_at`] would silently reorder cross-context
    /// causality. Nothing is enqueued on `Err`.
    pub fn try_schedule_at(&mut self, at: SimTime, event: E) -> Result<(), SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { at, now: self.now });
        }
        self.queue.push(at, event);
        Ok(())
    }

    /// Removes the earliest event, advances the clock to its firing time and
    /// returns it, or returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Removes every event firing at or before `until`, in order, advancing
    /// the clock exactly as repeated [`Engine::pop`] calls would: to the
    /// firing time of the last drained event (unchanged when nothing is
    /// due).
    ///
    /// This is the batch-pop path for drivers that process a bounded time
    /// window at once (e.g. sampling loops, co-simulation adapters): one
    /// call replaces a `while let` loop of peek/pop pairs.
    ///
    /// Only safe when handling the drained events schedules no *new* event
    /// at or before `until` — otherwise the batch would miss it where
    /// repeated pops would not. Callers that schedule zero-delay follow-ups
    /// must use [`Engine::pop`].
    pub fn drain_until(&mut self, until: SimTime) -> Vec<(SimTime, E)> {
        let drained = self.queue.drain_until(until);
        if let Some(&(t, _)) = drained.last() {
            self.now = t;
        }
        self.processed += drained.len() as u64;
        drained
    }

    /// The firing time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl<E: Copy> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Error returned by [`Engine::try_schedule_at`]: the requested firing time
/// precedes the engine's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePastError {
    /// The requested firing time.
    pub at: SimTime,
    /// The engine clock at the time of the call.
    pub now: SimTime,
}

impl std::fmt::Display for SchedulePastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event scheduled in the engine's past: {} < clock {}",
            self.at, self.now
        )
    }
}

impl std::error::Error for SchedulePastError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimDuration::from_secs(5), 1);
        e.schedule(SimDuration::from_secs(1), 2);
        assert_eq!(e.now(), SimTime::ZERO);
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_secs(1), 2));
        assert_eq!(e.now(), SimTime::from_secs(1));
        // A delay scheduled now is relative to the advanced clock.
        e.schedule(SimDuration::from_secs(1), 3);
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(2), 3));
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(5), 1));
        assert!(e.pop().is_none());
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn schedule_at_absolute() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(3), "x");
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(e.pending(), 1);
        assert_eq!(e.pop().unwrap().1, "x");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn schedule_in_past_panics_in_debug() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(SimDuration::from_secs(10), "a");
        e.pop();
        e.schedule_at(SimTime::from_secs(1), "too-late");
    }

    /// The release half of the schedule-in-the-past contract: the event is
    /// clamped to *now* and fires after pending same-time events, keeping
    /// long sweeps alive. (The debug half panics; see the test above.)
    #[test]
    #[cfg(not(debug_assertions))]
    fn schedule_in_past_clamps_to_now_in_release() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(SimDuration::from_secs(10), "a");
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(10));
        e.schedule(SimDuration::ZERO, "pending-at-now");
        e.schedule_at(SimTime::from_secs(1), "too-late");
        // The clamped event fires at the clock, FIFO after the event that
        // was already pending at that time; the clock never regresses.
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(10), "pending-at-now"));
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(10), "too-late"));
        assert_eq!(e.now(), SimTime::from_secs(10));
    }

    /// `try_schedule_at` rejects past timestamps identically in debug and
    /// release builds — unlike `schedule_at`, whose profile divergence
    /// (panic vs clamp) the two tests above pin. Cross-engine injection
    /// paths rely on this being a hard error everywhere.
    #[test]
    fn try_schedule_in_past_errors_in_every_profile() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(SimDuration::from_secs(10), "a");
        e.pop();
        let err = e
            .try_schedule_at(SimTime::from_secs(1), "too-late")
            .unwrap_err();
        assert_eq!(err.at, SimTime::from_secs(1));
        assert_eq!(err.now, SimTime::from_secs(10));
        assert!(err.to_string().contains("past"));
        // Nothing was enqueued and the clock did not move.
        assert_eq!(e.pending(), 0);
        assert_eq!(e.now(), SimTime::from_secs(10));
    }

    #[test]
    fn try_schedule_at_now_or_later_enqueues() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimDuration::from_secs(2), 1);
        e.pop();
        // Exactly at the clock is allowed (FIFO after pending same-time
        // events), strictly later is the common case.
        e.try_schedule_at(SimTime::from_secs(2), 2).unwrap();
        e.try_schedule_at(SimTime::from_secs(3), 3).unwrap();
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(2), 2));
        assert_eq!(e.pop().unwrap(), (SimTime::from_secs(3), 3));
    }

    #[test]
    fn drain_until_matches_repeated_pops() {
        let mut batch: Engine<u32> = Engine::new();
        let mut single: Engine<u32> = Engine::new();
        for e in [&mut batch, &mut single] {
            e.schedule(SimDuration::from_secs(1), 1);
            e.schedule(SimDuration::from_secs(2), 2);
            e.schedule(SimDuration::from_secs(2), 3);
            e.schedule(SimDuration::from_secs(5), 4);
        }
        let until = SimTime::from_secs(2);
        let drained = batch.drain_until(until);
        let mut reference = Vec::new();
        while single.peek_time().is_some_and(|t| t <= until) {
            reference.push(single.pop().unwrap());
        }
        assert_eq!(drained, reference);
        assert_eq!(batch.now(), single.now());
        assert_eq!(batch.processed(), single.processed());
        assert_eq!(batch.pending(), 1);
        // An empty drain leaves the clock untouched.
        assert!(batch.drain_until(SimTime::from_secs(3)).is_empty());
        assert_eq!(batch.now(), SimTime::from_secs(2));
        assert_eq!(batch.drain_until(SimTime::MAX).len(), 1);
        assert_eq!(batch.now(), SimTime::from_secs(5));
    }

    #[test]
    fn zero_delay_event_fires_at_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(SimDuration::from_secs(1), "first");
        e.pop();
        e.schedule(SimDuration::ZERO, "second");
        let (t, ev) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(ev, "second");
    }
}
