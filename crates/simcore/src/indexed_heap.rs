//! An indexed binary min-heap with key updates.
//!
//! The Hawk centralized scheduler (paper §3.7) keeps "a priority queue of
//! tuples of the form ⟨server, waiting time⟩ … after every task assignment,
//! the priority queue is updated". That requires a priority queue supporting
//! efficient *change-key* on a fixed, dense id space — exactly what this
//! structure provides: O(log n) update, O(1) min lookup, with deterministic
//! id-based tie-breaking.

/// A binary min-heap over the dense id space `0..len` with mutable keys.
///
/// Ties are broken by the smaller id so that identical runs produce
/// identical schedules.
///
/// # Examples
///
/// ```
/// use hawk_simcore::IndexedMinHeap;
///
/// // Three servers, all initially with zero estimated waiting time.
/// let mut h = IndexedMinHeap::new(3, 0u64);
/// assert_eq!(h.min_id(), 0); // tie broken by id
///
/// h.add(0, 100); // assign a task with estimate 100 to server 0
/// assert_eq!(h.min_id(), 1);
/// h.add(1, 50);
/// h.add(2, 80);
/// assert_eq!(h.min_id(), 1);
///
/// h.sub(2, 80); // server 2 completed its task
/// assert_eq!(h.min_id(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedMinHeap {
    /// `heap[i]` is the `(key, id)` pair at heap slot `i`. Key and id live
    /// in the same slot so a sift touches one cache line per level instead
    /// of chasing parallel `key`/`id` arrays (the centralized scheduler
    /// sifts this heap twice per long task, making it a measurable part of
    /// the Hawk hot path).
    heap: Vec<(u64, u32)>,
    /// `pos[id]` is the heap slot currently holding `id`.
    pos: Vec<u32>,
}

impl IndexedMinHeap {
    /// Creates a heap over ids `0..len`, all with `initial` key.
    pub fn new(len: usize, initial: u64) -> Self {
        assert!(len <= u32::MAX as usize, "id space fits u32");
        IndexedMinHeap {
            heap: (0..len).map(|id| (initial, id as u32)).collect(),
            pos: (0..len as u32).collect(),
        }
    }

    /// Number of ids tracked.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if the heap tracks no ids.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The id with the smallest key (smallest id on ties).
    ///
    /// # Panics
    ///
    /// Panics if the heap is empty.
    pub fn min_id(&self) -> usize {
        assert!(!self.heap.is_empty(), "min_id on empty heap");
        self.heap[0].1 as usize
    }

    /// The smallest key.
    ///
    /// # Panics
    ///
    /// Panics if the heap is empty.
    pub fn min_key(&self) -> u64 {
        assert!(!self.heap.is_empty(), "min_key on empty heap");
        self.heap[0].0
    }

    /// Returns the current key of `id`.
    pub fn key_of(&self, id: usize) -> u64 {
        self.heap[self.pos[id] as usize].0
    }

    /// Sets the key of `id` to `key`, restoring the heap property.
    pub fn set(&mut self, id: usize, key: u64) {
        let slot = self.pos[id] as usize;
        let old = self.heap[slot].0;
        self.heap[slot].0 = key;
        if key < old {
            self.sift_up(slot);
        } else {
            self.sift_down(slot);
        }
    }

    /// Adds `delta` to the key of `id`.
    pub fn add(&mut self, id: usize, delta: u64) {
        let k = self.key_of(id) + delta;
        self.set(id, k);
    }

    /// Subtracts `delta` from the key of `id`, saturating at zero.
    pub fn sub(&mut self, id: usize, delta: u64) {
        let k = self.key_of(id).saturating_sub(delta);
        self.set(id, k);
    }

    /// Compare `(key, id)` pairs so ordering is total and deterministic.
    fn less(&self, a: usize, b: usize) -> bool {
        self.heap[a] < self.heap[b]
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.less(slot, parent) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * slot + 1;
            let r = l + 1;
            let mut smallest = slot;
            if l < n && self.less(l, smallest) {
                smallest = l;
            }
            if r < n && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == slot {
                break;
            }
            self.swap_slots(slot, smallest);
            slot = smallest;
        }
    }

    /// Verifies the heap invariant; used by tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        let n = self.heap.len();
        for slot in 1..n {
            let parent = (slot - 1) / 2;
            if self.less(slot, parent) {
                return false;
            }
        }
        // `pos` must be the inverse of the heap's id column.
        self.heap
            .iter()
            .enumerate()
            .all(|(i, &(_, id))| self.pos[id as usize] == i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn min_follows_updates() {
        let mut h = IndexedMinHeap::new(4, 10);
        assert_eq!(h.min_id(), 0);
        h.set(2, 3);
        assert_eq!(h.min_id(), 2);
        assert_eq!(h.min_key(), 3);
        h.add(2, 20);
        assert_eq!(h.min_id(), 0);
        h.sub(3, 5);
        assert_eq!(h.min_id(), 3);
        assert_eq!(h.key_of(3), 5);
        assert!(h.check_invariants());
    }

    #[test]
    fn ties_break_by_smallest_id() {
        let h = IndexedMinHeap::new(5, 7);
        assert_eq!(h.min_id(), 0);
        let mut h2 = IndexedMinHeap::new(5, 7);
        h2.set(0, 9);
        assert_eq!(h2.min_id(), 1);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let mut h = IndexedMinHeap::new(2, 5);
        h.sub(1, 100);
        assert_eq!(h.key_of(1), 0);
        assert_eq!(h.min_id(), 1);
    }

    #[test]
    fn empty_heap_reports_empty() {
        let h = IndexedMinHeap::new(0, 0);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
    }

    #[test]
    #[should_panic(expected = "min_id on empty heap")]
    fn min_on_empty_panics() {
        IndexedMinHeap::new(0, 0).min_id();
    }

    #[test]
    fn random_ops_match_naive_argmin() {
        let mut rng = SimRng::seed_from_u64(99);
        let n = 64;
        let mut h = IndexedMinHeap::new(n, 0);
        let mut naive = vec![0u64; n];
        for _ in 0..5000 {
            let id = rng.index(n);
            match rng.index(3) {
                0 => {
                    let d = rng.gen_range(0, 1000);
                    h.add(id, d);
                    naive[id] += d;
                }
                1 => {
                    let d = rng.gen_range(0, 1000);
                    h.sub(id, d);
                    naive[id] = naive[id].saturating_sub(d);
                }
                _ => {
                    let k = rng.gen_range(0, 10_000);
                    h.set(id, k);
                    naive[id] = k;
                }
            }
            let expect = (0..n).min_by_key(|&i| (naive[i], i)).unwrap();
            assert_eq!(h.min_id(), expect);
            assert_eq!(h.min_key(), naive[expect]);
        }
        assert!(h.check_invariants());
    }

    #[test]
    fn simulates_least_loaded_assignment() {
        // Mimics the centralized scheduler: place 100 unit tasks on 10
        // servers; the load must end perfectly balanced.
        let mut h = IndexedMinHeap::new(10, 0);
        for _ in 0..100 {
            let s = h.min_id();
            h.add(s, 1);
        }
        for id in 0..10 {
            assert_eq!(h.key_of(id), 10);
        }
    }
}
