//! Future event list with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: fires at `time`; `seq` breaks ties FIFO.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Equal timestamps pop in insertion order, which makes runs
        // bit-for-bit reproducible.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered future event list.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled (FIFO), which keeps simulations deterministic without
/// requiring `E: Ord`.
///
/// # Examples
///
/// ```
/// use hawk_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5u64, 1, 3, 2, 4] {
            q.push(SimTime::from_secs(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        q.push(SimTime::from_secs(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(15), "c");
        q.push(SimTime::from_secs(5), "d");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
