//! Future event list with deterministic tie-breaking.
//!
//! The queue is a hierarchical timing wheel (the calendar-queue family of
//! structures used by high-throughput discrete-event simulators and kernel
//! timer subsystems), replacing the original `BinaryHeap` implementation.
//! The public contract is unchanged: events pop in `(time, seq)` order,
//! where `seq` is the insertion sequence number, so simultaneous events are
//! delivered FIFO and simulations stay bit-for-bit reproducible.
//!
//! # Why a wheel
//!
//! Popping or pushing a binary heap of `n` pending events costs `O(log n)`
//! comparisons *and moves* of full event payloads — at simulation scale
//! (tens of thousands of pending events, millions of total events) that is
//! the single hottest path of the engine. The wheel makes both operations
//! amortized `O(1)`: an event is appended to the tail of the bucket for its
//! firing time, and the pop path reads the earliest non-empty bucket
//! straight out of a per-level occupancy bitmap.
//!
//! # Structure
//!
//! Seven levels of 128 buckets each. A bucket at level `L` spans `128^L`
//! microseconds; an event lands at the lowest level whose bucket span still
//! separates it from the `cursor` (the firing time of the last event popped
//! from the wheel). Level-0 buckets therefore hold events of one exact
//! microsecond each, in insertion order; higher-level buckets are cascaded
//! down — preserving insertion order — when the cursor reaches their span.
//! Each event cascades at most six times, so the amortized cost per event
//! is constant.
//!
//! Two small binary heaps catch the edges the wheel does not cover:
//!
//! * `past` — events pushed with a time before the cursor. [`Engine`]
//!   (which clamps schedule times to *now*) never produces these, but a
//!   bare `EventQueue` accepts them, exactly as the heap implementation
//!   did.
//! * `overflow` — events more than `128^7` µs (≈ 17 simulated years) beyond
//!   the cursor. They re-enter the wheel when the cursor approaches.
//!
//! [`Engine`]: crate::Engine

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::slab::EntrySlab;
use crate::time::SimTime;

/// Bits per wheel level: 128 buckets each (occupancy fits one `u128`).
const LEVEL_BITS: u32 = 7;

/// Buckets per level.
const SLOTS: usize = 1 << LEVEL_BITS;

/// Number of levels; the wheel spans `2^(7·7)` µs ≈ 17 simulated years
/// past the cursor before the overflow heap takes over. Wider levels keep
/// events from cascading through as many intermediate buckets: a constant
/// +0.5 ms network hop lands one level up, a task-finish timer at most
/// four.
const LEVELS: usize = 7;

/// A pending event in the `past`/`overflow` heaps: fires at `time`; `seq`
/// breaks ties FIFO.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Equal timestamps pop in insertion order, which makes runs
        // bit-for-bit reproducible.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One wheel entry: `(firing micros, insertion seq, event)`.
type Entry<E> = (u64, u64, E);

/// A min-ordered future event list.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled (FIFO), which keeps simulations deterministic without
/// requiring `E: Ord`.
///
/// # Examples
///
/// ```
/// use hawk_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Bucket storage: one slab arena whose list `level * SLOTS + slot`
    /// holds that bucket's pending entries in `seq` order. Nodes recycle
    /// through the slab's free list, so the wheel allocates only while the
    /// pending-event population is still reaching new peaks — the
    /// steady-state schedule/pop/cascade cycle performs zero heap
    /// allocations (enforced by `tests/alloc_regression.rs` at the
    /// workspace root).
    wheel: EntrySlab<Entry<E>>,
    /// Per-level bitmap of non-empty buckets.
    occupied: [u128; LEVELS],
    /// The wheel floor: the firing time (µs) of the last event popped from
    /// the wheel. Every wheel entry fires at or after this time.
    cursor: u64,
    /// Events pushed with a firing time before the cursor.
    past: BinaryHeap<Scheduled<E>>,
    /// Events beyond the wheel span; strictly later than every wheel entry.
    overflow: BinaryHeap<Scheduled<E>>,
    len: usize,
    next_seq: u64,
}

/// The wheel level for an event at `t` µs given the cursor: the position of
/// the highest differing bit, in `LEVEL_BITS`-wide digits. `LEVELS` or more
/// means the event is beyond the wheel span (overflow).
fn level_for(t: u64, cursor: u64) -> usize {
    let diff = t ^ cursor;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
    }
}

impl<E: Copy> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: EntrySlab::new(LEVELS * SLOTS),
            occupied: [0; LEVELS],
            cursor: 0,
            past: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Creates an empty queue with the bucket arena pre-warmed for
    /// `capacity` simultaneously pending events, so a simulation whose
    /// pending population stays under it never grows the wheel.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.wheel.reserve_nodes(capacity);
        q
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let t = time.as_micros();
        if t < self.cursor {
            self.past.push(Scheduled { time, seq, event });
        } else {
            self.place(t, seq, event);
        }
    }

    /// Buckets an entry with `t >= cursor` into the wheel, or the overflow
    /// heap when it is beyond the wheel span.
    fn place(&mut self, t: u64, seq: u64, event: E) {
        debug_assert!(t >= self.cursor);
        let level = level_for(t, self.cursor);
        if level >= LEVELS {
            self.overflow.push(Scheduled {
                time: SimTime::from_micros(t),
                seq,
                event,
            });
            return;
        }
        let slot = ((t >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let bucket = level * SLOTS + slot;
        // Pushes and cascades arrive in increasing seq order, so appending
        // keeps the bucket sorted; only overflow re-bucketing can arrive
        // out of order (when an event pushed long ago re-enters the wheel)
        // and pays for a list walk + sorted insert.
        // The tail holds the bucket's largest seq (buckets are seq-sorted),
        // so the in-order common case is one O(1) tail read.
        let append = match self.wheel.tail(bucket) {
            None => true,
            Some(tail) => self.wheel.value(tail).1 <= seq,
        };
        if append {
            self.wheel.push_back(bucket, (t, seq, event));
        } else {
            // Walk to the last node with a smaller seq and insert after it.
            let mut prev: Option<u32> = None;
            let mut cur = self.wheel.head(bucket);
            while let Some(node) = cur {
                if self.wheel.value(node).1 >= seq {
                    break;
                }
                prev = Some(node);
                cur = self.wheel.next(node);
            }
            self.wheel.insert_after(bucket, prev, (t, seq, event));
        }
        self.occupied[level] |= 1 << slot;
    }

    /// Moves every overflow event now within the wheel span back into the
    /// wheel. Called only after the cursor jumps (the overflow minimum is
    /// strictly later than every wheel entry, so overflow events can never
    /// become due while the wheel still holds anything).
    fn rebucket_overflow(&mut self) {
        while let Some(s) = self.overflow.peek() {
            if level_for(s.time.as_micros(), self.cursor) >= LEVELS {
                break;
            }
            let s = self.overflow.pop().expect("peeked entry exists");
            self.place(s.time.as_micros(), s.seq, s.event);
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // Past events fire strictly before the cursor, and so before every
        // wheel or overflow entry.
        if let Some(s) = self.past.pop() {
            return Some((s.time, s.event));
        }
        loop {
            // Fast path: a level-0 bucket holds events of one exact
            // microsecond, already in seq order.
            if self.occupied[0] != 0 {
                let slot = self.occupied[0].trailing_zeros() as usize;
                let (t, _, event) = self
                    .wheel
                    .pop_front(slot)
                    .expect("occupied bucket is non-empty");
                if self.wheel.is_empty(slot) {
                    self.occupied[0] &= !(1 << slot);
                }
                self.cursor = t;
                return Some((SimTime::from_micros(t), event));
            }
            // Cascade the earliest bucket of the lowest occupied level down
            // to finer levels (in order, so FIFO ties are preserved): pop
            // each node and re-place it — nodes recycle through the slab's
            // free list, so cascading allocates nothing.
            if let Some(level) = (1..LEVELS).find(|&l| self.occupied[l] != 0) {
                let slot = self.occupied[level].trailing_zeros() as usize;
                self.occupied[level] &= !(1 << slot);
                let bucket = level * SLOTS + slot;
                // Advance the cursor to the bucket's window start so the
                // redistribution lands below `level`.
                let span = 1u64 << (LEVEL_BITS * level as u32);
                let (first_t, _, _) = self
                    .wheel
                    .iter(bucket)
                    .next()
                    .expect("occupied bucket is non-empty");
                let window_start = first_t & !(span - 1);
                debug_assert!(window_start >= self.cursor);
                self.cursor = window_start;
                while let Some((t, seq, event)) = self.wheel.pop_front(bucket) {
                    self.place(t, seq, event);
                }
                continue;
            }
            // Wheel drained: jump to the overflow minimum and refill.
            let next = self
                .overflow
                .peek()
                .expect("len > 0 with empty past and wheel implies overflow events")
                .time
                .as_micros();
            self.cursor = next;
            self.rebucket_overflow();
        }
    }

    /// Removes and returns every event firing at or before `until`, in
    /// `(time, seq)` order — exactly the events repeated [`EventQueue::pop`]
    /// calls would yield while their firing time is `<= until`.
    ///
    /// Batching: after each pop, the rest of the popped event's level-0
    /// bucket (every event at the same exact microsecond, already in FIFO
    /// order) is taken in one sweep, so same-time bursts — the common case
    /// in this simulator, where one job's probes all land together — skip
    /// the per-event level scan entirely.
    pub fn drain_until(&mut self, until: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|t| t <= until) {
            let (t, event) = self.pop().expect("peeked event exists");
            out.push((t, event));
            // Same-microsecond fast path. Applies only when the pop came
            // from the wheel (`cursor == t`; past-heap pops leave the
            // cursor ahead of `t`, where the slot index would alias a
            // different window) and no past events remain to interleave.
            // Then the level-0 bucket for `t` holds exactly the remaining
            // events at `t` (the wheel invariant: level-0 buckets within
            // the current window are single-microsecond), all due.
            if t.as_micros() != self.cursor || !self.past.is_empty() {
                continue;
            }
            let slot = (t.as_micros() & (SLOTS as u64 - 1)) as usize;
            if self.occupied[0] & (1 << slot) != 0 {
                while let Some((bt, _, event)) = self.wheel.pop_front(slot) {
                    debug_assert_eq!(bt, t.as_micros());
                    self.len -= 1;
                    out.push((SimTime::from_micros(bt), event));
                }
                self.occupied[0] &= !(1 << slot);
            }
        }
        out
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.past.peek() {
            return Some(s.time);
        }
        if self.occupied[0] != 0 {
            let slot = self.occupied[0].trailing_zeros() as usize;
            return self
                .wheel
                .iter(slot)
                .next()
                .map(|&(t, _, _)| SimTime::from_micros(t));
        }
        for level in 1..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            // Higher-level buckets are seq-ordered, not time-ordered; the
            // earliest firing time needs a scan. Peeking is off the hot
            // path (the engine's pop never calls it).
            return self
                .wheel
                .iter(level * SLOTS + slot)
                .map(|&(t, _, _)| SimTime::from_micros(t))
                .min();
        }
        self.overflow.peek().map(|s| s.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E: Copy> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5u64, 1, 3, 2, 4] {
            q.push(SimTime::from_secs(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        q.push(SimTime::from_secs(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(15), "c");
        q.push(SimTime::from_secs(5), "d");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn push_before_cursor_still_pops_first() {
        // A bare queue accepts times before the last popped time; such
        // events pop before everything else, as with the old binary heap.
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(100), "late");
        q.push(SimTime::from_micros(200), "later");
        assert_eq!(q.pop().unwrap().1, "late");
        q.push(SimTime::from_micros(50), "past-a");
        q.push(SimTime::from_micros(60), "past-b");
        q.push(SimTime::from_micros(50), "past-a2");
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(50), "past-a"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(50), "past-a2"));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(60)));
        assert_eq!(q.pop().unwrap().1, "past-b");
        assert_eq!(q.pop().unwrap().1, "later");
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        // 2^43 µs is beyond the wheel span from cursor 0: exercises the
        // overflow heap and the cursor jump that refills the wheel.
        let far = 1u64 << 43;
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(far + 7), "far-b");
        q.push(SimTime::from_micros(far), "far-a");
        q.push(SimTime::from_micros(3), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(far), "far-a"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(far + 7), "far-b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascades_preserve_fifo_within_equal_times() {
        // Events at the same far time land in a high-level bucket together
        // and must still pop in push order after cascading.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1_000_000_007);
        for i in 0..50 {
            q.push(t, i);
        }
        q.push(SimTime::from_micros(5), 999);
        assert_eq!(q.pop().unwrap().1, 999);
        for i in 0..50 {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
    }

    #[test]
    fn drain_until_matches_repeated_pop() {
        let times = [9u64, 2, 2, 7, 4, 4, 4, 30, 1];
        let build = || {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            q
        };
        let mut drained = build();
        let mut popped = build();
        let until = SimTime::from_micros(7);
        let batch = drained.drain_until(until);
        let mut reference = Vec::new();
        while popped.peek_time().is_some_and(|t| t <= until) {
            reference.push(popped.pop().unwrap());
        }
        assert_eq!(batch, reference);
        assert_eq!(batch.len(), 7);
        assert_eq!(drained.len(), 2);
        // The remainder still pops in order.
        assert_eq!(drained.pop().unwrap().1, 0);
        assert_eq!(drained.pop().unwrap().1, 7);
    }

    #[test]
    fn drain_until_on_empty_and_past_only() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.drain_until(SimTime::from_secs(1)).is_empty());
        q.push(SimTime::from_secs(5), 1);
        assert!(q.drain_until(SimTime::from_secs(4)).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn large_random_workload_pops_sorted() {
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(0xCAFE);
        let mut q = EventQueue::new();
        // Mixed magnitudes: same-µs bursts, near future, and overflow-range
        // times, interleaved with pops.
        let mut pending = 0usize;
        let mut last: Option<(SimTime, u64)> = None;
        for round in 0u64..10_000 {
            let t = match rng.index(4) {
                0 => rng.gen_range(0, 100),
                1 => rng.gen_range(0, 1_000_000),
                2 => rng.gen_range(0, 1 << 30),
                _ => rng.gen_range(1 << 40, 1 << 45),
            };
            // Clamp to the queue's monotone regime (engine semantics).
            let t = SimTime::from_micros(t.max(last.map_or(0, |(lt, _)| lt.as_micros())));
            q.push(t, round);
            pending += 1;
            if round % 3 == 0 {
                let (pt, seq) = q.pop().unwrap();
                pending -= 1;
                if let Some((lt, lseq)) = last {
                    assert!(pt > lt || (pt == lt && seq > lseq), "order violated");
                }
                last = Some((pt, seq));
            }
        }
        while let Some((pt, seq)) = q.pop() {
            pending -= 1;
            if let Some((lt, lseq)) = last {
                assert!(pt > lt || (pt == lt && seq > lseq), "order violated");
            }
            last = Some((pt, seq));
        }
        assert_eq!(pending, 0);
        assert_eq!(q.len(), 0);
    }
}
