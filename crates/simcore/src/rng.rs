//! Deterministic random number generation for simulations.
//!
//! Every experiment in the reproduction is driven by a single `u64` seed.
//! [`SimRng`] implements xoshiro256++ (seeded through SplitMix64, the
//! recommended initialization) plus the handful of distributions the paper's
//! workload generators and schedulers need. Implementing them here — rather
//! than pulling in `rand_distr` — keeps the dependency surface small and the
//! bit streams stable across toolchain updates.

/// A deterministic xoshiro256++ random number generator.
///
/// # Examples
///
/// ```
/// use hawk_simcore::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Derived streams are independent of the parent's subsequent output.
/// let mut stream = a.split();
/// let x = stream.gen_range(0, 100);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
    /// Recycled membership bitmap for [`SimRng::sample_distinct`]: grown to
    /// the largest population sampled and cleared after each call, so the
    /// hot probe-placement and steal-victim paths allocate nothing in
    /// steady state. Purely a cache — never affects the output stream.
    sample_scratch: Vec<u64>,
    /// Recycled pick buffer for [`SimRng::sample_distinct_map_into`].
    /// Purely a cache — never affects the output stream.
    pick_scratch: Vec<usize>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
            sample_scratch: Vec::new(),
            pick_scratch: Vec::new(),
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each simulation component (probe placement, stealing,
    /// workload generation, …) its own stream so that adding draws in one
    /// component does not perturb the others.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire's unbiased bounded generation (rejection on the low word).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an exponential distribution with the given mean (scale).
    ///
    /// Used for job inter-arrival times (Poisson process, §4.1) and for the
    /// per-job task-count / mean-duration draws of the k-means-derived
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential: mean must be positive, got {mean}"
        );
        // Inverse CDF; (1 - U) avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Samples a standard normal via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent standard normals.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Samples a normal distribution with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Samples a normal truncated to strictly positive values by rejection.
    ///
    /// The paper draws per-task durations from a Gaussian with σ = 2·mean
    /// "excluding negative values" (§4.1); this implements that truncation.
    /// A tiny positive floor guards against zero-length tasks.
    pub fn positive_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        loop {
            let x = self.normal(mean, std_dev);
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Samples a log-normal distribution parameterized by the underlying
    /// normal's `mu` and `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Samples `count` distinct indices from `[0, n)`, in random order.
    ///
    /// Uses Floyd's algorithm, O(count) expected work, so probing a job with
    /// `2t` probes into a 50,000-server cluster does not touch all servers.
    /// Membership during the walk is tracked in a recycled bitmap (cleared
    /// through the output list afterwards), so the call is hash-free and
    /// allocation-free in steady state; the draw sequence — and therefore
    /// the result — is identical to the original `HashSet`-based version.
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    pub fn sample_distinct(&mut self, n: usize, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count);
        self.sample_distinct_into(n, count, &mut out);
        out
    }

    /// Like [`SimRng::sample_distinct`], writing into a caller-provided
    /// buffer (cleared first). The per-attempt steal-victim path calls this
    /// with a reused buffer, making victim selection allocation-free; the
    /// draw sequence is identical to [`SimRng::sample_distinct`].
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    pub fn sample_distinct_into(&mut self, n: usize, count: usize, out: &mut Vec<usize>) {
        assert!(count <= n, "sample_distinct: count {count} > n {n}");
        out.clear();
        let words = n.div_ceil(64);
        if self.sample_scratch.len() < words {
            self.sample_scratch.resize(words, 0);
        }
        for j in (n - count)..n {
            let t = self.index(j + 1);
            let taken = self.sample_scratch[t / 64] >> (t % 64) & 1 != 0;
            let pick = if taken { j } else { t };
            self.sample_scratch[pick / 64] |= 1 << (pick % 64);
            out.push(pick);
        }
        for &pick in out.iter() {
            self.sample_scratch[pick / 64] &= !(1 << (pick % 64));
        }
        // Floyd's algorithm yields a uniformly random *set*; shuffle to make
        // the order uniform too (probe order matters at queue heads).
        self.shuffle(out);
    }

    /// Samples `count` distinct indices from `[0, n)` in random order and
    /// *appends* `map(index)` for each to `out` (no clear), going through
    /// a recycled internal pick buffer so mapped callers — e.g. probe
    /// placement appending `ServerId`s after a full-round prefix — stay
    /// allocation-free too. The draw sequence is identical to
    /// [`SimRng::sample_distinct`].
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    pub fn sample_distinct_map_into<T>(
        &mut self,
        n: usize,
        count: usize,
        out: &mut Vec<T>,
        mut map: impl FnMut(usize) -> T,
    ) {
        let mut picks = std::mem::take(&mut self.pick_scratch);
        self.sample_distinct_into(n, count, &mut picks);
        out.extend(picks.iter().map(|&i| map(i)));
        self.pick_scratch = picks;
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SimRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(5, 15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        SimRng::seed_from_u64(0).gen_range(3, 3);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 100_000;
        let mean = 50.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "exponential mean off: {observed}"
        );
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::seed_from_u64(4);
        let n = 100_000;
        let (mu, sd) = (10.0, 3.0);
        let samples: Vec<f64> = (0..n).map(|_| r.normal(mu, sd)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - sd).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn positive_normal_is_positive() {
        let mut r = SimRng::seed_from_u64(5);
        // σ = 2·mean, as in the paper: heavy truncation pressure.
        for _ in 0..10_000 {
            assert!(r.positive_normal(10.0, 20.0) > 0.0);
        }
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = SimRng::seed_from_u64(6);
        for &(n, k) in &[(10usize, 10usize), (100, 7), (5, 0), (1, 1), (1000, 999)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_distinct_map_into_matches_plain_sampling() {
        let mut a = SimRng::seed_from_u64(21);
        let mut b = SimRng::seed_from_u64(21);
        let plain = a.sample_distinct(50, 7);
        let mut mapped: Vec<u64> = vec![999]; // must append, not clear
        b.sample_distinct_map_into(50, 7, &mut mapped, |i| i as u64 * 2);
        assert_eq!(mapped.len(), 8);
        assert_eq!(mapped[0], 999);
        let expect: Vec<u64> = plain.iter().map(|&i| i as u64 * 2).collect();
        assert_eq!(&mapped[1..], &expect[..]);
        // Streams stay aligned afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SimRng::seed_from_u64(11);
        let mut child1 = parent.split();
        let mut child2 = parent.split();
        let a: Vec<u64> = (0..10).map(|_| child1.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| child2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn log_normal_positive() {
        let mut r = SimRng::seed_from_u64(12);
        for _ in 0..1000 {
            assert!(r.log_normal(1.0, 2.0) > 0.0);
        }
    }
}
