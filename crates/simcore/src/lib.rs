//! Deterministic discrete-event simulation substrate for the Hawk reproduction.
//!
//! This crate provides the building blocks that the cluster simulator in
//! `hawk-cluster` and the scheduler drivers in `hawk-core` are built on:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer microsecond clock, exact and
//!   totally ordered (no floating-point tie ambiguity).
//! * [`EventQueue`] and [`Engine`] — a binary-heap future event list with a
//!   deterministic FIFO tie-break for simultaneous events.
//! * [`SimRng`] — a small, fully deterministic xoshiro256++ generator with
//!   the distributions the paper needs (uniform, exponential, Gaussian,
//!   log-normal) and distinct-sampling helpers, so that every experiment is
//!   reproducible from a single `u64` seed.
//! * [`IndexedMinHeap`] — a decrease/increase-key priority queue used by the
//!   centralized scheduler's ⟨server, waiting-time⟩ queue (paper §3.7).
//! * [`EntrySlab`] — a slab arena of queue nodes threaded into per-owner
//!   intrusive FIFO lists with free-list recycling: one contiguous
//!   allocation backs every server queue of a simulated cluster.
//! * [`BatchPool`] — recycled batch buffers addressed by `Copy` handles,
//!   so events can carry value batches without owning a `Vec`.
//! * [`stats`] — percentile, CDF and summary statistics used by the
//!   evaluation harness.
//!
//! The simulation model follows the Sparrow simulator that the Hawk paper
//! augments (§4.1): single-threaded, event-driven, with a constant network
//! delay and free scheduling decisions.
//!
//! # Examples
//!
//! ```
//! use hawk_simcore::{Engine, SimDuration};
//!
//! // Events are `Copy`: the queue stores them in a recycled slab arena.
//! #[derive(Debug, Clone, Copy, PartialEq)]
//! enum Ev {
//!     Ping(u32),
//! }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule(SimDuration::from_secs_f64(1.0), Ev::Ping(1));
//! engine.schedule(SimDuration::from_millis(500), Ev::Ping(2));
//!
//! let (t, ev) = engine.pop().unwrap();
//! assert_eq!(ev, Ev::Ping(2));
//! assert_eq!(t.as_micros(), 500_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod indexed_heap;
mod pool;
mod queue;
mod rng;
mod slab;
pub mod stats;
mod time;

pub use engine::{Engine, SchedulePastError};
pub use indexed_heap::IndexedMinHeap;
pub use pool::{BatchHandle, BatchPool};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use slab::EntrySlab;
pub use time::{SimDuration, SimTime};
