//! Allocation-counting harness for the slab arena: proves the
//! no-allocation-after-warm-up invariant with a counting global allocator
//! rather than by inspecting `allocated_nodes()` alone.
//!
//! The library crate forbids `unsafe`; this integration test is its own
//! crate, so the `GlobalAlloc` shim lives here. The same pattern backs the
//! whole-engine regression test at the workspace root
//! (`tests/alloc_regression.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use hawk_simcore::{BatchPool, EntrySlab};

/// Counts every allocation (alloc, alloc_zeroed, realloc) made through the
/// global allocator. Deallocations are free and not counted.
struct CountingAllocator;

// Per-thread counter (const-init TLS: no lazy allocation on first touch),
// so the test harness running other tests in parallel cannot leak their
// allocations into a measured window.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Warm-then-measure: after the arena has seen its peak population, an
/// arbitrary push/pop/unlink churn performs zero heap allocations.
#[test]
fn slab_churn_is_allocation_free_after_warm_up() {
    const LISTS: usize = 64;
    const PEAK: usize = 32;
    let mut slab: EntrySlab<u64> = EntrySlab::new(LISTS);

    // Warm-up: take every list to its peak and drain it again.
    for list in 0..LISTS {
        for v in 0..PEAK as u64 {
            slab.push_back(list, v);
        }
    }
    for list in 0..LISTS {
        while slab.pop_front(list).is_some() {}
    }

    let before = allocations();
    // Steady state: heavy churn below the peak, including mid-list
    // unlinks (the steal pattern).
    let mut x = 1u64;
    for round in 0..1_000u64 {
        for list in 0..LISTS {
            for _ in 0..8 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
                slab.push_back(list, x);
            }
            // Unlink the second entry (head successor), then pop the rest.
            let head = slab.head(list).expect("list is non-empty");
            if let Some(second) = slab.next(head) {
                slab.unlink_after(list, Some(head), second);
            }
            while slab.pop_front(list).is_some() {}
        }
    }
    assert_eq!(
        allocations() - before,
        0,
        "slab churn allocated on the steady-state path"
    );
    assert!(slab.check_invariants());
}

/// The batch pool's put/take cycle allocates nothing once its slots have
/// warmed to the peak batch size and in-flight count.
#[test]
fn batch_pool_cycle_is_allocation_free_after_warm_up() {
    let mut pool: BatchPool<u64> = BatchPool::new();
    let mut buf: Vec<u64> = Vec::with_capacity(32);

    // Warm-up: two batches in flight at the peak size.
    buf.extend(0..32);
    let a = pool.put(&mut buf);
    buf.extend(0..32);
    let b = pool.put(&mut buf);
    pool.take_into(a, &mut buf);
    pool.take_into(b, &mut buf);
    buf.clear();

    let before = allocations();
    for round in 0..10_000u64 {
        buf.extend(round..round + 24);
        let h1 = pool.put(&mut buf);
        buf.extend(round..round + 8);
        let h2 = pool.put(&mut buf);
        pool.take_into(h1, &mut buf);
        pool.take_into(h2, &mut buf);
        buf.clear();
    }
    assert_eq!(
        allocations() - before,
        0,
        "batch pool allocated on the steady-state path"
    );
}
