//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use hawk_simcore::stats::{cdf, cdf_at, percentile};
use hawk_simcore::{Engine, EventQueue, IndexedMinHeap, SimDuration, SimRng, SimTime};

/// One step of a generated queue workload.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule an event this many µs past an era base chosen to exercise
    /// every wheel path (same-µs buckets, near future, cascade range,
    /// beyond-span overflow).
    Push(u64),
    Pop,
}

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    let op = (0u8..4, 0u64..4, 0u64..200).prop_map(|(kind, era, fine)| {
        if kind == 0 {
            QueueOp::Pop
        } else {
            // Eras: exact-tie region, one-bucket region, cascade region,
            // overflow region (beyond the wheel span of 2^49 µs).
            let base = [0u64, 1 << 10, 1 << 30, 1 << 55][era as usize];
            QueueOp::Push(base + fine)
        }
    });
    proptest::collection::vec(op, 1..300)
}

proptest! {
    /// The timing-wheel queue pops every pending event in (time, seq)
    /// order under arbitrary interleaved schedule/pop sequences, matching
    /// a naive sort-based model exactly. Push times are clamped to the
    /// engine's monotone regime (never before the last pop), like
    /// `Engine::schedule_at` guarantees.
    #[test]
    fn wheel_queue_matches_sorted_model(ops in queue_ops()) {
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (time, seq) pending
        let mut seq = 0u64;
        let mut floor = 0u64; // last popped time: the monotone clamp
        let mut last: Option<(u64, u64)> = None;
        for op in ops {
            match op {
                QueueOp::Push(t) => {
                    let t = t.max(floor);
                    q.push(SimTime::from_micros(t), seq);
                    model.push((t, seq));
                    seq += 1;
                }
                QueueOp::Pop => {
                    let expect = model.iter().copied().min();
                    if let Some(pair) = expect {
                        model.retain(|&p| p != pair);
                    }
                    let got = q.pop().map(|(t, s)| (t.as_micros(), s));
                    prop_assert_eq!(got, expect);
                    if let Some((t, s)) = got {
                        // The pop sequence is globally (time, seq) sorted:
                        // the clock never regresses.
                        if let Some((lt, ls)) = last {
                            prop_assert!(t > lt || (t == lt && s > ls));
                        }
                        last = Some((t, s));
                        floor = t;
                    }
                }
            }
        }
        // Drain the remainder: still perfectly sorted and complete.
        model.sort_unstable();
        for pair in model {
            prop_assert_eq!(q.pop().map(|(t, s)| (t.as_micros(), s)), Some(pair));
        }
        prop_assert!(q.pop().is_none());
        prop_assert_eq!(q.len(), 0);
    }

    /// `drain_until(t)` returns exactly what repeated `pop` calls bounded
    /// by `t` would, leaves the same remainder behind, and advances the
    /// engine clock identically.
    #[test]
    fn drain_until_equals_repeated_pop(
        times in proptest::collection::vec(0u64..5_000, 1..120),
        cut in 0u64..5_000,
    ) {
        let build = |times: &[u64]| {
            let mut e: Engine<usize> = Engine::new();
            for (i, &t) in times.iter().enumerate() {
                e.schedule_at(SimTime::from_micros(t), i);
            }
            e
        };
        let mut batch = build(&times);
        let mut single = build(&times);
        let until = SimTime::from_micros(cut);
        let drained = batch.drain_until(until);
        let mut expect = Vec::new();
        while single.peek_time().is_some_and(|t| t <= until) {
            expect.push(single.pop().expect("peeked event exists"));
        }
        prop_assert_eq!(&drained, &expect);
        prop_assert_eq!(batch.now(), single.now());
        prop_assert_eq!(batch.pending(), single.pending());
        prop_assert_eq!(batch.processed(), single.processed());
        // The remainders continue identically.
        loop {
            let (a, b) = (batch.pop(), single.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The engine clock is monotone non-decreasing across any schedule of
    /// delays, including zero delays and large jumps.
    #[test]
    fn engine_clock_never_regresses(
        delays in proptest::collection::vec(0u64..1 << 40, 1..100),
    ) {
        let mut e: Engine<u32> = Engine::new();
        let mut clock = SimTime::ZERO;
        for (i, &d) in delays.iter().enumerate() {
            e.schedule(SimDuration::from_micros(d), i as u32);
            // Interleave pops with schedules to move the clock forward.
            if i % 2 == 0 {
                if let Some((t, _)) = e.pop() {
                    prop_assert!(t >= clock, "clock regressed: {t} < {clock}");
                    prop_assert_eq!(e.now(), t);
                    clock = t;
                }
            }
        }
        while let Some((t, _)) = e.pop() {
            prop_assert!(t >= clock);
            clock = t;
        }
    }
    /// Events pop in non-decreasing time order, FIFO among equal times.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// The indexed heap agrees with a naive argmin after any op sequence.
    #[test]
    fn indexed_heap_matches_naive(
        n in 1usize..40,
        ops in proptest::collection::vec((0usize..40, 0u64..10_000, 0u8..3), 1..200),
    ) {
        let mut heap = IndexedMinHeap::new(n, 0);
        let mut naive = vec![0u64; n];
        for (id, value, kind) in ops {
            let id = id % n;
            match kind {
                0 => {
                    heap.add(id, value);
                    naive[id] += value;
                }
                1 => {
                    heap.sub(id, value);
                    naive[id] = naive[id].saturating_sub(value);
                }
                _ => {
                    heap.set(id, value);
                    naive[id] = value;
                }
            }
            let expect = (0..n).min_by_key(|&i| (naive[i], i)).unwrap();
            prop_assert_eq!(heap.min_id(), expect);
            prop_assert_eq!(heap.min_key(), naive[expect]);
            prop_assert!(heap.check_invariants());
        }
    }

    /// `gen_range` respects bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = rng.gen_range(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    /// `sample_distinct` returns exactly `k` distinct in-bounds indices.
    #[test]
    fn rng_sample_distinct_props(seed in any::<u64>(), n in 1usize..500, k_frac in 0.0f64..1.0) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = SimRng::seed_from_u64(seed);
        let s = rng.sample_distinct(n, k);
        prop_assert_eq!(s.len(), k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// The empirical CDF is a valid distribution function.
    #[test]
    fn cdf_is_monotone_distribution(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let points = cdf(&values);
        prop_assert!(!points.is_empty());
        for w in points.windows(2) {
            prop_assert!(w[0].value < w[1].value);
            prop_assert!(w[0].fraction < w[1].fraction);
        }
        let last = points.last().unwrap();
        prop_assert!((last.fraction - 1.0).abs() < 1e-9);
        // Evaluating at any sample returns its cumulative fraction > 0.
        for &v in values.iter().take(10) {
            prop_assert!(cdf_at(&points, v) > 0.0);
        }
    }

    /// The median lies between the 25th and 75th percentiles.
    #[test]
    fn percentile_ordering(values in proptest::collection::vec(0.0f64..1e9, 1..100)) {
        let p25 = percentile(&values, 25.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p75 = percentile(&values, 75.0).unwrap();
        prop_assert!(p25 <= p50 + 1e-9);
        prop_assert!(p50 <= p75 + 1e-9);
    }

    /// Identical seeds generate identical streams; the stream is unchanged
    /// by interleaved splits (split consumes exactly one draw).
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let _ = a.split();
        let _ = b.next_u64();
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
