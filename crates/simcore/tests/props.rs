//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use hawk_simcore::stats::{cdf, cdf_at, percentile};
use hawk_simcore::{EventQueue, IndexedMinHeap, SimRng, SimTime};

proptest! {
    /// Events pop in non-decreasing time order, FIFO among equal times.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// The indexed heap agrees with a naive argmin after any op sequence.
    #[test]
    fn indexed_heap_matches_naive(
        n in 1usize..40,
        ops in proptest::collection::vec((0usize..40, 0u64..10_000, 0u8..3), 1..200),
    ) {
        let mut heap = IndexedMinHeap::new(n, 0);
        let mut naive = vec![0u64; n];
        for (id, value, kind) in ops {
            let id = id % n;
            match kind {
                0 => {
                    heap.add(id, value);
                    naive[id] += value;
                }
                1 => {
                    heap.sub(id, value);
                    naive[id] = naive[id].saturating_sub(value);
                }
                _ => {
                    heap.set(id, value);
                    naive[id] = value;
                }
            }
            let expect = (0..n).min_by_key(|&i| (naive[i], i)).unwrap();
            prop_assert_eq!(heap.min_id(), expect);
            prop_assert_eq!(heap.min_key(), naive[expect]);
            prop_assert!(heap.check_invariants());
        }
    }

    /// `gen_range` respects bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = rng.gen_range(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    /// `sample_distinct` returns exactly `k` distinct in-bounds indices.
    #[test]
    fn rng_sample_distinct_props(seed in any::<u64>(), n in 1usize..500, k_frac in 0.0f64..1.0) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = SimRng::seed_from_u64(seed);
        let s = rng.sample_distinct(n, k);
        prop_assert_eq!(s.len(), k);
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// The empirical CDF is a valid distribution function.
    #[test]
    fn cdf_is_monotone_distribution(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let points = cdf(&values);
        prop_assert!(!points.is_empty());
        for w in points.windows(2) {
            prop_assert!(w[0].value < w[1].value);
            prop_assert!(w[0].fraction < w[1].fraction);
        }
        let last = points.last().unwrap();
        prop_assert!((last.fraction - 1.0).abs() < 1e-9);
        // Evaluating at any sample returns its cumulative fraction > 0.
        for &v in values.iter().take(10) {
            prop_assert!(cdf_at(&points, v) > 0.0);
        }
    }

    /// The median lies between the 25th and 75th percentiles.
    #[test]
    fn percentile_ordering(values in proptest::collection::vec(0.0f64..1e9, 1..100)) {
        let p25 = percentile(&values, 25.0).unwrap();
        let p50 = percentile(&values, 50.0).unwrap();
        let p75 = percentile(&values, 75.0).unwrap();
        prop_assert!(p25 <= p50 + 1e-9);
        prop_assert!(p50 <= p75 + 1e-9);
    }

    /// Identical seeds generate identical streams; the stream is unchanged
    /// by interleaved splits (split consumes exactly one draw).
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let _ = a.split();
        let _ = b.next_u64();
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
