//! Job arrival processes.
//!
//! The paper derives job submission times from a Poisson process (§2.3 uses
//! a 50 s mean; §4.1's real-cluster runs vary the mean inter-arrival time as
//! a multiple of the mean task runtime).

use hawk_simcore::{SimDuration, SimRng, SimTime};

use crate::job::Trace;

/// A Poisson arrival process: exponential i.i.d. inter-arrival gaps.
///
/// # Examples
///
/// ```
/// use hawk_simcore::{SimDuration, SimRng};
/// use hawk_workload::arrivals::PoissonArrivals;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut arrivals = PoissonArrivals::new(SimDuration::from_secs(50));
/// let t1 = arrivals.next_arrival(&mut rng);
/// let t2 = arrivals.next_arrival(&mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean: SimDuration,
    now: SimTime,
}

impl PoissonArrivals {
    /// Creates a process with the given mean inter-arrival time, starting at
    /// time zero.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn new(mean: SimDuration) -> Self {
        assert!(
            !mean.is_zero(),
            "Poisson mean inter-arrival must be positive"
        );
        PoissonArrivals {
            mean,
            now: SimTime::ZERO,
        }
    }

    /// Draws the next arrival time (strictly increasing except for
    /// microsecond-rounding collisions, which are allowed by [`Trace`]).
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        let gap = rng.exponential(self.mean.as_secs_f64());
        self.now += SimDuration::from_secs_f64(gap);
        self.now
    }

    /// Generates `count` arrival times.
    pub fn take(&mut self, count: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(count);
        self.take_into(count, rng, &mut out);
        out
    }

    /// Like [`PoissonArrivals::take`], writing into a caller-recycled
    /// buffer (cleared first) so repeated draws allocate nothing once the
    /// buffer has warmed up. Delegates to the one shared
    /// [`ArrivalProcess::take_into`] implementation.
    ///
    /// [`ArrivalProcess::take_into`]: crate::scenario::ArrivalProcess::take_into
    pub fn take_into(&mut self, count: usize, rng: &mut SimRng, out: &mut Vec<SimTime>) {
        crate::scenario::ArrivalProcess::take_into(self, count, rng, out);
    }
}

/// Rewrites a trace's submission times with a fresh Poisson process.
///
/// Used by the prototype experiments (Figures 16/17), which re-run the same
/// 3,300-job sample at several load levels by regenerating arrivals with
/// mean inter-arrival = `multiplier × mean task runtime` (§4.1).
pub fn with_poisson_arrivals(trace: &Trace, mean: SimDuration, rng: &mut SimRng) -> Trace {
    crate::scenario::retime(trace, &mut PoissonArrivals::new(mean), rng)
}

/// A bursty (two-state Markov-modulated Poisson) arrival process.
///
/// The paper's simulator uses plain Poisson arrivals, but real cluster
/// traces are bursty — retries, cron fan-outs and diurnal waves submit
/// clumps of jobs. Burstiness is what stresses a statically-sized short
/// partition (§4.6's split cluster) and what Hawk's spill-over into the
/// general partition absorbs. This extension alternates between a *calm*
/// state with mean gap `calm_mean` and a *burst* state with mean gap
/// `calm_mean / burst_factor`, with geometrically distributed state
/// lengths. See the `ablation_burstiness` bench.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    calm_mean: SimDuration,
    burst_factor: f64,
    /// Probability that the next job stays in the current state.
    stay_calm: f64,
    stay_burst: f64,
    in_burst: bool,
    now: SimTime,
}

impl BurstyArrivals {
    /// Creates a bursty process.
    ///
    /// * `calm_mean` — mean inter-arrival in the calm state;
    /// * `burst_factor` — how much faster jobs arrive inside a burst
    ///   (≥ 1; a factor of 1 degenerates to Poisson);
    /// * `mean_calm_run` / `mean_burst_run` — expected number of
    ///   consecutive jobs submitted in each state.
    ///
    /// # Panics
    ///
    /// Panics on a zero mean, a factor below 1, or zero run lengths.
    pub fn new(
        calm_mean: SimDuration,
        burst_factor: f64,
        mean_calm_run: f64,
        mean_burst_run: f64,
    ) -> Self {
        assert!(!calm_mean.is_zero(), "calm mean must be positive");
        assert!(burst_factor >= 1.0, "burst factor must be >= 1");
        assert!(
            mean_calm_run >= 1.0 && mean_burst_run >= 1.0,
            "state runs must average at least one job"
        );
        BurstyArrivals {
            calm_mean,
            burst_factor,
            stay_calm: 1.0 - 1.0 / mean_calm_run,
            stay_burst: 1.0 - 1.0 / mean_burst_run,
            in_burst: false,
            now: SimTime::ZERO,
        }
    }

    /// True if the process is currently inside a burst.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Draws the next arrival time.
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        let stay = if self.in_burst {
            self.stay_burst
        } else {
            self.stay_calm
        };
        if !rng.chance(stay) {
            self.in_burst = !self.in_burst;
        }
        let mean = if self.in_burst {
            self.calm_mean.as_secs_f64() / self.burst_factor
        } else {
            self.calm_mean.as_secs_f64()
        };
        self.now += SimDuration::from_secs_f64(rng.exponential(mean));
        self.now
    }
}

/// Rewrites a trace's submissions with a bursty process whose *average*
/// rate matches the trace's original rate, so overall offered load is
/// unchanged and only the arrival variance grows.
pub fn with_bursty_arrivals(
    trace: &Trace,
    burst_factor: f64,
    mean_calm_run: f64,
    mean_burst_run: f64,
    rng: &mut SimRng,
) -> Trace {
    assert!(trace.len() > 1, "need at least two jobs to derive a rate");
    let original_mean = trace.span().as_secs_f64() / (trace.len() - 1) as f64;
    // Fraction of jobs submitted inside bursts, from the stationary
    // distribution of the two-state chain.
    let burst_share = mean_burst_run / (mean_calm_run + mean_burst_run);
    // Solve for the calm mean so the blended mean matches the original:
    // blended = calm·(1-s) + (calm/f)·s.
    let calm = original_mean / ((1.0 - burst_share) + burst_share / burst_factor);
    let mut process = BurstyArrivals::new(
        SimDuration::from_secs_f64(calm),
        burst_factor,
        mean_calm_run,
        mean_burst_run,
    );
    crate::scenario::retime(trace, &mut process, rng)
}

/// A saturation ramp: Poisson arrivals whose rate steps past the
/// cluster's capacity and back.
///
/// The stream is cut into thirds by job count: the first third arrives
/// with mean gap `calm_mean` (calm), the middle third with mean gap
/// `calm_mean / overload` (the overload plateau), and the final third
/// calm again. With `overload` sized so the plateau's offered load
/// exceeds usable capacity, the scenario drives a cell past 100 % and
/// back — the admission-control stress test: a well-behaved serving mode
/// sheds or defers the excess during the plateau (bounded backlog)
/// instead of growing queues without bound, and recovers in the final
/// third.
#[derive(Debug, Clone)]
pub struct SaturationArrivals {
    calm_mean: SimDuration,
    overload: f64,
    total: usize,
    drawn: usize,
    now: SimTime,
}

impl SaturationArrivals {
    /// Creates a saturation ramp over `total` jobs.
    ///
    /// * `calm_mean` — mean inter-arrival outside the plateau;
    /// * `overload` — how much faster jobs arrive on the plateau (≥ 1;
    ///   1.0 degenerates to plain Poisson);
    /// * `total` — number of jobs the ramp is cut into thirds over.
    ///
    /// # Panics
    ///
    /// Panics on a zero mean, an overload below 1, or zero jobs.
    pub fn new(calm_mean: SimDuration, overload: f64, total: usize) -> Self {
        assert!(!calm_mean.is_zero(), "calm mean must be positive");
        assert!(overload >= 1.0, "overload factor must be >= 1");
        assert!(total > 0, "saturation ramp needs at least one job");
        SaturationArrivals {
            calm_mean,
            overload,
            total,
            drawn: 0,
            now: SimTime::ZERO,
        }
    }

    /// True while the process is on the overload plateau (middle third).
    pub fn in_overload(&self) -> bool {
        let phase = self.drawn * 3 / self.total;
        phase == 1
    }

    /// Draws the next arrival time.
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        let mean = if self.in_overload() {
            self.calm_mean.as_secs_f64() / self.overload
        } else {
            self.calm_mean.as_secs_f64()
        };
        self.drawn += 1;
        self.now += SimDuration::from_secs_f64(rng.exponential(mean));
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};

    #[test]
    fn arrivals_are_monotone() {
        let mut rng = SimRng::seed_from_u64(42);
        let mut p = PoissonArrivals::new(SimDuration::from_secs(50));
        let times = p.take(1000, &mut rng);
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn mean_gap_close_to_target() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut p = PoissonArrivals::new(SimDuration::from_secs(50));
        let n = 20_000;
        let times = p.take(n, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let mean_gap = span / n as f64;
        assert!(
            (mean_gap - 50.0).abs() < 1.5,
            "observed mean inter-arrival {mean_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mean_rejected() {
        PoissonArrivals::new(SimDuration::ZERO);
    }

    #[test]
    fn bursty_arrivals_are_monotone() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut p = BurstyArrivals::new(SimDuration::from_secs(10), 8.0, 50.0, 10.0);
        let mut last = SimTime::ZERO;
        for _ in 0..2_000 {
            let t = p.next_arrival(&mut rng);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn bursty_rate_matches_original_on_average() {
        let jobs: Vec<Job> = (0..4_000)
            .map(|i| Job {
                id: JobId(i),
                submission: SimTime::from_secs(i as u64 * 20),
                tasks: vec![SimDuration::from_secs(1)],
                generated_class: None,
            })
            .collect();
        let trace = Trace::new(jobs).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let bursty = with_bursty_arrivals(&trace, 10.0, 60.0, 15.0, &mut rng);
        let original_rate = trace.len() as f64 / trace.span().as_secs_f64();
        let bursty_rate = bursty.len() as f64 / bursty.span().as_secs_f64();
        let ratio = bursty_rate / original_rate;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "average rate drifted: ratio {ratio}"
        );
    }

    #[test]
    fn bursty_gaps_have_higher_variance_than_poisson() {
        let mut rng = SimRng::seed_from_u64(9);
        let mean = SimDuration::from_secs(10);
        let gaps = |times: &[SimTime]| -> Vec<f64> {
            times
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .collect()
        };
        let cv2 = |g: &[f64]| {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            let v = g.iter().map(|x| (x - m).powi(2)).sum::<f64>() / g.len() as f64;
            v / (m * m)
        };
        let poisson_times = PoissonArrivals::new(mean).take(5_000, &mut rng);
        let mut bursty = BurstyArrivals::new(mean, 20.0, 80.0, 20.0);
        let bursty_times: Vec<SimTime> =
            (0..5_000).map(|_| bursty.next_arrival(&mut rng)).collect();
        let poisson_cv2 = cv2(&gaps(&poisson_times));
        let bursty_cv2 = cv2(&gaps(&bursty_times));
        // Poisson gaps have CV² ≈ 1; the burst mixture must be clearly
        // over-dispersed.
        assert!(
            (0.8..=1.2).contains(&poisson_cv2),
            "poisson CV² {poisson_cv2}"
        );
        assert!(
            bursty_cv2 > 1.5,
            "bursty CV² {bursty_cv2} not over-dispersed"
        );
    }

    #[test]
    fn burst_factor_one_degenerates_to_poisson_rate() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut p = BurstyArrivals::new(SimDuration::from_secs(10), 1.0, 10.0, 10.0);
        let times: Vec<SimTime> = (0..20_000).map(|_| p.next_arrival(&mut rng)).collect();
        let mean_gap = times.last().unwrap().as_secs_f64() / times.len() as f64;
        assert!((mean_gap - 10.0).abs() < 0.5, "mean gap {mean_gap}");
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn bursty_rejects_sub_one_factor() {
        BurstyArrivals::new(SimDuration::from_secs(10), 0.5, 10.0, 10.0);
    }

    #[test]
    fn saturation_plateau_is_the_middle_third_and_much_faster() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 9_000;
        let mut p = SaturationArrivals::new(SimDuration::from_secs(30), 6.0, n);
        let mut times = Vec::with_capacity(n);
        for i in 0..n {
            assert_eq!(p.in_overload(), (n / 3..2 * n / 3).contains(&i), "job {i}");
            times.push(p.next_arrival(&mut rng));
        }
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let span = |range: std::ops::Range<usize>| {
            (times[range.end - 1] - times[range.start]).as_secs_f64() / (range.len() - 1) as f64
        };
        let calm_gap = span(0..n / 3);
        let plateau_gap = span(n / 3..2 * n / 3);
        let recovery_gap = span(2 * n / 3..n);
        assert!((calm_gap - 30.0).abs() < 3.0, "calm gap {calm_gap}");
        assert!((plateau_gap - 5.0).abs() < 1.0, "plateau gap {plateau_gap}");
        assert!(
            (recovery_gap - 30.0).abs() < 3.0,
            "recovery gap {recovery_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "overload factor")]
    fn saturation_rejects_sub_one_overload() {
        SaturationArrivals::new(SimDuration::from_secs(10), 0.9, 100);
    }

    #[test]
    fn rewrite_preserves_tasks() {
        let jobs = (0..10)
            .map(|i| Job {
                id: JobId(i),
                submission: SimTime::from_secs(i as u64 * 100),
                tasks: vec![SimDuration::from_secs(i as u64 + 1)],
                generated_class: None,
            })
            .collect();
        let trace = Trace::new(jobs).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let rewritten = with_poisson_arrivals(&trace, SimDuration::from_secs(10), &mut rng);
        assert_eq!(rewritten.len(), trace.len());
        for (a, b) in trace.jobs().iter().zip(rewritten.jobs()) {
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.id, b.id);
        }
        // Submissions changed (with overwhelming probability).
        assert_ne!(trace.jobs()[5].submission, rewritten.jobs()[5].submission);
    }
}
