//! A calibrated synthetic stand-in for the Google 2011 cluster trace.
//!
//! The paper evaluates on the public Google trace (506,460 jobs after
//! cleaning). The trace itself is not redistributable, so this module
//! generates a synthetic trace calibrated to the heterogeneity statistics
//! the paper reports for it (§2.1, Table 1, Figure 4):
//!
//! * the top ~10 % of jobs by mean task duration are "long" at the paper's
//!   1129 s cutoff,
//! * long jobs carry ~83.65 % of task-seconds,
//! * long jobs contribute ~28 % of all tasks,
//! * the per-job mean task duration of long jobs is ~7.3× that of short
//!   jobs (which implies the task-weighted ratio is ~13×, because task
//!   count and duration correlate positively within long jobs),
//! * task durations vary within a job.
//!
//! Every experiment consumes the trace only through `(submission time,
//! #tasks, per-task durations)`, so matching these marginals reproduces the
//! queueing dynamics the paper measures.
//!
//! # Model
//!
//! Job class is drawn Bernoulli (10 % long). Task counts are log-normal
//! (short: median 10, σ=1.0, clamped to ≤180; long: median 25, σ=1.3,
//! clamped to ≤8000 — the Figure 4c/4d axis ranges). Short jobs draw a mean
//! task duration log-normal (median 150 s, σ=0.85) truncated below the
//! cutoff; long jobs draw `base · (t/25)^0.344 · ε` with `ε` log-normal
//! (σ=0.5), truncated above the cutoff — the `(t/25)^0.344` term creates
//! the within-class count/duration correlation that separates the per-job
//! (7.34×) from the task-weighted (13×) duration ratios reported in §2.1.
//! Per-task durations are Gaussian around the job mean (σ = 0.5·mean,
//! positive-truncated). Submissions are Poisson.

use hawk_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::arrivals::PoissonArrivals;
use crate::job::{Job, JobClass, JobId, Trace};

/// The paper's short/long cutoff for the Google trace, in seconds.
pub const GOOGLE_CUTOFF_SECS: f64 = 1129.0;

/// Fraction of the cluster reserved as the short partition for the Google
/// trace (§4.1: 17 %, the long-job task-seconds complement of Table 1).
pub const GOOGLE_SHORT_PARTITION: f64 = 0.17;

/// Expected task-seconds per generated job; anchors load calibration.
///
/// Derived analytically from the distribution parameters below and verified
/// by the `calibration` test; used to pick the Poisson inter-arrival mean
/// that yields a target offered load at a given cluster size.
pub const EXPECTED_TASK_SECONDS_PER_JOB: f64 = 19_660.0;

/// The paper's Figure 5 cluster-size sweep (thousands of nodes).
pub const PAPER_NODE_SWEEP: [usize; 9] = [
    10_000, 15_000, 20_000, 25_000, 30_000, 35_000, 40_000, 45_000, 50_000,
];

/// Configuration for the synthetic Google-like trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoogleTraceConfig {
    /// Number of jobs to generate (the paper's cleaned trace has 506,460).
    pub jobs: usize,
    /// Mean Poisson inter-arrival time between job submissions.
    pub mean_interarrival: SimDuration,
    /// Probability that a job is drawn from the long population.
    pub long_fraction: f64,
    /// Relative per-task duration spread within a job (σ/mean).
    pub within_job_spread: f64,
}

impl GoogleTraceConfig {
    /// A paper-scale configuration: inter-arrival calibrated so that a
    /// 15,000-node cluster sees ≈90 % offered load, matching the "highly
    /// loaded but not overloaded" sweet spot of Figure 5.
    pub fn paper_scale(jobs: usize) -> Self {
        Self::with_scale(1, jobs)
    }

    /// A `scale`× scaled-down configuration: run the paper's experiments on
    /// clusters `scale`× smaller by slowing arrivals `scale`×, preserving
    /// offered load at every point of the sweep.
    pub fn with_scale(scale: u64, jobs: usize) -> Self {
        // λ = ρ·n / E[task-seconds per job] at the ρ=0.9, n=15,000 anchor.
        let base_interarrival = EXPECTED_TASK_SECONDS_PER_JOB / (0.9 * 15_000.0);
        GoogleTraceConfig {
            jobs,
            mean_interarrival: SimDuration::from_secs_f64(base_interarrival * scale as f64),
            long_fraction: 0.10,
            within_job_spread: 0.5,
        }
    }

    /// The Figure 5 node sweep scaled by the same factor passed to
    /// [`GoogleTraceConfig::with_scale`].
    pub fn scaled_node_sweep(scale: u64) -> Vec<usize> {
        PAPER_NODE_SWEEP
            .iter()
            .map(|&n| (n as u64 / scale).max(1) as usize)
            .collect()
    }

    /// Generates the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut root = SimRng::seed_from_u64(seed);
        let mut class_rng = root.split();
        let mut shape_rng = root.split();
        let mut task_rng = root.split();
        let mut arrival_rng = root.split();

        let mut arrivals = PoissonArrivals::new(self.mean_interarrival);
        let mut jobs = Vec::with_capacity(self.jobs);
        for i in 0..self.jobs {
            let submission = arrivals.next_arrival(&mut arrival_rng);
            let class = if class_rng.chance(self.long_fraction) {
                JobClass::Long
            } else {
                JobClass::Short
            };
            let (num_tasks, mean_dur) = draw_job_shape(class, &mut shape_rng);
            let tasks =
                draw_task_durations(num_tasks, mean_dur, self.within_job_spread, &mut task_rng);
            jobs.push(Job {
                id: JobId(i as u32),
                submission,
                tasks,
                generated_class: Some(class),
            });
        }
        Trace::new(jobs).expect("generator emits a valid trace")
    }
}

impl Default for GoogleTraceConfig {
    /// The default is the 10×-scaled configuration with 5,000 jobs, sized
    /// so the full Figure 5 sweep runs in seconds.
    fn default() -> Self {
        Self::with_scale(10, 5_000)
    }
}

/// Draws `(task count, mean task duration in seconds)` for one job.
fn draw_job_shape(class: JobClass, rng: &mut SimRng) -> (usize, f64) {
    match class {
        JobClass::Short => {
            let tasks = log_normal_count(rng, 10.0, 1.0, 180);
            // Truncate below the cutoff so the drawn mean is consistent with
            // the short class (realized means may still straddle it).
            let mean = loop {
                let d = 150.0 * rng.log_normal(0.0, 0.85);
                if d < GOOGLE_CUTOFF_SECS {
                    break d;
                }
            };
            (tasks, mean)
        }
        JobClass::Long => {
            let tasks = log_normal_count(rng, 25.0, 1.3, 8_000);
            // Positive count/duration correlation within the long class; see
            // the module docs for the derivation of the 0.344 exponent.
            let base = 1_200.0 * (tasks as f64 / 25.0).powf(0.344);
            let mean = loop {
                let d = base * rng.log_normal(0.0, 0.5);
                if d >= GOOGLE_CUTOFF_SECS {
                    break d;
                }
            };
            (tasks, mean)
        }
    }
}

/// Draws a log-normal integer count with the given median and sigma,
/// clamped to `[1, max]`.
fn log_normal_count(rng: &mut SimRng, median: f64, sigma: f64, max: usize) -> usize {
    let x = median * rng.log_normal(0.0, sigma);
    (x.round() as usize).clamp(1, max)
}

/// Draws per-task durations around a job mean: Gaussian with
/// σ = `spread`·mean, truncated positive.
pub(crate) fn draw_task_durations(
    count: usize,
    mean_secs: f64,
    spread: f64,
    rng: &mut SimRng,
) -> Vec<SimDuration> {
    (0..count)
        .map(|_| SimDuration::from_secs_f64(rng.positive_normal(mean_secs, spread * mean_secs)))
        .collect()
}

/// Chooses a mean inter-arrival time that offers `load` utilization on a
/// cluster of `nodes` servers for a trace averaging
/// [`EXPECTED_TASK_SECONDS_PER_JOB`] task-seconds per job.
pub fn interarrival_for_load(nodes: usize, load: f64) -> SimDuration {
    SimDuration::from_secs_f64(EXPECTED_TASK_SECONDS_PER_JOB / (load * nodes as f64))
}

/// Returns time zero for completeness of the public API surface.
///
/// The generator starts its Poisson process at [`SimTime::ZERO`]; exposed so
/// downstream code does not hard-code the convention.
pub fn trace_start() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Cutoff;
    use crate::stats::WorkloadStats;

    #[test]
    fn generator_is_deterministic() {
        let cfg = GoogleTraceConfig::with_scale(10, 200);
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a, b);
        let c = cfg.generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn job_count_and_ordering() {
        let cfg = GoogleTraceConfig::with_scale(10, 500);
        let t = cfg.generate(1);
        assert_eq!(t.len(), 500);
        for w in t.jobs().windows(2) {
            assert!(w[0].submission <= w[1].submission);
        }
    }

    #[test]
    fn calibration_matches_table1() {
        // Table 1 (Google 2011): 10.00 % long jobs, 83.65 % task-seconds.
        // §2.1 adds: long jobs are 28 % of tasks; per-job mean duration
        // ratio 7.34×. Verify the synthetic trace within sampling tolerance.
        let cfg = GoogleTraceConfig::with_scale(10, 20_000);
        let t = cfg.generate(42);
        let stats = WorkloadStats::by_cutoff(&t, Cutoff::GOOGLE_DEFAULT);

        let long_frac = stats.long_job_fraction;
        assert!(
            (0.085..=0.115).contains(&long_frac),
            "long job fraction {long_frac}"
        );
        let ts_share = stats.long_task_seconds_share;
        assert!(
            (0.79..=0.88).contains(&ts_share),
            "long task-seconds share {ts_share}"
        );
        let task_share = stats.long_task_share;
        assert!(
            (0.23..=0.33).contains(&task_share),
            "long task share {task_share}"
        );
        let ratio = stats.mean_duration_ratio;
        assert!(
            (5.0..=11.0).contains(&ratio),
            "per-job duration ratio {ratio}"
        );
    }

    #[test]
    fn generated_class_agrees_with_cutoff_mostly() {
        let cfg = GoogleTraceConfig::with_scale(10, 5_000);
        let t = cfg.generate(3);
        let cutoff = Cutoff::GOOGLE_DEFAULT;
        let agree = t
            .jobs()
            .iter()
            .filter(|j| cutoff.classify(j.mean_task_duration()) == j.generated_class.unwrap())
            .count();
        let frac = agree as f64 / t.len() as f64;
        assert!(frac > 0.97, "cutoff/provenance agreement {frac}");
    }

    #[test]
    fn task_count_bounds_respected() {
        let cfg = GoogleTraceConfig::with_scale(10, 3_000);
        let t = cfg.generate(5);
        for j in t.jobs() {
            assert!((1..=8_000).contains(&j.num_tasks()));
            if j.generated_class == Some(JobClass::Short) {
                assert!(
                    j.num_tasks() <= 180,
                    "short job with {} tasks",
                    j.num_tasks()
                );
            }
            for &d in &j.tasks {
                assert!(d > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn offered_load_matches_anchor() {
        // At scale 10 the 1,500-node point should see ≈0.9 offered load:
        // total task-seconds / (span · nodes).
        let cfg = GoogleTraceConfig::with_scale(10, 20_000);
        let t = cfg.generate(11);
        let ts = t.total_task_seconds().as_secs_f64();
        let span = t.span().as_secs_f64();
        let load = ts / (span * 1_500.0);
        assert!((0.7..=1.1).contains(&load), "offered load at anchor {load}");
    }

    #[test]
    fn interarrival_for_load_inverse_to_nodes() {
        let a = interarrival_for_load(15_000, 0.9);
        let b = interarrival_for_load(30_000, 0.9);
        assert!((a.as_secs_f64() / b.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_node_sweep_divides() {
        assert_eq!(
            GoogleTraceConfig::scaled_node_sweep(10),
            vec![1_000, 1_500, 2_000, 2_500, 3_000, 3_500, 4_000, 4_500, 5_000]
        );
        assert_eq!(
            GoogleTraceConfig::scaled_node_sweep(1).to_vec(),
            PAPER_NODE_SWEEP.to_vec()
        );
    }
}
