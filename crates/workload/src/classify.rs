//! Job classification: estimated task runtime vs. a cutoff (§3.3), and the
//! misestimation model of §4.8.
//!
//! Hawk computes a per-job *estimated task runtime* — the mean task duration
//! — and compares it against a cutoff threshold: smaller means short
//! (scheduled distributed), otherwise long (scheduled centrally). §4.8
//! studies robustness to estimation error by multiplying the correct
//! estimate by a uniform random factor in a configurable range.

use hawk_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::job::{JobClass, JobId, Trace};

/// The short/long cutoff threshold on estimated task runtime.
///
/// The paper's default for the Google trace is 1129 s; Figures 12/13 sweep
/// 750–2000 s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cutoff(pub SimDuration);

impl Cutoff {
    /// The paper's default Google-trace cutoff (1129 seconds).
    pub const GOOGLE_DEFAULT: Cutoff = Cutoff(SimDuration::from_secs(1129));

    /// Creates a cutoff from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Cutoff(SimDuration::from_secs(secs))
    }

    /// Derives a cutoff from the statistics of past jobs (§3.3: "the value
    /// of the cutoff is based on statistics about past jobs because the
    /// relative proportion of short and long jobs … is expected to remain
    /// stable over time").
    ///
    /// Returns the `percentile`-th percentile of the trace's estimated
    /// task runtimes, so that `100 − percentile` percent of (similar
    /// future) jobs classify as long. The paper's Google cutoff of 1129 s
    /// is the 90th percentile of that trace.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty.
    pub fn from_history(history: &Trace, percentile: f64) -> Self {
        assert!(!history.is_empty(), "cutoff derivation needs past jobs");
        let estimates: Vec<f64> = history
            .jobs()
            .iter()
            .map(|j| j.mean_task_duration().as_secs_f64())
            .collect();
        let value =
            hawk_simcore::stats::percentile(&estimates, percentile).expect("non-empty history");
        Cutoff(SimDuration::from_secs_f64(value))
    }

    /// Classifies an estimated task runtime: `< cutoff` is short (§3.3).
    pub fn classify(self, estimate: SimDuration) -> JobClass {
        if estimate < self.0 {
            JobClass::Short
        } else {
            JobClass::Long
        }
    }
}

/// The misestimation magnitude of §4.8: the correct estimate is multiplied
/// by a factor drawn uniformly from `[lo, hi]` per job.
///
/// The paper sweeps symmetric ranges 0.1–1.9 through 0.7–1.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MisestimateRange {
    /// Lower bound of the multiplicative factor.
    pub lo: f64,
    /// Upper bound of the multiplicative factor.
    pub hi: f64,
}

impl MisestimateRange {
    /// A symmetric range `[1-delta, 1+delta]`, as swept in Figure 14.
    pub fn symmetric(delta: f64) -> Self {
        MisestimateRange {
            lo: 1.0 - delta,
            hi: 1.0 + delta,
        }
    }

    /// The exact-estimation range `[1, 1]`.
    pub fn exact() -> Self {
        MisestimateRange { lo: 1.0, hi: 1.0 }
    }

    /// Draws one factor.
    fn draw(&self, rng: &mut SimRng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.uniform(self.lo, self.hi)
        }
    }
}

/// Per-job task-runtime estimates, the input to Hawk's classification and to
/// the centralized scheduler's waiting-time bookkeeping.
///
/// # Examples
///
/// ```
/// use hawk_simcore::{SimDuration, SimTime};
/// use hawk_workload::{Job, JobClass, JobId, Trace};
/// use hawk_workload::classify::{Cutoff, JobEstimates};
///
/// let trace = Trace::new(vec![Job {
///     id: JobId(0),
///     submission: SimTime::ZERO,
///     tasks: vec![SimDuration::from_secs(100), SimDuration::from_secs(300)],
///     generated_class: None,
/// }])
/// .unwrap();
///
/// let est = JobEstimates::exact(&trace);
/// assert_eq!(est.estimate(JobId(0)), SimDuration::from_secs(200));
/// let cutoff = Cutoff::from_secs(250);
/// assert_eq!(est.class(JobId(0), cutoff), JobClass::Short);
/// ```
#[derive(Debug, Clone)]
pub struct JobEstimates {
    estimates: Vec<SimDuration>,
}

impl JobEstimates {
    /// Exact estimates: the true mean task duration of every job.
    pub fn exact(trace: &Trace) -> Self {
        JobEstimates {
            estimates: trace
                .jobs()
                .iter()
                .map(|j| j.mean_task_duration())
                .collect(),
        }
    }

    /// Misestimated estimates: each job's correct estimate multiplied by an
    /// independent uniform factor from `range` (§4.8).
    pub fn misestimated(trace: &Trace, range: MisestimateRange, rng: &mut SimRng) -> Self {
        JobEstimates {
            estimates: trace
                .jobs()
                .iter()
                .map(|j| {
                    let factor = range.draw(rng);
                    SimDuration::from_secs_f64(j.mean_task_duration().as_secs_f64() * factor)
                })
                .collect(),
        }
    }

    /// The estimate for `job`.
    pub fn estimate(&self, job: JobId) -> SimDuration {
        self.estimates[job.index()]
    }

    /// Classifies `job` under `cutoff` using this estimate set.
    pub fn class(&self, job: JobId, cutoff: Cutoff) -> JobClass {
        cutoff.classify(self.estimate(job))
    }

    /// Number of jobs covered.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// True if no jobs are covered.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// The fraction of jobs classified long under `cutoff`.
    pub fn long_fraction(&self, cutoff: Cutoff) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        let long = self
            .estimates
            .iter()
            .filter(|&&e| cutoff.classify(e).is_long())
            .count();
        long as f64 / self.estimates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use hawk_simcore::SimTime;

    fn mk_trace(mean_secs: &[u64]) -> Trace {
        let jobs = mean_secs
            .iter()
            .enumerate()
            .map(|(i, &s)| Job {
                id: JobId(i as u32),
                submission: SimTime::from_secs(i as u64),
                tasks: vec![SimDuration::from_secs(s); 2],
                generated_class: None,
            })
            .collect();
        Trace::new(jobs).unwrap()
    }

    #[test]
    fn cutoff_boundary_is_long() {
        let c = Cutoff::from_secs(100);
        assert_eq!(c.classify(SimDuration::from_secs(99)), JobClass::Short);
        // The paper says "smaller than the cutoff" is short, so equality is long.
        assert_eq!(c.classify(SimDuration::from_secs(100)), JobClass::Long);
        assert_eq!(c.classify(SimDuration::from_secs(101)), JobClass::Long);
    }

    #[test]
    fn exact_estimates_are_means() {
        let t = mk_trace(&[50, 2000]);
        let e = JobEstimates::exact(&t);
        assert_eq!(e.estimate(JobId(0)), SimDuration::from_secs(50));
        assert_eq!(e.estimate(JobId(1)), SimDuration::from_secs(2000));
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
    }

    #[test]
    fn long_fraction_counts() {
        let t = mk_trace(&[50, 2000, 3000, 10]);
        let e = JobEstimates::exact(&t);
        assert_eq!(e.long_fraction(Cutoff::from_secs(1129)), 0.5);
        assert_eq!(e.long_fraction(Cutoff::from_secs(1)), 1.0);
        assert_eq!(e.long_fraction(Cutoff::from_secs(100_000)), 0.0);
    }

    #[test]
    fn misestimation_respects_range() {
        let t = mk_trace(&[1000; 200]);
        let mut rng = SimRng::seed_from_u64(1);
        let range = MisestimateRange { lo: 0.5, hi: 1.5 };
        let e = JobEstimates::misestimated(&t, range, &mut rng);
        let mut below = 0;
        let mut above = 0;
        for i in 0..200 {
            let est = e.estimate(JobId(i)).as_secs_f64();
            assert!(
                (499.0..=1501.0).contains(&est),
                "estimate {est} out of range"
            );
            if est < 1000.0 {
                below += 1;
            } else {
                above += 1;
            }
        }
        // Roughly symmetric around the truth.
        assert!(below > 50 && above > 50, "below={below} above={above}");
    }

    #[test]
    fn exact_misestimation_range_is_identity() {
        let t = mk_trace(&[123, 456]);
        let mut rng = SimRng::seed_from_u64(2);
        let e = JobEstimates::misestimated(&t, MisestimateRange::exact(), &mut rng);
        let exact = JobEstimates::exact(&t);
        for i in 0..2 {
            assert_eq!(e.estimate(JobId(i)), exact.estimate(JobId(i)));
        }
    }

    #[test]
    fn symmetric_range_constructor() {
        let r = MisestimateRange::symmetric(0.9);
        assert!((r.lo - 0.1).abs() < 1e-12);
        assert!((r.hi - 1.9).abs() < 1e-12);
    }

    #[test]
    fn cutoff_from_history_tracks_percentile() {
        // 90 jobs at 100 s, 10 jobs at 5000 s: the 90th percentile sits
        // between the populations, classifying exactly the slow ones long.
        let mut means = vec![100u64; 90];
        means.extend(vec![5_000u64; 10]);
        let history = mk_trace(&means);
        let cutoff = Cutoff::from_history(&history, 90.0);
        let est = JobEstimates::exact(&history);
        let long = (0..100)
            .filter(|&i| est.class(JobId(i), cutoff).is_long())
            .count();
        assert_eq!(long, 10);
    }

    #[test]
    fn cutoff_from_history_on_google_like_trace_near_default() {
        // The synthetic Google trace is calibrated so its 90th-percentile
        // estimate lands near the paper's 1129 s cutoff.
        let trace = crate::google::GoogleTraceConfig::with_scale(10, 5_000).generate(13);
        let derived = Cutoff::from_history(&trace, 90.0);
        let secs = derived.0.as_secs_f64();
        assert!(
            (700.0..=1_700.0).contains(&secs),
            "derived cutoff {secs}s too far from 1129s"
        );
    }

    #[test]
    #[should_panic(expected = "needs past jobs")]
    fn cutoff_from_empty_history_panics() {
        Cutoff::from_history(&Trace::new(vec![]).unwrap(), 90.0);
    }

    #[test]
    fn misclassification_flows_from_misestimation() {
        // A job right at the cutoff flips class when underestimated.
        let t = mk_trace(&[1200]);
        let cutoff = Cutoff::from_secs(1129);
        let exact = JobEstimates::exact(&t);
        assert_eq!(exact.class(JobId(0), cutoff), JobClass::Long);
        let mut rng = SimRng::seed_from_u64(3);
        let low = JobEstimates::misestimated(&t, MisestimateRange { lo: 0.5, hi: 0.5 }, &mut rng);
        assert_eq!(low.class(JobId(0), cutoff), JobClass::Short);
    }
}
