//! The §2.3 motivating scenario behind Figure 1.
//!
//! "1000 jobs need to be scheduled in a cluster of 15000 servers. 95 % of
//! the jobs are considered short. Each short job has 100 tasks, and each
//! task takes 100 s to complete. 5 % of the jobs are long. Each has 1000
//! tasks, and each task takes 20000 s. The job submission times are derived
//! from a Poisson distribution with a mean of 50 s."
//!
//! Running Sparrow on this trace shows severe head-of-line blocking: the
//! paper reports median cluster utilization 86 %, maximum 97.8 %, and a
//! short-job runtime CDF with a tail beyond 15,000 s even though an
//! omniscient scheduler would finish most short jobs in ≈100 s.

use hawk_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::PoissonArrivals;
use crate::job::{Job, JobClass, JobId, Trace};

/// Parameters of the §2.3 scenario, defaulting to the paper's values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MotivationConfig {
    /// Total jobs (paper: 1000).
    pub jobs: usize,
    /// Probability a job is short (paper: 0.95).
    pub short_fraction: f64,
    /// Tasks per short job (paper: 100).
    pub short_tasks: usize,
    /// Duration of each short task (paper: 100 s).
    pub short_task_duration: SimDuration,
    /// Tasks per long job (paper: 1000).
    pub long_tasks: usize,
    /// Duration of each long task (paper: 20,000 s).
    pub long_task_duration: SimDuration,
    /// Mean Poisson inter-arrival time (paper: 50 s).
    pub mean_interarrival: SimDuration,
}

impl MotivationConfig {
    /// The cluster size the paper pairs with this workload.
    pub const PAPER_NODES: usize = 15_000;

    /// Generates the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut root = SimRng::seed_from_u64(seed);
        let mut class_rng = root.split();
        let mut arrival_rng = root.split();
        let mut arrivals = PoissonArrivals::new(self.mean_interarrival);
        let mut jobs = Vec::with_capacity(self.jobs);
        for i in 0..self.jobs {
            let submission = arrivals.next_arrival(&mut arrival_rng);
            let (class, count, dur) = if class_rng.chance(self.short_fraction) {
                (JobClass::Short, self.short_tasks, self.short_task_duration)
            } else {
                (JobClass::Long, self.long_tasks, self.long_task_duration)
            };
            jobs.push(Job {
                id: JobId(i as u32),
                submission,
                tasks: vec![dur; count],
                generated_class: Some(class),
            });
        }
        Trace::new(jobs).expect("generator emits a valid trace")
    }
}

impl Default for MotivationConfig {
    fn default() -> Self {
        MotivationConfig {
            jobs: 1_000,
            short_fraction: 0.95,
            short_tasks: 100,
            short_task_duration: SimDuration::from_secs(100),
            long_tasks: 1_000,
            long_task_duration: SimDuration::from_secs(20_000),
            mean_interarrival: SimDuration::from_secs(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = MotivationConfig::default();
        assert_eq!(cfg.jobs, 1_000);
        assert_eq!(cfg.short_tasks, 100);
        assert_eq!(cfg.long_tasks, 1_000);
        assert_eq!(cfg.short_task_duration, SimDuration::from_secs(100));
        assert_eq!(cfg.long_task_duration, SimDuration::from_secs(20_000));
        assert_eq!(MotivationConfig::PAPER_NODES, 15_000);
    }

    #[test]
    fn class_mix_close_to_95_5() {
        let t = MotivationConfig::default().generate(1);
        let short = t
            .jobs()
            .iter()
            .filter(|j| j.generated_class == Some(JobClass::Short))
            .count();
        assert!((920..=975).contains(&short), "short jobs: {short}");
    }

    #[test]
    fn task_shapes_are_exact() {
        let t = MotivationConfig::default().generate(2);
        for j in t.jobs() {
            match j.generated_class.unwrap() {
                JobClass::Short => {
                    assert_eq!(j.num_tasks(), 100);
                    assert!(j.tasks.iter().all(|&d| d == SimDuration::from_secs(100)));
                }
                JobClass::Long => {
                    assert_eq!(j.num_tasks(), 1_000);
                    assert!(j.tasks.iter().all(|&d| d == SimDuration::from_secs(20_000)));
                }
            }
        }
    }

    #[test]
    fn long_jobs_dominate_task_seconds() {
        // 5 % of jobs × 1000 tasks × 20,000 s ≫ 95 % × 100 × 100 s: the
        // defining heterogeneity of the motivation (≈99 % of task-seconds).
        let t = MotivationConfig::default().generate(3);
        let stats = crate::stats::WorkloadStats::by_provenance(
            &t,
            crate::classify::Cutoff::from_secs(1_000),
        );
        assert!(stats.long_task_seconds_share > 0.95);
    }
}
