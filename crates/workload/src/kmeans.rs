//! Synthetic traces derived from k-means workload descriptions (§4.1).
//!
//! The paper creates the Cloudera-b/c/d, Facebook 2010 and Yahoo 2011
//! traces from the published k-means clusterings of those workloads
//! ([Chen et al., VLDB 2012] and [Chen et al., MASCOTS 2011]): the first
//! cluster is the short jobs, the rest are long. Per cluster, the centroid
//! values for tasks-per-job and mean task duration are used as the *scale*
//! of an exponential distribution to draw each job's task count and mean
//! task duration; per-task runtimes are then Gaussian with σ = 2·mean,
//! truncated positive. This module implements exactly that procedure.
//!
//! The centroid tables below are calibrated so the generated traces match
//! the paper's Table 1 (long-job fraction and task-seconds share) and
//! Table 2 (job counts); the derivation is in `DESIGN.md`.

use hawk_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::PoissonArrivals;
use crate::job::{Job, JobClass, JobId, Trace};

/// One k-means cluster of the source workload description.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Fraction of all jobs drawn from this cluster.
    pub weight: f64,
    /// Centroid (exponential scale) for the number of tasks per job.
    pub tasks_centroid: f64,
    /// Centroid (exponential scale) for the mean task duration, seconds.
    pub duration_centroid_secs: f64,
    /// Whether this is the short-jobs cluster ("the first cluster", §4.1).
    pub class: JobClass,
}

/// Configuration for a k-means-derived synthetic trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmeansTraceConfig {
    /// Workload name, e.g. `"facebook-2010"`.
    pub name: &'static str,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean Poisson inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// The cluster mixture; weights must sum to 1.
    pub clusters: Vec<ClusterSpec>,
    /// Short-partition fraction Hawk uses for this workload (§4.1).
    pub short_partition_fraction: f64,
    /// Default short/long cutoff for scheduling experiments, seconds.
    pub default_cutoff_secs: u64,
}

/// Expected task-seconds per job of the mixture (product of exponential
/// means, independence).
fn expected_task_seconds(clusters: &[ClusterSpec]) -> f64 {
    clusters
        .iter()
        .map(|c| c.weight * c.tasks_centroid * c.duration_centroid_secs)
        .sum()
}

impl KmeansTraceConfig {
    /// Mean inter-arrival so that `nodes` servers see ≈`load` offered load.
    fn interarrival_for(clusters: &[ClusterSpec], nodes: f64, load: f64) -> SimDuration {
        SimDuration::from_secs_f64(expected_task_seconds(clusters) / (load * nodes))
    }

    /// Cloudera-b 2011: 7.67 % long jobs carrying 99.65 % of task-seconds
    /// (Table 1; job count not used in the paper's simulations).
    pub fn cloudera_b(jobs: usize) -> Self {
        let clusters = vec![
            ClusterSpec {
                weight: 0.9233,
                tasks_centroid: 10.0,
                duration_centroid_secs: 30.0,
                class: JobClass::Short,
            },
            ClusterSpec {
                weight: 0.0460,
                tasks_centroid: 300.0,
                duration_centroid_secs: 600.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0230,
                tasks_centroid: 800.0,
                duration_centroid_secs: 1_500.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0077,
                tasks_centroid: 2_200.0,
                duration_centroid_secs: 2_400.0,
                class: JobClass::Long,
            },
        ];
        let mean_interarrival = Self::interarrival_for(&clusters, 17_500.0, 0.9);
        KmeansTraceConfig {
            name: "cloudera-b-2011",
            jobs,
            mean_interarrival,
            clusters,
            short_partition_fraction: 0.02,
            default_cutoff_secs: 150,
        }
    }

    /// Cloudera-c 2011: 5.02 % long jobs, 92.79 % of task-seconds, 21,030
    /// jobs (Tables 1 and 2); short partition 9 % (§4.1).
    pub fn cloudera_c(jobs: usize) -> Self {
        let clusters = vec![
            ClusterSpec {
                weight: 0.9498,
                tasks_centroid: 15.0,
                duration_centroid_secs: 50.0,
                class: JobClass::Short,
            },
            ClusterSpec {
                weight: 0.0351,
                tasks_centroid: 120.0,
                duration_centroid_secs: 250.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0126,
                tasks_centroid: 450.0,
                duration_centroid_secs: 700.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0025,
                tasks_centroid: 1_400.0,
                duration_centroid_secs: 1_100.0,
                class: JobClass::Long,
            },
        ];
        let mean_interarrival = Self::interarrival_for(&clusters, 17_500.0, 0.9);
        KmeansTraceConfig {
            name: "cloudera-c-2011",
            jobs,
            mean_interarrival,
            clusters,
            short_partition_fraction: 0.09,
            default_cutoff_secs: 250,
        }
    }

    /// Cloudera-d 2011: 4.12 % long jobs, 89.72 % of task-seconds (Table 1).
    pub fn cloudera_d(jobs: usize) -> Self {
        let clusters = vec![
            ClusterSpec {
                weight: 0.9588,
                tasks_centroid: 12.0,
                duration_centroid_secs: 40.0,
                class: JobClass::Short,
            },
            ClusterSpec {
                weight: 0.0288,
                tasks_centroid: 100.0,
                duration_centroid_secs: 280.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0103,
                tasks_centroid: 400.0,
                duration_centroid_secs: 550.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0021,
                tasks_centroid: 900.0,
                duration_centroid_secs: 500.0,
                class: JobClass::Long,
            },
        ];
        let mean_interarrival = Self::interarrival_for(&clusters, 17_500.0, 0.9);
        KmeansTraceConfig {
            name: "cloudera-d-2011",
            jobs,
            mean_interarrival,
            clusters,
            short_partition_fraction: 0.10,
            default_cutoff_secs: 220,
        }
    }

    /// Facebook 2010: 2.01 % long jobs, 99.79 % of task-seconds, 1,169,184
    /// jobs (Tables 1 and 2); short partition 2 % (§4.1).
    pub fn facebook(jobs: usize) -> Self {
        let clusters = vec![
            ClusterSpec {
                weight: 0.9799,
                tasks_centroid: 5.0,
                duration_centroid_secs: 20.0,
                class: JobClass::Short,
            },
            ClusterSpec {
                weight: 0.0121,
                tasks_centroid: 400.0,
                duration_centroid_secs: 1_000.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0060,
                tasks_centroid: 2_000.0,
                duration_centroid_secs: 2_000.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0020,
                tasks_centroid: 5_000.0,
                duration_centroid_secs: 1_800.0,
                class: JobClass::Long,
            },
        ];
        let mean_interarrival = Self::interarrival_for(&clusters, 85_000.0, 0.9);
        KmeansTraceConfig {
            name: "facebook-2010",
            jobs,
            mean_interarrival,
            clusters,
            short_partition_fraction: 0.02,
            default_cutoff_secs: 100,
        }
    }

    /// Yahoo 2011: 9.41 % long jobs, 98.31 % of task-seconds, 24,262 jobs
    /// (Tables 1 and 2); short partition 2 % (§4.1).
    pub fn yahoo(jobs: usize) -> Self {
        let clusters = vec![
            ClusterSpec {
                weight: 0.9059,
                tasks_centroid: 20.0,
                duration_centroid_secs: 40.0,
                class: JobClass::Short,
            },
            ClusterSpec {
                weight: 0.0565,
                tasks_centroid: 300.0,
                duration_centroid_secs: 700.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0282,
                tasks_centroid: 800.0,
                duration_centroid_secs: 1_200.0,
                class: JobClass::Long,
            },
            ClusterSpec {
                weight: 0.0094,
                tasks_centroid: 250.0,
                duration_centroid_secs: 1_400.0,
                class: JobClass::Long,
            },
        ];
        let mean_interarrival = Self::interarrival_for(&clusters, 7_000.0, 0.9);
        KmeansTraceConfig {
            name: "yahoo-2011",
            jobs,
            mean_interarrival,
            clusters,
            short_partition_fraction: 0.02,
            default_cutoff_secs: 200,
        }
    }

    /// The paper's Table 2 job count for this workload's source trace.
    pub fn paper_job_count(&self) -> Option<usize> {
        match self.name {
            "cloudera-c-2011" => Some(21_030),
            "facebook-2010" => Some(1_169_184),
            "yahoo-2011" => Some(24_262),
            _ => None,
        }
    }

    /// Generates the trace deterministically from `seed`.
    ///
    /// Implements §4.1 verbatim: cluster choice by weight, exponential
    /// task-count and mean-duration draws from the centroid scales, and
    /// per-task Gaussian durations with σ = 2·mean truncated positive.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(
            (self.total_weight() - 1.0).abs() < 1e-6,
            "cluster weights must sum to 1"
        );
        let mut root = SimRng::seed_from_u64(seed);
        let mut pick_rng = root.split();
        let mut shape_rng = root.split();
        let mut task_rng = root.split();
        let mut arrival_rng = root.split();

        let mut arrivals = PoissonArrivals::new(self.mean_interarrival);
        let mut jobs = Vec::with_capacity(self.jobs);
        for i in 0..self.jobs {
            let submission = arrivals.next_arrival(&mut arrival_rng);
            let cluster = self.pick_cluster(&mut pick_rng);
            let num_tasks = (shape_rng.exponential(cluster.tasks_centroid).round() as usize).max(1);
            let mean_dur = shape_rng
                .exponential(cluster.duration_centroid_secs)
                .max(MIN_MEAN_TASK_SECS);
            // σ = 2·mean, truncated positive (§4.1).
            let tasks: Vec<SimDuration> = (0..num_tasks)
                .map(|_| {
                    SimDuration::from_secs_f64(task_rng.positive_normal(mean_dur, 2.0 * mean_dur))
                })
                .collect();
            jobs.push(Job {
                id: JobId(i as u32),
                submission,
                tasks,
                generated_class: Some(cluster.class),
            });
        }
        Trace::new(jobs).expect("generator emits a valid trace")
    }

    fn total_weight(&self) -> f64 {
        self.clusters.iter().map(|c| c.weight).sum()
    }

    fn pick_cluster(&self, rng: &mut SimRng) -> &ClusterSpec {
        let mut x = rng.next_f64();
        for cluster in &self.clusters {
            if x < cluster.weight {
                return cluster;
            }
            x -= cluster.weight;
        }
        self.clusters.last().expect("at least one cluster")
    }
}

/// Floor on a job's drawn mean task duration, seconds.
///
/// The exponential draw can return arbitrarily small values; sub-second
/// means produce microsecond tasks that exist only to stress the simulator.
/// One second is well below every cutoff, so the floor cannot change any
/// job's class.
const MIN_MEAN_TASK_SECS: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Cutoff;
    use crate::stats::WorkloadStats;

    fn check_table1(cfg: &KmeansTraceConfig, want_long: f64, want_ts: f64, seed: u64) {
        let trace = cfg.generate(seed);
        let stats =
            WorkloadStats::by_provenance(&trace, Cutoff::from_secs(cfg.default_cutoff_secs));
        assert!(
            (stats.long_job_fraction - want_long).abs() < 0.01,
            "{}: long fraction {} want {want_long}",
            cfg.name,
            stats.long_job_fraction
        );
        assert!(
            (stats.long_task_seconds_share - want_ts).abs() < 0.03,
            "{}: ts share {} want {want_ts}",
            cfg.name,
            stats.long_task_seconds_share
        );
    }

    #[test]
    fn cloudera_b_matches_table1() {
        check_table1(&KmeansTraceConfig::cloudera_b(20_000), 0.0767, 0.9965, 1);
    }

    #[test]
    fn cloudera_c_matches_table1() {
        check_table1(&KmeansTraceConfig::cloudera_c(21_030), 0.0502, 0.9279, 2);
    }

    #[test]
    fn cloudera_d_matches_table1() {
        check_table1(&KmeansTraceConfig::cloudera_d(20_000), 0.0412, 0.8972, 3);
    }

    #[test]
    fn facebook_matches_table1() {
        check_table1(&KmeansTraceConfig::facebook(50_000), 0.0201, 0.9979, 4);
    }

    #[test]
    fn yahoo_matches_table1() {
        check_table1(&KmeansTraceConfig::yahoo(24_262), 0.0941, 0.9831, 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = KmeansTraceConfig::yahoo(500);
        assert_eq!(cfg.generate(9), cfg.generate(9));
    }

    #[test]
    fn all_jobs_have_positive_tasks() {
        let cfg = KmeansTraceConfig::facebook(2_000);
        let t = cfg.generate(7);
        for j in t.jobs() {
            assert!(j.num_tasks() >= 1);
            for &d in &j.tasks {
                assert!(d > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for cfg in [
            KmeansTraceConfig::cloudera_b(1),
            KmeansTraceConfig::cloudera_c(1),
            KmeansTraceConfig::cloudera_d(1),
            KmeansTraceConfig::facebook(1),
            KmeansTraceConfig::yahoo(1),
        ] {
            assert!(
                (cfg.total_weight() - 1.0).abs() < 1e-9,
                "{} weights sum to {}",
                cfg.name,
                cfg.total_weight()
            );
        }
    }

    #[test]
    fn paper_job_counts() {
        assert_eq!(
            KmeansTraceConfig::cloudera_c(1).paper_job_count(),
            Some(21_030)
        );
        assert_eq!(
            KmeansTraceConfig::facebook(1).paper_job_count(),
            Some(1_169_184)
        );
        assert_eq!(KmeansTraceConfig::yahoo(1).paper_job_count(), Some(24_262));
        assert_eq!(KmeansTraceConfig::cloudera_b(1).paper_job_count(), None);
    }

    #[test]
    fn gaussian_task_durations_have_wide_spread() {
        // σ = 2·mean with positive truncation: the realized per-task spread
        // within a job must be substantial (coefficient of variation > 0.5).
        let cfg = KmeansTraceConfig::yahoo(300);
        let t = cfg.generate(11);
        let big_job = t
            .jobs()
            .iter()
            .filter(|j| j.num_tasks() >= 50)
            .max_by_key(|j| j.num_tasks())
            .expect("some job with many tasks");
        let durs: Vec<f64> = big_job.tasks.iter().map(|d| d.as_secs_f64()).collect();
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        let var = durs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / durs.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.5, "coefficient of variation {cv}");
    }
}
