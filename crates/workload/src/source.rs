//! The [`TraceSource`] trait: anything that can deterministically produce
//! a [`Trace`] from a seed.
//!
//! Every synthetic generator in this crate implements it, so experiment
//! harnesses (e.g. `hawk-core`'s `Experiment` builder) can accept "a
//! workload" without caring whether it is the Google-like generator, a
//! k-means-derived trace, the §2.3 motivation scenario, the prototype
//! sample — or a pre-built [`Trace`], which trivially sources itself.

use crate::google::GoogleTraceConfig;
use crate::job::Trace;
use crate::kmeans::KmeansTraceConfig;
use crate::motivation::MotivationConfig;
use crate::sample::PrototypeSampleConfig;

/// A deterministic trace generator: the same source and seed always
/// produce the same trace.
pub trait TraceSource {
    /// Human-readable workload name for reports and TSV output.
    fn label(&self) -> String;

    /// Generates the trace for `seed`.
    fn generate_trace(&self, seed: u64) -> Trace;
}

impl TraceSource for GoogleTraceConfig {
    fn label(&self) -> String {
        "google-2011".to_string()
    }

    fn generate_trace(&self, seed: u64) -> Trace {
        self.generate(seed)
    }
}

impl TraceSource for KmeansTraceConfig {
    fn label(&self) -> String {
        self.name.to_string()
    }

    fn generate_trace(&self, seed: u64) -> Trace {
        self.generate(seed)
    }
}

impl TraceSource for MotivationConfig {
    fn label(&self) -> String {
        "motivation-2.3".to_string()
    }

    fn generate_trace(&self, seed: u64) -> Trace {
        self.generate(seed)
    }
}

impl TraceSource for PrototypeSampleConfig {
    fn label(&self) -> String {
        "prototype-sample".to_string()
    }

    fn generate_trace(&self, seed: u64) -> Trace {
        self.generate(seed)
    }
}

/// A pre-built trace is its own source; the seed is ignored.
impl TraceSource for Trace {
    fn label(&self) -> String {
        "trace".to_string()
    }

    fn generate_trace(&self, _seed: u64) -> Trace {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_sources() {
        let sources: Vec<Box<dyn TraceSource>> = vec![
            Box::new(GoogleTraceConfig::with_scale(100, 40)),
            Box::new(KmeansTraceConfig::yahoo(40)),
            Box::new(MotivationConfig {
                jobs: 40,
                ..Default::default()
            }),
            Box::new(PrototypeSampleConfig {
                short_jobs: 20,
                long_jobs: 2,
                cluster_size: 8,
                duration_divisor: 100_000,
            }),
        ];
        for source in sources {
            // Seed 1 satisfies every generator (the prototype sample
            // requires a class mix its over-generation only guarantees
            // statistically).
            let a = source.generate_trace(1);
            let b = source.generate_trace(1);
            assert_eq!(a, b, "{} must be deterministic", source.label());
            assert!(!a.is_empty(), "{} generated no jobs", source.label());
        }
    }

    #[test]
    fn a_trace_sources_itself() {
        let trace = MotivationConfig {
            jobs: 5,
            ..Default::default()
        }
        .generate(1);
        assert_eq!(trace.generate_trace(123), trace);
        assert_eq!(trace.label(), "trace");
    }
}
