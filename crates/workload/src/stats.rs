//! Workload statistics: Table 1, Table 2 and the Figure 4 CDFs.
//!
//! Table 1 reports, per workload, the fraction of long jobs and the share
//! of task-seconds they consume. §2.1 additionally reports the long jobs'
//! share of tasks and the ratio of mean task durations. Figure 4 plots CDFs
//! of per-job mean task duration and task count, separately for long and
//! short jobs.

use hawk_simcore::stats::{cdf, CdfPoint};
use serde::{Deserialize, Serialize};

use crate::classify::Cutoff;
use crate::job::{Job, JobClass, Trace};

/// Heterogeneity statistics of a trace (Table 1 / §2.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of jobs in the trace (Table 2).
    pub total_jobs: usize,
    /// Number of long jobs.
    pub long_jobs: usize,
    /// Fraction of jobs classified long.
    pub long_job_fraction: f64,
    /// Long jobs' share of total task-seconds (Table 1).
    pub long_task_seconds_share: f64,
    /// Long jobs' share of the total task count (§2.1: 28 % for Google).
    pub long_task_share: f64,
    /// Ratio of per-job mean task duration, long/short (§2.1: 7.34×).
    pub mean_duration_ratio: f64,
}

impl WorkloadStats {
    /// Computes the statistics classifying jobs by `cutoff` on their true
    /// mean task duration — how the paper derives the Google numbers
    /// ("we order the jobs by average task duration", §2.1).
    pub fn by_cutoff(trace: &Trace, cutoff: Cutoff) -> Self {
        Self::compute(trace, |job| cutoff.classify(job.mean_task_duration()))
    }

    /// Computes the statistics using the generator's ground-truth class,
    /// falling back to `cutoff` for jobs without one — how Table 1 reports
    /// the k-means-derived workloads (class = source cluster).
    pub fn by_provenance(trace: &Trace, fallback: Cutoff) -> Self {
        Self::compute(trace, |job| {
            job.generated_class
                .unwrap_or_else(|| fallback.classify(job.mean_task_duration()))
        })
    }

    fn compute(trace: &Trace, class_of: impl Fn(&Job) -> JobClass) -> Self {
        let mut long_jobs = 0usize;
        let mut long_ts = 0.0f64;
        let mut short_ts = 0.0f64;
        let mut long_tasks = 0u64;
        let mut short_tasks = 0u64;
        let mut long_dur_sum = 0.0f64;
        let mut short_dur_sum = 0.0f64;

        for job in trace.jobs() {
            let ts = job.task_seconds().as_secs_f64();
            let mean = job.mean_task_duration().as_secs_f64();
            match class_of(job) {
                JobClass::Long => {
                    long_jobs += 1;
                    long_ts += ts;
                    long_tasks += job.num_tasks() as u64;
                    long_dur_sum += mean;
                }
                JobClass::Short => {
                    short_ts += ts;
                    short_tasks += job.num_tasks() as u64;
                    short_dur_sum += mean;
                }
            }
        }

        let total_jobs = trace.len();
        let short_jobs = total_jobs - long_jobs;
        let total_ts = long_ts + short_ts;
        let total_tasks = long_tasks + short_tasks;
        let long_mean = if long_jobs > 0 {
            long_dur_sum / long_jobs as f64
        } else {
            0.0
        };
        let short_mean = if short_jobs > 0 {
            short_dur_sum / short_jobs as f64
        } else {
            0.0
        };

        WorkloadStats {
            total_jobs,
            long_jobs,
            long_job_fraction: if total_jobs > 0 {
                long_jobs as f64 / total_jobs as f64
            } else {
                0.0
            },
            long_task_seconds_share: if total_ts > 0.0 {
                long_ts / total_ts
            } else {
                0.0
            },
            long_task_share: if total_tasks > 0 {
                long_tasks as f64 / total_tasks as f64
            } else {
                0.0
            },
            mean_duration_ratio: if short_mean > 0.0 {
                long_mean / short_mean
            } else {
                0.0
            },
        }
    }
}

/// The Figure 4 CDFs for one job class of one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassCdfs {
    /// CDF of per-job mean task duration, in seconds (Figures 4a/4b).
    pub task_duration: Vec<CdfPoint>,
    /// CDF of the number of tasks per job (Figures 4c/4d).
    pub tasks_per_job: Vec<CdfPoint>,
}

/// Computes the Figure 4 CDFs for `class`, classifying by provenance when
/// available, else by `cutoff`.
pub fn class_cdfs(trace: &Trace, class: JobClass, cutoff: Cutoff) -> ClassCdfs {
    let mut durations = Vec::new();
    let mut counts = Vec::new();
    for job in trace.jobs() {
        let c = job
            .generated_class
            .unwrap_or_else(|| cutoff.classify(job.mean_task_duration()));
        if c == class {
            durations.push(job.mean_task_duration().as_secs_f64());
            counts.push(job.num_tasks() as f64);
        }
    }
    ClassCdfs {
        task_duration: cdf(&durations),
        tasks_per_job: cdf(&counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use hawk_simcore::{SimDuration, SimTime};

    fn mk_job(id: u32, mean_secs: u64, tasks: usize, class: Option<JobClass>) -> Job {
        Job {
            id: JobId(id),
            submission: SimTime::from_secs(id as u64),
            tasks: vec![SimDuration::from_secs(mean_secs); tasks],
            generated_class: class,
        }
    }

    #[test]
    fn by_cutoff_partitions_task_seconds() {
        // One long job: 10 tasks × 1000 s = 10,000 ts.
        // Three short jobs: 5 tasks × 100 s = 500 ts each, 1,500 total.
        let t = Trace::new(vec![
            mk_job(0, 1000, 10, None),
            mk_job(1, 100, 5, None),
            mk_job(2, 100, 5, None),
            mk_job(3, 100, 5, None),
        ])
        .unwrap();
        let s = WorkloadStats::by_cutoff(&t, Cutoff::from_secs(500));
        assert_eq!(s.total_jobs, 4);
        assert_eq!(s.long_jobs, 1);
        assert!((s.long_job_fraction - 0.25).abs() < 1e-12);
        assert!((s.long_task_seconds_share - 10_000.0 / 11_500.0).abs() < 1e-12);
        assert!((s.long_task_share - 10.0 / 25.0).abs() < 1e-12);
        assert!((s.mean_duration_ratio - 10.0).abs() < 1e-12);
    }

    #[test]
    fn provenance_overrides_cutoff() {
        // The generator labels this slow job short; provenance stats follow
        // the label, cutoff stats follow the mean duration.
        let t = Trace::new(vec![
            mk_job(0, 1000, 1, Some(JobClass::Short)),
            mk_job(1, 100, 1, Some(JobClass::Long)),
        ])
        .unwrap();
        let prov = WorkloadStats::by_provenance(&t, Cutoff::from_secs(500));
        assert_eq!(prov.long_jobs, 1);
        assert!((prov.long_task_seconds_share - 100.0 / 1100.0).abs() < 1e-12);
        let cut = WorkloadStats::by_cutoff(&t, Cutoff::from_secs(500));
        assert!((cut.long_task_seconds_share - 1000.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_traces() {
        let empty = Trace::new(vec![]).unwrap();
        let s = WorkloadStats::by_cutoff(&empty, Cutoff::from_secs(1));
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.long_job_fraction, 0.0);
        assert_eq!(s.mean_duration_ratio, 0.0);

        // All-long trace: the short mean is zero, ratio degrades to 0.
        let all_long = Trace::new(vec![mk_job(0, 1000, 1, None)]).unwrap();
        let s = WorkloadStats::by_cutoff(&all_long, Cutoff::from_secs(1));
        assert_eq!(s.long_jobs, 1);
        assert_eq!(s.mean_duration_ratio, 0.0);
    }

    #[test]
    fn class_cdfs_filter_by_class() {
        let t = Trace::new(vec![
            mk_job(0, 1000, 10, None),
            mk_job(1, 100, 5, None),
            mk_job(2, 200, 7, None),
        ])
        .unwrap();
        let cutoff = Cutoff::from_secs(500);
        let short = class_cdfs(&t, JobClass::Short, cutoff);
        assert_eq!(short.task_duration.len(), 2);
        assert_eq!(short.tasks_per_job.len(), 2);
        let long = class_cdfs(&t, JobClass::Long, cutoff);
        assert_eq!(long.task_duration.len(), 1);
        assert_eq!(long.task_duration[0].value, 1000.0);
        assert_eq!(long.tasks_per_job[0].value, 10.0);
    }
}
