//! The trace model: jobs, tasks, and whole traces.
//!
//! A trace is exactly what the paper's simulator consumes (§4.1): a list of
//! tuples `(jobID, job submission time, number of tasks, duration of each
//! task)`. Durations vary within a job; the *estimated task runtime* used by
//! Hawk is the per-job mean (§3.3).

use std::fmt;

use hawk_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a job within a trace (dense, `0..trace.len()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl JobId {
    /// The job's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Short/long job classification (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Latency-sensitive job, scheduled in a distributed fashion.
    Short,
    /// Resource-heavy job, scheduled by the centralized component.
    Long,
}

impl JobClass {
    /// Returns true for [`JobClass::Long`].
    pub fn is_long(self) -> bool {
        matches!(self, JobClass::Long)
    }

    /// Returns true for [`JobClass::Short`].
    pub fn is_short(self) -> bool {
        matches!(self, JobClass::Short)
    }
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobClass::Short => write!(f, "short"),
            JobClass::Long => write!(f, "long"),
        }
    }
}

/// One job: a submission time plus the durations of its parallel tasks.
///
/// A job completes only after all of its tasks finish (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Dense trace-local identifier.
    pub id: JobId,
    /// Submission (arrival) time.
    pub submission: SimTime,
    /// Duration of each task. Length is the degree of parallelism.
    pub tasks: Vec<SimDuration>,
    /// Ground-truth class assigned by a synthetic generator, when the
    /// generator draws jobs from an explicitly short or long population
    /// (k-means-derived traces, §4.1). `None` for traces where class is
    /// defined only by the runtime-estimate cutoff.
    pub generated_class: Option<JobClass>,
}

impl Job {
    /// Number of tasks (`t` in the paper's probing discussion).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The paper's *estimated task runtime*: the mean task duration (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if the job has no tasks; [`Trace::new`] rejects such jobs.
    pub fn mean_task_duration(&self) -> SimDuration {
        assert!(!self.tasks.is_empty(), "job with zero tasks");
        let sum: u64 = self.tasks.iter().map(|d| d.as_micros()).sum();
        SimDuration::from_micros(sum / self.tasks.len() as u64)
    }

    /// Total work: the sum of task durations ("task-seconds", §2.1).
    pub fn task_seconds(&self) -> SimDuration {
        SimDuration::from_micros(self.tasks.iter().map(|d| d.as_micros()).sum())
    }

    /// An ideal lower bound on runtime: the longest single task.
    pub fn critical_task(&self) -> SimDuration {
        self.tasks
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Errors from [`Trace::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Jobs must be ordered by non-decreasing submission time.
    UnsortedSubmissions {
        /// Index of the first out-of-order job.
        at: usize,
    },
    /// Every job must have at least one task.
    EmptyJob {
        /// Index of the offending job.
        at: usize,
    },
    /// Job ids must be dense: `jobs[i].id == i`.
    NonDenseIds {
        /// Index of the offending job.
        at: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnsortedSubmissions { at } => {
                write!(f, "job at index {at} submitted before its predecessor")
            }
            TraceError::EmptyJob { at } => write!(f, "job at index {at} has zero tasks"),
            TraceError::NonDenseIds { at } => {
                write!(f, "job at index {at} has a non-dense id")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// An ordered collection of jobs — the unit every experiment runs on.
///
/// Invariants (enforced by [`Trace::new`]):
/// * jobs are sorted by non-decreasing submission time,
/// * every job has at least one task,
/// * job ids are dense (`jobs[i].id.index() == i`).
///
/// # Examples
///
/// ```
/// use hawk_simcore::{SimDuration, SimTime};
/// use hawk_workload::{Job, JobId, Trace};
///
/// let jobs = vec![Job {
///     id: JobId(0),
///     submission: SimTime::ZERO,
///     tasks: vec![SimDuration::from_secs(10), SimDuration::from_secs(20)],
///     generated_class: None,
/// }];
/// let trace = Trace::new(jobs).unwrap();
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.total_tasks(), 2);
/// assert_eq!(trace.job(JobId(0)).mean_task_duration(), SimDuration::from_secs(15));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Validates the invariants and builds a trace.
    pub fn new(jobs: Vec<Job>) -> Result<Self, TraceError> {
        for (i, job) in jobs.iter().enumerate() {
            if job.tasks.is_empty() {
                return Err(TraceError::EmptyJob { at: i });
            }
            if job.id.index() != i {
                return Err(TraceError::NonDenseIds { at: i });
            }
            if i > 0 && job.submission < jobs[i - 1].submission {
                return Err(TraceError::UnsortedSubmissions { at: i });
            }
        }
        Ok(Trace { jobs })
    }

    /// Builds a trace from unordered jobs by sorting and re-numbering them.
    pub fn from_unordered(mut jobs: Vec<Job>) -> Result<Self, TraceError> {
        jobs.sort_by_key(|j| j.submission);
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        Trace::new(jobs)
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Looks up a job by id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Total number of tasks across all jobs.
    pub fn total_tasks(&self) -> u64 {
        self.jobs.iter().map(|j| j.num_tasks() as u64).sum()
    }

    /// Total task-seconds across all jobs.
    pub fn total_task_seconds(&self) -> SimDuration {
        SimDuration::from_micros(self.jobs.iter().map(|j| j.task_seconds().as_micros()).sum())
    }

    /// The largest task count of any job (used by the prototype scale-down,
    /// §4.1 "Real cluster run").
    pub fn max_tasks_per_job(&self) -> usize {
        self.jobs.iter().map(Job::num_tasks).max().unwrap_or(0)
    }

    /// The mean task runtime over all tasks in the trace.
    pub fn mean_task_runtime(&self) -> SimDuration {
        let total = self.total_tasks();
        if total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.total_task_seconds().as_micros() / total)
    }

    /// Submission time of the last job.
    pub fn span(&self) -> SimDuration {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(first), Some(last)) => last.submission - first.submission,
            _ => SimDuration::ZERO,
        }
    }

    /// Serializes to JSON Lines, one job per line.
    ///
    /// The format is the natural serde_json encoding of [`Job`]
    /// (`{"id":0,"submission":µs,"tasks":[µs,…],"generated_class":null}`),
    /// but is produced by a hand-rolled encoder so the trace format works
    /// without external crates.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for job in &self.jobs {
            json::write_job(&mut out, job);
            out.push('\n');
        }
        out
    }

    /// Parses a trace from JSON Lines produced by [`Trace::to_json_lines`].
    pub fn from_json_lines(text: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let mut jobs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            jobs.push(
                json::parse_job(line).map_err(|e| format!("trace line {}: {e}", lineno + 1))?,
            );
        }
        Ok(Trace::new(jobs)?)
    }

    /// Returns the trace restricted to its first `n` jobs.
    pub fn take(&self, n: usize) -> Trace {
        Trace {
            jobs: self.jobs.iter().take(n).cloned().collect(),
        }
    }

    /// Writes the trace to `path` as JSON Lines.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_lines())
    }

    /// Loads a trace previously written by [`Trace::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json_lines(&text)
    }
}

mod json {
    //! Minimal JSON encoding of [`Job`] for the JSON Lines trace format.
    //!
    //! The schema is fixed and flat, so a purpose-built scanner is simpler
    //! and faster than a generic JSON parser — and it keeps the on-disk
    //! trace format independent of external crates.

    use super::{Job, JobClass, JobId};
    use hawk_simcore::{SimDuration, SimTime};

    pub(super) fn write_job(out: &mut String, job: &Job) {
        use std::fmt::Write;
        write!(
            out,
            "{{\"id\":{},\"submission\":{},\"tasks\":[",
            job.id.0,
            job.submission.as_micros()
        )
        .expect("writing to String cannot fail");
        for (i, t) in job.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}", t.as_micros()).expect("writing to String cannot fail");
        }
        let class = match job.generated_class {
            None => "null".to_string(),
            Some(JobClass::Short) => "\"Short\"".to_string(),
            Some(JobClass::Long) => "\"Long\"".to_string(),
        };
        write!(out, "],\"generated_class\":{class}}}").expect("writing to String cannot fail");
    }

    pub(super) fn parse_job(line: &str) -> Result<Job, String> {
        let mut p = Parser { rest: line };
        p.expect('{')?;
        let mut id = None;
        let mut submission = None;
        let mut tasks = None;
        let mut generated_class = None;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "id" => id = Some(p.number()? as u32),
                "submission" => submission = Some(SimTime::from_micros(p.number()?)),
                "tasks" => {
                    let mut v = Vec::new();
                    p.expect('[')?;
                    if !p.eat(']') {
                        loop {
                            v.push(SimDuration::from_micros(p.number()?));
                            if p.eat(']') {
                                break;
                            }
                            p.expect(',')?;
                        }
                    }
                    tasks = Some(v);
                }
                "generated_class" => {
                    generated_class = if p.eat_word("null") {
                        Some(None)
                    } else {
                        match p.string()?.as_str() {
                            "Short" => Some(Some(JobClass::Short)),
                            "Long" => Some(Some(JobClass::Long)),
                            other => return Err(format!("unknown job class {other:?}")),
                        }
                    };
                }
                // Unknown fields are skipped, as serde_json's derived
                // deserializer did before this codec replaced it.
                _ => p.skip_value()?,
            }
            if p.eat('}') {
                break;
            }
            p.expect(',')?;
        }
        p.end()?;
        Ok(Job {
            id: JobId(id.ok_or("missing field `id`")?),
            submission: submission.ok_or("missing field `submission`")?,
            tasks: tasks.ok_or("missing field `tasks`")?,
            generated_class: generated_class.ok_or("missing field `generated_class`")?,
        })
    }

    struct Parser<'a> {
        rest: &'a str,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            self.rest = self.rest.trim_start();
        }

        fn eat(&mut self, c: char) -> bool {
            self.skip_ws();
            if let Some(r) = self.rest.strip_prefix(c) {
                self.rest = r;
                true
            } else {
                false
            }
        }

        fn eat_word(&mut self, word: &str) -> bool {
            self.skip_ws();
            if let Some(r) = self.rest.strip_prefix(word) {
                self.rest = r;
                true
            } else {
                false
            }
        }

        fn expect(&mut self, c: char) -> Result<(), String> {
            if self.eat(c) {
                Ok(())
            } else {
                Err(format!("expected {c:?} at {:?}", self.head()))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            match self.rest.find('"') {
                Some(end) => {
                    let s = &self.rest[..end];
                    if s.contains('\\') {
                        return Err("escape sequences are not supported".into());
                    }
                    self.rest = &self.rest[end + 1..];
                    Ok(s.to_string())
                }
                None => Err("unterminated string".into()),
            }
        }

        /// Skips one string, allowing escape sequences (unlike
        /// [`Parser::string`], which only reads the codec's own
        /// escape-free keys and values).
        fn skip_string(&mut self) -> Result<(), String> {
            self.expect('"')?;
            let mut escaped = false;
            for (i, c) in self.rest.char_indices() {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => {
                        self.rest = &self.rest[i + 1..];
                        return Ok(());
                    }
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }

        /// Skips one JSON value of any shape (the payload of an unknown
        /// field).
        fn skip_value(&mut self) -> Result<(), String> {
            self.skip_ws();
            if self.rest.starts_with('"') {
                self.skip_string()
            } else if self.eat('[') {
                if self.eat(']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if self.eat(']') {
                        return Ok(());
                    }
                    self.expect(',')?;
                }
            } else if self.eat('{') {
                if self.eat('}') {
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.skip_string()?;
                    self.expect(':')?;
                    self.skip_value()?;
                    if self.eat('}') {
                        return Ok(());
                    }
                    self.expect(',')?;
                }
            } else if self.eat_word("null") || self.eat_word("true") || self.eat_word("false") {
                Ok(())
            } else {
                // Number (possibly signed/fractional/exponent).
                let len = self.rest.len()
                    - self
                        .rest
                        .trim_start_matches(|c: char| {
                            c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                        })
                        .len();
                if len == 0 {
                    return Err(format!("expected a JSON value at {:?}", self.head()));
                }
                self.rest = &self.rest[len..];
                Ok(())
            }
        }

        fn number(&mut self) -> Result<u64, String> {
            self.skip_ws();
            let digits = self.rest.len()
                - self
                    .rest
                    .trim_start_matches(|c: char| c.is_ascii_digit())
                    .len();
            if digits == 0 {
                return Err(format!("expected a number at {:?}", self.head()));
            }
            let (num, rest) = self.rest.split_at(digits);
            self.rest = rest;
            num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
        }

        fn end(&mut self) -> Result<(), String> {
            self.skip_ws();
            if self.rest.is_empty() {
                Ok(())
            } else {
                Err(format!("trailing input: {:?}", self.head()))
            }
        }

        fn head(&self) -> &str {
            &self.rest[..self.rest.len().min(20)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, at: u64, tasks: &[u64]) -> Job {
        Job {
            id: JobId(id),
            submission: SimTime::from_secs(at),
            tasks: tasks.iter().map(|&s| SimDuration::from_secs(s)).collect(),
            generated_class: None,
        }
    }

    use hawk_simcore::SimTime;

    #[test]
    fn trace_new_validates_order() {
        let err = Trace::new(vec![job(0, 10, &[1]), job(1, 5, &[1])]).unwrap_err();
        assert_eq!(err, TraceError::UnsortedSubmissions { at: 1 });
    }

    #[test]
    fn trace_new_rejects_empty_jobs() {
        let err = Trace::new(vec![job(0, 0, &[])]).unwrap_err();
        assert_eq!(err, TraceError::EmptyJob { at: 0 });
    }

    #[test]
    fn trace_new_rejects_non_dense_ids() {
        let err = Trace::new(vec![job(5, 0, &[1])]).unwrap_err();
        assert_eq!(err, TraceError::NonDenseIds { at: 0 });
    }

    #[test]
    fn from_unordered_sorts_and_renumbers() {
        let t = Trace::from_unordered(vec![job(9, 10, &[1]), job(3, 5, &[2])]).unwrap();
        assert_eq!(t.job(JobId(0)).submission, SimTime::from_secs(5));
        assert_eq!(t.job(JobId(1)).submission, SimTime::from_secs(10));
    }

    #[test]
    fn job_statistics() {
        let j = job(0, 0, &[10, 20, 30]);
        assert_eq!(j.num_tasks(), 3);
        assert_eq!(j.mean_task_duration(), SimDuration::from_secs(20));
        assert_eq!(j.task_seconds(), SimDuration::from_secs(60));
        assert_eq!(j.critical_task(), SimDuration::from_secs(30));
    }

    #[test]
    fn trace_statistics() {
        let t = Trace::new(vec![job(0, 0, &[10, 20]), job(1, 100, &[5, 5, 5])]).unwrap();
        assert_eq!(t.total_tasks(), 5);
        assert_eq!(t.total_task_seconds(), SimDuration::from_secs(45));
        assert_eq!(t.max_tasks_per_job(), 3);
        assert_eq!(t.mean_task_runtime(), SimDuration::from_secs(9));
        assert_eq!(t.span(), SimDuration::from_secs(100));
    }

    #[test]
    fn json_lines_round_trip() {
        let t = Trace::new(vec![job(0, 0, &[10, 20]), job(1, 50, &[7])]).unwrap();
        let text = t.to_json_lines();
        let back = Trace::from_json_lines(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_lines_ignores_unknown_fields() {
        // serde_json's derived deserializer ignored unknown fields; the
        // hand-rolled codec must keep accepting annotated traces,
        // including annotations containing escape sequences.
        let line =
            "{\"id\":0,\"submission\":5,\"note\":\"say \\\"hi\\\"\",\"meta\":{\"a\":[1,-2.5e3,true]},\
                    \"tasks\":[1000000],\"generated_class\":null}";
        let t = Trace::from_json_lines(line).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.job(JobId(0)).tasks, vec![SimDuration::from_secs(1)]);
    }

    #[test]
    fn json_lines_rejects_malformed_input() {
        assert!(Trace::from_json_lines("{\"id\":0").is_err());
        assert!(Trace::from_json_lines("not json").is_err());
        assert!(Trace::from_json_lines("{\"id\":0,\"submission\":0,\"tasks\":[x]}").is_err());
    }

    #[test]
    fn json_lines_round_trips_generated_class() {
        let mut j = job(0, 0, &[10]);
        j.generated_class = Some(JobClass::Long);
        let t = Trace::new(vec![j]).unwrap();
        let back = Trace::from_json_lines(&t.to_json_lines()).unwrap();
        assert_eq!(back.job(JobId(0)).generated_class, Some(JobClass::Long));
    }

    #[test]
    fn json_lines_skips_blank_lines() {
        let t = Trace::new(vec![job(0, 0, &[1])]).unwrap();
        let text = format!("\n{}\n\n", t.to_json_lines());
        assert_eq!(Trace::from_json_lines(&text).unwrap(), t);
    }

    #[test]
    fn save_load_round_trip() {
        let t = Trace::new(vec![job(0, 0, &[10, 20]), job(1, 50, &[7])]).unwrap();
        let dir = std::env::temp_dir().join("hawk-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Trace::load("/nonexistent/hawk/trace.jsonl").is_err());
    }

    #[test]
    fn take_prefix() {
        let t = Trace::new(vec![job(0, 0, &[1]), job(1, 1, &[2]), job(2, 2, &[3])]).unwrap();
        let head = t.take(2);
        assert_eq!(head.len(), 2);
        assert_eq!(head.job(JobId(1)).submission, SimTime::from_secs(1));
    }

    #[test]
    fn class_helpers() {
        assert!(JobClass::Long.is_long());
        assert!(!JobClass::Long.is_short());
        assert!(JobClass::Short.is_short());
        assert_eq!(JobClass::Short.to_string(), "short");
        assert_eq!(JobClass::Long.to_string(), "long");
    }

    #[test]
    fn empty_trace_statistics() {
        let t = Trace::new(vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.total_tasks(), 0);
        assert_eq!(t.mean_task_runtime(), SimDuration::ZERO);
        assert_eq!(t.span(), SimDuration::ZERO);
        assert_eq!(t.max_tasks_per_job(), 0);
    }
}
