//! The 3,300-job prototype sample (§4.1 "Real cluster run", Figures 16/17).
//!
//! The paper's cluster experiments use a subset of 3,300 Google-trace jobs
//! — 3,000 short (300 per distributed scheduler) and 300 long — on a
//! 100-node cluster. To obtain runtimes proportional to the trace they:
//!
//! * scale task durations down 1000× (seconds → milliseconds) and run them
//!   as sleep tasks,
//! * scale the number of tasks per job down by the ratio between the
//!   largest job in the sample and the cluster size, proportionally
//!   *increasing* the remaining tasks' durations to preserve each job's
//!   task-seconds,
//! * draw job inter-arrival times from a Poisson distribution whose mean is
//!   a chosen multiple of the mean task runtime (the Figure 16/17 x-axis).
//!
//! This module reproduces that preparation against the synthetic Google
//! generator.

use hawk_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::arrivals::with_poisson_arrivals;
use crate::classify::Cutoff;
use crate::google::GoogleTraceConfig;
use crate::job::{Job, JobClass, JobId, Trace};

/// Configuration of the prototype sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrototypeSampleConfig {
    /// Number of short jobs (paper: 3,000).
    pub short_jobs: usize,
    /// Number of long jobs (paper: 300).
    pub long_jobs: usize,
    /// Cluster size the sample is scaled for (paper: 100 nodes).
    pub cluster_size: usize,
    /// Duration scale-down divisor (paper: 1000, seconds → milliseconds).
    pub duration_divisor: u64,
}

impl Default for PrototypeSampleConfig {
    fn default() -> Self {
        PrototypeSampleConfig {
            short_jobs: 3_000,
            long_jobs: 300,
            cluster_size: 100,
            duration_divisor: 1_000,
        }
    }
}

impl PrototypeSampleConfig {
    /// Generates the scaled sample deterministically from `seed`.
    ///
    /// Submission times are placeholders (jobs 1 ms apart); callers rewrite
    /// them per load level with [`arrivals_for_multiplier`].
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed);
        // Over-generate and split by provenance to hit the exact class mix.
        let source = GoogleTraceConfig::with_scale(1, (self.short_jobs + self.long_jobs) * 2)
            .generate(rng.next_u64());
        let mut short: Vec<Job> = Vec::with_capacity(self.short_jobs);
        let mut long: Vec<Job> = Vec::with_capacity(self.long_jobs);
        for job in source.jobs() {
            match job.generated_class {
                Some(JobClass::Short) if short.len() < self.short_jobs => short.push(job.clone()),
                Some(JobClass::Long) if long.len() < self.long_jobs => long.push(job.clone()),
                _ => {}
            }
        }
        assert!(
            short.len() == self.short_jobs && long.len() == self.long_jobs,
            "source trace too small for the requested sample"
        );

        let mut jobs = short;
        jobs.append(&mut long);
        rng.shuffle(&mut jobs);

        // Scale task counts so the largest job fits the cluster, preserving
        // per-job task-seconds; then scale durations by the divisor.
        let max_tasks = jobs.iter().map(Job::num_tasks).max().expect("non-empty");
        let count_divisor = (max_tasks as f64 / self.cluster_size as f64).max(1.0);
        for (i, job) in jobs.iter_mut().enumerate() {
            let old_count = job.num_tasks();
            let new_count = ((old_count as f64 / count_divisor).round() as usize).max(1);
            let compensation = old_count as f64 / new_count as f64;
            let mean = job.mean_task_duration().as_secs_f64();
            let scaled = mean * compensation / self.duration_divisor as f64;
            // Keep per-task variation: rescale the first `new_count`
            // durations by the same factor rather than flattening them.
            let mut tasks: Vec<SimDuration> = job
                .tasks
                .iter()
                .take(new_count)
                .map(|d| {
                    SimDuration::from_micros(
                        ((d.as_micros() as f64) * compensation / self.duration_divisor as f64)
                            .round()
                            .max(1.0) as u64,
                    )
                })
                .collect();
            if tasks.is_empty() {
                tasks.push(SimDuration::from_secs_f64(scaled.max(1e-6)));
            }
            job.tasks = tasks;
            job.id = JobId(i as u32);
            job.submission = SimTime::from_micros(i as u64 * 1_000);
        }
        Trace::new(jobs).expect("sample is a valid trace")
    }

    /// The scaled cutoff separating short from long jobs in the sample: the
    /// Google cutoff divided by [`Self::duration_divisor`].
    ///
    /// Note the task-count compensation multiplies some long jobs' task
    /// durations, which only moves them further above the cutoff.
    pub fn cutoff(&self) -> Cutoff {
        Cutoff(SimDuration::from_micros(
            Cutoff::GOOGLE_DEFAULT.0.as_micros() / self.duration_divisor,
        ))
    }
}

/// Rewrites the sample's arrivals for one Figure 16/17 load level: Poisson
/// with mean inter-arrival = `multiplier` × the sample's mean task runtime.
pub fn arrivals_for_multiplier(trace: &Trace, multiplier: f64, rng: &mut SimRng) -> Trace {
    let mean_task = trace.mean_task_runtime().as_secs_f64();
    let mean = SimDuration::from_secs_f64(multiplier * mean_task);
    with_poisson_arrivals(trace, mean, rng)
}

/// Rewrites the sample's arrivals so that `multiplier = 1` saturates a
/// `workers`-node cluster (offered load 1.0) and larger multipliers
/// decrease load proportionally — the Figure 16/17 sweep semantics.
///
/// The paper expresses the sweep as "mean job inter-arrival rate as a
/// multiple of the mean task runtime", which on its trace spans
/// high-to-moderate load. Our synthetic sample's task-count scale-down
/// inflates per-task durations (task-seconds are preserved), so the same
/// literal formula yields a nearly idle cluster; anchoring the multiplier
/// at saturation preserves what the figure actually varies. Documented in
/// DESIGN.md.
pub fn arrivals_for_load_multiplier(
    trace: &Trace,
    multiplier: f64,
    workers: usize,
    rng: &mut SimRng,
) -> Trace {
    assert!(multiplier > 0.0 && workers > 0);
    let ts_per_job = trace.total_task_seconds().as_secs_f64() / trace.len().max(1) as f64;
    let mean = SimDuration::from_secs_f64(multiplier * ts_per_job / workers as f64);
    with_poisson_arrivals(trace, mean, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_has_requested_mix() {
        let cfg = PrototypeSampleConfig {
            short_jobs: 300,
            long_jobs: 30,
            ..Default::default()
        };
        let t = cfg.generate(1);
        assert_eq!(t.len(), 330);
        let long = t
            .jobs()
            .iter()
            .filter(|j| j.generated_class == Some(JobClass::Long))
            .count();
        assert_eq!(long, 30);
    }

    #[test]
    fn largest_job_fits_cluster() {
        let cfg = PrototypeSampleConfig {
            short_jobs: 300,
            long_jobs: 30,
            ..Default::default()
        };
        let t = cfg.generate(2);
        // Rounding of per-job counts can exceed the target by a hair; allow
        // a small margin like the paper's "keeping the ratio constant".
        assert!(
            t.max_tasks_per_job() <= (cfg.cluster_size as f64 * 1.05) as usize,
            "max tasks {}",
            t.max_tasks_per_job()
        );
    }

    #[test]
    fn task_seconds_preserved_through_count_scaling() {
        // Durations shrink 1000× but per-job task-seconds (×1000) must be
        // within rounding of the original: count compensation is exact.
        let cfg = PrototypeSampleConfig {
            short_jobs: 200,
            long_jobs: 20,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(3);
        let source = GoogleTraceConfig::with_scale(1, 440).generate(rng.next_u64());
        // Regenerate through the same path and compare totals loosely: the
        // sample keeps total work proportional.
        let t = cfg.generate(3);
        let per_task_ratio =
            source.mean_task_runtime().as_secs_f64() / t.mean_task_runtime().as_secs_f64();
        // Compensation re-inflates durations, so the ratio is below 1000 by
        // roughly the count divisor; it must at least stay within [20, 1000].
        assert!(
            (20.0..=1_500.0).contains(&per_task_ratio),
            "per-task scale ratio {per_task_ratio}"
        );
    }

    #[test]
    fn scaled_cutoff_divides() {
        let cfg = PrototypeSampleConfig::default();
        assert_eq!(
            cfg.cutoff().0.as_micros(),
            Cutoff::GOOGLE_DEFAULT.0.as_micros() / 1_000
        );
    }

    #[test]
    fn arrivals_rewrite_tracks_multiplier() {
        let cfg = PrototypeSampleConfig {
            short_jobs: 300,
            long_jobs: 30,
            ..Default::default()
        };
        let t = cfg.generate(4);
        let mut rng = SimRng::seed_from_u64(5);
        let slow = arrivals_for_multiplier(&t, 2.25, &mut rng);
        let fast = arrivals_for_multiplier(&t, 1.0, &mut rng);
        let slow_span = slow.span().as_secs_f64();
        let fast_span = fast.span().as_secs_f64();
        let ratio = slow_span / fast_span;
        assert!(
            (1.8..=2.8).contains(&ratio),
            "span ratio {ratio} for 2.25× vs 1× arrivals"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = PrototypeSampleConfig {
            short_jobs: 100,
            long_jobs: 10,
            ..Default::default()
        };
        assert_eq!(cfg.generate(6), cfg.generate(6));
    }

    #[test]
    fn load_multiplier_anchors_at_saturation() {
        // Multiplier 1 on `workers` nodes must offer ≈1.0 load: total
        // task-seconds ≈ span × workers.
        let cfg = PrototypeSampleConfig {
            short_jobs: 500,
            long_jobs: 50,
            ..Default::default()
        };
        let sample = cfg.generate(8);
        let mut rng = SimRng::seed_from_u64(9);
        let loaded = arrivals_for_load_multiplier(&sample, 1.0, 100, &mut rng);
        let offered =
            loaded.total_task_seconds().as_secs_f64() / (loaded.span().as_secs_f64() * 100.0);
        assert!((0.8..=1.25).contains(&offered), "offered load {offered}");

        let light = arrivals_for_load_multiplier(&sample, 2.0, 100, &mut rng);
        let offered_light =
            light.total_task_seconds().as_secs_f64() / (light.span().as_secs_f64() * 100.0);
        assert!(
            offered_light < offered * 0.7,
            "multiplier 2 should halve load: {offered_light} vs {offered}"
        );
    }
}
