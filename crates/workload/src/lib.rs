//! Workload traces and synthetic generators for the Hawk reproduction.
//!
//! The Hawk paper (§4.1) evaluates on the Google 2011 cluster trace and on
//! synthetic traces derived from published Cloudera, Facebook and Yahoo
//! workload statistics. The real Google trace is not redistributable, so
//! this crate provides:
//!
//! * [`Job`] / [`Trace`] — the trace model every experiment consumes:
//!   `(job id, submission time, per-task durations)`, exactly the tuple
//!   format the paper's simulator takes as input.
//! * [`google`] — a calibrated synthetic generator reproducing the Google
//!   trace's published heterogeneity statistics (Table 1 / §2.1): ~10 % long
//!   jobs carrying ~83.65 % of task-seconds and ~28 % of tasks.
//! * [`kmeans`] — the paper's own derivation of the Cloudera-b/c/d,
//!   Facebook 2010 and Yahoo 2011 traces from k-means cluster centroids
//!   (exponential per-job draws, Gaussian per-task durations with σ=2·mean).
//! * [`motivation`] — the §2.3 scenario that motivates Hawk (Figure 1).
//! * [`sample`] — the 3,300-job, 1000×-scaled sample used by the prototype
//!   experiments (Figures 16/17).
//! * [`scenario`] — the scenario layer: [`scenario::ScenarioSpec`] composes
//!   a trace family, an arrival process ([`scenario::ArrivalProcess`]), a
//!   cluster-dynamics script and a per-server speed profile into one
//!   declarative cluster story.
//! * [`classify`] — estimated task runtime, the short/long cutoff, and the
//!   misestimation model of §4.8.
//! * [`stats`] — the Table 1 / Table 2 / Figure 4 workload statistics.
//!
//! # Examples
//!
//! ```
//! use hawk_workload::classify::Cutoff;
//! use hawk_workload::scenario::{ScenarioSpec, TraceFamily};
//! use hawk_workload::JobClass;
//!
//! // A 10×-scaled Google-like workload, generated deterministically.
//! let scenario = ScenarioSpec::new(TraceFamily::Google { scale: 10 }, 200);
//! let trace = scenario.trace(42);
//! assert_eq!(trace.len(), 200);
//! assert_eq!(trace, scenario.trace(42)); // same seed, same trace
//!
//! // ~10 % of jobs classify long under the Google cutoff (§2.1).
//! let long = trace
//!     .jobs()
//!     .iter()
//!     .filter(|j| Cutoff::GOOGLE_DEFAULT.classify(j.mean_task_duration()) == JobClass::Long)
//!     .count();
//! assert!((10..=40).contains(&long), "{long} long jobs of 200");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod classify;
pub mod google;
mod job;
pub mod kmeans;
pub mod motivation;
pub mod sample;
pub mod scenario;
mod source;
pub mod stats;

pub use job::{Job, JobClass, JobId, Trace, TraceError};
pub use source::TraceSource;
