//! The scenario layer: one description for "any cluster story".
//!
//! The paper's evaluation (§4) stresses the hybrid design under varied
//! conditions — estimation error, load levels, cluster sizes — but each of
//! those was wired up ad hoc. A [`ScenarioSpec`] composes the full space
//! declaratively:
//!
//! * a **trace family** ([`TraceFamily`]) — which synthetic workload the
//!   jobs are drawn from (the Google 2011 calibration or the paper's
//!   k-means-derived Cloudera/Facebook/Yahoo heavy-tail mixes);
//! * an **arrival process** ([`ArrivalSpec`] / [`ArrivalProcess`]) — how
//!   submissions are spaced: the family's own arrivals, Poisson (§2.3),
//!   bursty (Markov-modulated), or a trace-replay process that reuses
//!   recorded gaps at an optional stretch;
//! * a **dynamics script** ([`DynamicsScript`]) — timed node-down/node-up
//!   events the driver replays against the cluster (rolling maintenance,
//!   correlated failures, capacity loss);
//! * a **speed profile** ([`SpeedSpec`]) — per-server execution-speed
//!   factors modeling heterogeneous hardware ("The Power of d Choices in
//!   Scheduling for Data Centers with Heterogeneous Servers" shows this
//!   regime qualitatively changes probe-based placement).
//!
//! With the dynamics script empty and speeds uniform, a scenario is
//! *exactly* a plain experiment: the golden-determinism suite pins that
//! running a dynamics-off scenario is byte-identical to the classic path.

use hawk_simcore::{SimDuration, SimRng, SimTime};
use serde::Serialize;

use crate::arrivals::{with_bursty_arrivals, BurstyArrivals, PoissonArrivals, SaturationArrivals};
use crate::google::GoogleTraceConfig;
use crate::job::Trace;
use crate::kmeans::KmeansTraceConfig;
use crate::source::TraceSource;

/// An arrival process: a deterministic, seedable stream of non-decreasing
/// submission times.
///
/// Unifies [`PoissonArrivals`], [`BurstyArrivals`] and
/// [`TraceReplayArrivals`] behind one interface so trace shaping
/// ([`retime`]) and scenario descriptions are process-agnostic.
pub trait ArrivalProcess {
    /// Draws the next submission time (non-decreasing across calls).
    fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime;

    /// Appends `count` arrival times to `out` (`out` is cleared first).
    fn take_into(&mut self, count: usize, rng: &mut SimRng, out: &mut Vec<SimTime>) {
        out.clear();
        out.extend((0..count).map(|_| self.next_arrival(rng)));
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        PoissonArrivals::next_arrival(self, rng)
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        BurstyArrivals::next_arrival(self, rng)
    }
}

impl ArrivalProcess for SaturationArrivals {
    fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        SaturationArrivals::next_arrival(self, rng)
    }
}

/// Rewrites a trace's submission times by drawing one arrival per job from
/// `process` — the single clone-and-retime helper shared by every
/// `with_*_arrivals` wrapper and by [`ScenarioSpec::trace`].
///
/// Task durations, ids and generated classes are preserved; only the
/// submission column changes.
pub fn retime(trace: &Trace, process: &mut impl ArrivalProcess, rng: &mut SimRng) -> Trace {
    let mut jobs = trace.jobs().to_vec();
    for job in &mut jobs {
        job.submission = process.next_arrival(rng);
    }
    Trace::new(jobs).expect("arrival processes are monotone")
}

/// An arrival process that replays a recorded submission sequence: the
/// first draw is the sequence's first submission time, every later draw
/// adds the next recorded inter-arrival gap (cycling when it runs out),
/// with an optional stretch factor on the gaps (stretch 2.0 halves the
/// offered load; 0.5 doubles it; 1.0 reproduces the recorded submissions
/// bit-exactly).
///
/// Replay keeps the *shape* of a real submission sequence — diurnal waves,
/// bursts, lulls — which no memoryless process reproduces. The RNG
/// argument of [`ArrivalProcess::next_arrival`] is unused.
#[derive(Debug, Clone)]
pub struct TraceReplayArrivals {
    start: SimTime,
    gaps: Vec<SimDuration>,
    stretch: f64,
    next: usize,
    now: SimTime,
    started: bool,
}

impl TraceReplayArrivals {
    /// Records the first submission time and the inter-arrival gaps of
    /// `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two jobs (no gap to replay).
    pub fn from_trace(trace: &Trace) -> Self {
        assert!(
            trace.len() >= 2,
            "trace replay needs at least two jobs to derive gaps"
        );
        let gaps = trace
            .jobs()
            .windows(2)
            .map(|w| w[1].submission - w[0].submission)
            .collect();
        TraceReplayArrivals {
            start: trace.jobs()[0].submission,
            gaps,
            stretch: 1.0,
            next: 0,
            now: SimTime::ZERO,
            started: false,
        }
    }

    /// Scales every replayed gap by `stretch` (the starting submission is
    /// an offset, not a gap, and is not scaled).
    ///
    /// # Panics
    ///
    /// Panics if `stretch` is not positive.
    pub fn with_stretch(mut self, stretch: f64) -> Self {
        assert!(stretch > 0.0, "stretch must be positive");
        self.stretch = stretch;
        self
    }
}

impl ArrivalProcess for TraceReplayArrivals {
    fn next_arrival(&mut self, _rng: &mut SimRng) -> SimTime {
        if !self.started {
            // The first draw lands exactly on the recorded first
            // submission, so gap i of the replay is gap i of the record —
            // stretch 1.0 is a true identity.
            self.started = true;
            self.now = self.start;
            return self.now;
        }
        let gap = self.gaps[self.next];
        self.next = (self.next + 1) % self.gaps.len();
        // Stretch 1.0 reproduces the recorded gaps bit-exactly (no
        // float round trip).
        self.now += if self.stretch == 1.0 {
            gap
        } else {
            SimDuration::from_secs_f64(gap.as_secs_f64() * self.stretch)
        };
        self.now
    }
}

/// The synthetic workload families of §4.1, one constructor each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceFamily {
    /// The calibrated Google-2011-like generator at the given cluster
    /// scale divisor (see [`GoogleTraceConfig::with_scale`]).
    Google {
        /// Scale-down divisor: arrivals are slowed `scale`× so clusters
        /// `scale`× smaller than the paper's see the same offered load.
        scale: u64,
    },
    /// Cloudera-b 2011 (Table 1: 7.67 % long jobs, 99.65 % task-seconds).
    ClouderaB,
    /// Cloudera-c 2011.
    ClouderaC,
    /// Cloudera-d 2011.
    ClouderaD,
    /// Facebook 2010.
    Facebook,
    /// Yahoo 2011.
    Yahoo,
}

impl TraceFamily {
    /// Generates a `jobs`-job trace of this family from `seed`.
    pub fn generate(&self, jobs: usize, seed: u64) -> Trace {
        match *self {
            TraceFamily::Google { scale } => {
                GoogleTraceConfig::with_scale(scale, jobs).generate(seed)
            }
            TraceFamily::ClouderaB => KmeansTraceConfig::cloudera_b(jobs).generate(seed),
            TraceFamily::ClouderaC => KmeansTraceConfig::cloudera_c(jobs).generate(seed),
            TraceFamily::ClouderaD => KmeansTraceConfig::cloudera_d(jobs).generate(seed),
            TraceFamily::Facebook => KmeansTraceConfig::facebook(jobs).generate(seed),
            TraceFamily::Yahoo => KmeansTraceConfig::yahoo(jobs).generate(seed),
        }
    }

    /// Workload name for reports.
    pub fn label(&self) -> String {
        match *self {
            TraceFamily::Google { scale } => format!("google-2011/{scale}x"),
            TraceFamily::ClouderaB => "cloudera-b".to_string(),
            TraceFamily::ClouderaC => "cloudera-c".to_string(),
            TraceFamily::ClouderaD => "cloudera-d".to_string(),
            TraceFamily::Facebook => "facebook-2010".to_string(),
            TraceFamily::Yahoo => "yahoo-2011".to_string(),
        }
    }
}

/// Which arrival process a scenario applies on top of its trace family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalSpec {
    /// Keep the family's own generated submissions.
    AsGenerated,
    /// Rewrite submissions with a fresh Poisson process (§2.3's model).
    Poisson {
        /// Mean inter-arrival time.
        mean: SimDuration,
    },
    /// Rewrite submissions with a bursty (Markov-modulated Poisson)
    /// process whose average rate matches the family's (only the variance
    /// grows; stresses statically-sized partitions, §4.6).
    Bursty {
        /// How much faster jobs arrive inside a burst (≥ 1).
        burst_factor: f64,
        /// Expected jobs submitted per calm state run.
        mean_calm_run: f64,
        /// Expected jobs submitted per burst state run.
        mean_burst_run: f64,
    },
    /// Replay the family's own inter-arrival gaps scaled by `stretch`
    /// (stretch < 1 raises offered load, > 1 lowers it, 1.0 is identity).
    Replay {
        /// Gap multiplier; must be positive.
        stretch: f64,
    },
    /// Rewrite submissions with a saturation ramp: Poisson arrivals whose
    /// rate steps `overload`× past the calm rate for the middle third of
    /// the jobs and back — drives a cell past 100 % usable capacity and
    /// back, the admission-control stress test (see
    /// [`SaturationArrivals`]).
    Saturation {
        /// Mean inter-arrival outside the overload plateau.
        mean: SimDuration,
        /// Plateau rate multiplier (≥ 1).
        overload: f64,
    },
}

/// One timed cluster change in a [`DynamicsScript`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ClusterEvent {
    /// When the change happens.
    pub at: SimTime,
    /// What changes.
    pub change: NodeChange,
}

/// A node lifecycle change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeChange {
    /// The server (by dense index) fails/drains: it stops accepting work,
    /// its queue migrates, its running task completes.
    Down(u32),
    /// The server (by dense index) rejoins empty and idle.
    Up(u32),
}

/// A deterministic, time-ordered script of cluster dynamics the driver
/// replays as simulation events.
///
/// An empty script (the default) is the static cluster every pre-scenario
/// experiment ran on — the golden-determinism suite pins that equivalence.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DynamicsScript {
    events: Vec<ClusterEvent>,
}

impl DynamicsScript {
    /// The empty script: a static cluster.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the script has no events (the static-cluster fast path).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, in insertion order (the driver's event queue
    /// orders them by time; same-time events fire in insertion order).
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Adds a node-down event at `at` for server index `server`.
    pub fn down_at(mut self, at: SimTime, server: u32) -> Self {
        self.events.push(ClusterEvent {
            at,
            change: NodeChange::Down(server),
        });
        self
    }

    /// Adds a node-up event at `at` for server index `server`.
    pub fn up_at(mut self, at: SimTime, server: u32) -> Self {
        self.events.push(ClusterEvent {
            at,
            change: NodeChange::Up(server),
        });
        self
    }

    /// A rolling-maintenance script: starting at `first`, every `period`
    /// the next server of `servers` goes down and comes back `downtime`
    /// later, cycling through the list for `cycles` down/up pairs.
    ///
    /// Deterministic by construction; with `downtime < period` at most one
    /// scripted server is down at a time.
    ///
    /// # Panics
    ///
    /// Panics (when a server is scheduled more than once) unless
    /// `downtime < period × servers.len()`: a server must be back up
    /// before its next outage, otherwise the re-down would land on a
    /// still-down server — a no-op at the driver — and the script would
    /// silently simulate fewer outages than it claims.
    pub fn rolling(
        servers: &[u32],
        first: SimTime,
        period: SimDuration,
        downtime: SimDuration,
        cycles: usize,
    ) -> Self {
        assert!(
            !servers.is_empty(),
            "rolling churn needs at least one server"
        );
        assert!(
            cycles <= servers.len() || downtime < period * servers.len() as u64,
            "rolling churn would re-down a still-down server: downtime {downtime} must be \
             shorter than period x servers ({period} x {})",
            servers.len()
        );
        let mut script = DynamicsScript::none();
        for k in 0..cycles {
            let server = servers[k % servers.len()];
            let down = first + period * k as u64;
            script = script.down_at(down, server).up_at(down + downtime, server);
        }
        script
    }

    /// The largest server index the script touches, if any (drivers
    /// validate it against the cluster size).
    pub fn max_server(&self) -> Option<u32> {
        self.events
            .iter()
            .map(|e| match e.change {
                NodeChange::Down(s) | NodeChange::Up(s) => s,
            })
            .max()
    }
}

/// Per-server execution-speed factors: a task of duration `d` runs in
/// `d / speed` on a server with speed factor `speed`.
///
/// [`SpeedSpec::Uniform`] (the default) is the paper's homogeneous cluster
/// and resolves to `None` so the hot path pays nothing for the feature.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub enum SpeedSpec {
    /// Every server at nominal speed 1.0 (the paper's model).
    #[default]
    Uniform,
    /// A two-tier cluster: `slow_fraction` of servers run at `slow_speed`
    /// (< 1 slows, > 1 accelerates), spread evenly across the id space so
    /// both partitions (§3.4) get their share.
    TwoTier {
        /// Fraction of servers in the slow tier, in `[0, 1]`.
        slow_fraction: f64,
        /// Speed factor of the slow tier; must be positive.
        slow_speed: f64,
    },
    /// Explicit per-server factors; the length must equal the cluster
    /// size.
    PerServer(Vec<f64>),
}

impl SpeedSpec {
    /// Resolves to per-server factors for a `nodes`-server cluster, or
    /// `None` for the uniform (all 1.0) profile.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive speed, a fraction outside `[0, 1]`, or a
    /// `PerServer` length mismatch.
    pub fn resolve(&self, nodes: usize) -> Option<Vec<f64>> {
        match self {
            SpeedSpec::Uniform => None,
            SpeedSpec::TwoTier {
                slow_fraction,
                slow_speed,
            } => {
                assert!(
                    (0.0..=1.0).contains(slow_fraction),
                    "slow fraction {slow_fraction} outside [0, 1]"
                );
                assert!(*slow_speed > 0.0, "speed factors must be positive");
                let slow = (nodes as f64 * slow_fraction).round() as usize;
                // Bresenham spread: server i is slow iff the cumulative
                // quota crosses an integer at i — deterministic and even.
                Some(
                    (0..nodes)
                        .map(|i| {
                            let before = i * slow / nodes.max(1);
                            let after = (i + 1) * slow / nodes.max(1);
                            if after > before {
                                *slow_speed
                            } else {
                                1.0
                            }
                        })
                        .collect(),
                )
            }
            SpeedSpec::PerServer(speeds) => {
                assert_eq!(
                    speeds.len(),
                    nodes,
                    "per-server speed profile length mismatch"
                );
                assert!(
                    speeds.iter().all(|&s| s > 0.0),
                    "speed factors must be positive"
                );
                Some(speeds.clone())
            }
        }
    }

    /// True when the profile is uniformly 1.0 — either [`SpeedSpec::Uniform`]
    /// itself or an equivalent explicit/two-tier spelling.
    pub fn is_uniform(&self) -> bool {
        match self {
            SpeedSpec::Uniform => true,
            SpeedSpec::TwoTier {
                slow_fraction,
                slow_speed,
            } => *slow_fraction == 0.0 || *slow_speed == 1.0,
            SpeedSpec::PerServer(speeds) => speeds.iter().all(|&s| s == 1.0),
        }
    }
}

/// A complete cluster story: trace family × arrival process × dynamics
/// script × speed profile.
///
/// # Examples
///
/// ```
/// use hawk_simcore::{SimDuration, SimTime};
/// use hawk_workload::scenario::{
///     ArrivalSpec, DynamicsScript, ScenarioSpec, SpeedSpec, TraceFamily,
/// };
///
/// // A Google-like workload on a heterogeneous cluster with one rolling
/// // maintenance wave.
/// let scenario = ScenarioSpec::new(TraceFamily::Google { scale: 10 }, 500)
///     .arrivals(ArrivalSpec::Replay { stretch: 1.0 })
///     .speeds(SpeedSpec::TwoTier { slow_fraction: 0.25, slow_speed: 0.5 })
///     .dynamics(DynamicsScript::rolling(
///         &[0, 1, 2],
///         SimTime::from_secs(1_000),
///         SimDuration::from_secs(600),
///         SimDuration::from_secs(300),
///         6,
///     ));
/// let trace = scenario.trace(42);
/// assert_eq!(trace.len(), 500);
/// assert_eq!(scenario.dynamics_ref().events().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioSpec {
    /// The workload family jobs are drawn from.
    pub family: TraceFamily,
    /// Number of jobs generated.
    pub jobs: usize,
    /// The arrival process applied on top of the family.
    pub arrivals: ArrivalSpec,
    /// The cluster dynamics script.
    pub dynamics: DynamicsScript,
    /// The per-server speed profile.
    pub speeds: SpeedSpec,
}

impl ScenarioSpec {
    /// A static, homogeneous scenario of `jobs` jobs from `family` with
    /// the family's own arrivals — exactly a classic experiment.
    pub fn new(family: TraceFamily, jobs: usize) -> Self {
        ScenarioSpec {
            family,
            jobs,
            arrivals: ArrivalSpec::AsGenerated,
            dynamics: DynamicsScript::none(),
            speeds: SpeedSpec::Uniform,
        }
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the dynamics script.
    pub fn dynamics(mut self, dynamics: DynamicsScript) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Sets the speed profile.
    pub fn speeds(mut self, speeds: SpeedSpec) -> Self {
        self.speeds = speeds;
        self
    }

    /// The dynamics script.
    pub fn dynamics_ref(&self) -> &DynamicsScript {
        &self.dynamics
    }

    /// Generates the scenario's trace deterministically from `seed`: the
    /// family's trace, retimed per the arrival spec. The retime RNG is
    /// derived from `seed` (salted) so arrival shaping never perturbs the
    /// family's own draws.
    pub fn trace(&self, seed: u64) -> Trace {
        let base = self.family.generate(self.jobs, seed);
        match self.arrivals {
            ArrivalSpec::AsGenerated => base,
            ArrivalSpec::Poisson { mean } => {
                let mut rng = SimRng::seed_from_u64(seed ^ RETIME_SALT);
                retime(&base, &mut PoissonArrivals::new(mean), &mut rng)
            }
            ArrivalSpec::Bursty {
                burst_factor,
                mean_calm_run,
                mean_burst_run,
            } => {
                let mut rng = SimRng::seed_from_u64(seed ^ RETIME_SALT);
                with_bursty_arrivals(&base, burst_factor, mean_calm_run, mean_burst_run, &mut rng)
            }
            ArrivalSpec::Replay { stretch } => {
                let mut rng = SimRng::seed_from_u64(seed ^ RETIME_SALT);
                let mut replay = TraceReplayArrivals::from_trace(&base).with_stretch(stretch);
                retime(&base, &mut replay, &mut rng)
            }
            ArrivalSpec::Saturation { mean, overload } => {
                let mut rng = SimRng::seed_from_u64(seed ^ RETIME_SALT);
                let mut ramp = SaturationArrivals::new(mean, overload, base.len());
                retime(&base, &mut ramp, &mut rng)
            }
        }
    }

    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        let mut label = self.family.label();
        match self.arrivals {
            ArrivalSpec::AsGenerated => {}
            ArrivalSpec::Poisson { .. } => label.push_str("+poisson"),
            ArrivalSpec::Bursty { .. } => label.push_str("+bursty"),
            ArrivalSpec::Replay { stretch } => {
                label.push_str(&format!("+replay{stretch}"));
            }
            ArrivalSpec::Saturation { .. } => label.push_str("+saturation"),
        }
        if !self.dynamics.is_empty() {
            label.push_str("+churn");
        }
        if !self.speeds.is_uniform() {
            label.push_str("+hetero");
        }
        label
    }
}

impl TraceSource for ScenarioSpec {
    fn label(&self) -> String {
        ScenarioSpec::label(self)
    }

    fn generate_trace(&self, seed: u64) -> Trace {
        self.trace(seed)
    }
}

/// Salt for the retime RNG stream so arrival shaping is independent of the
/// family's generation draws (arbitrary constant, frozen).
const RETIME_SALT: u64 = 0x5CE4_A210_7E71_4E00;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_with_unit_stretch_reproduces_submissions_exactly() {
        let trace = TraceFamily::Google { scale: 10 }.generate(100, 3);
        let mut replay = TraceReplayArrivals::from_trace(&trace);
        let mut rng = SimRng::seed_from_u64(0);
        for job in trace.jobs() {
            assert_eq!(replay.next_arrival(&mut rng), job.submission);
        }
    }

    #[test]
    fn replay_identity_scenario_equals_as_generated() {
        // The Replay { stretch: 1.0 } spec is a true identity: same trace,
        // bit for bit, as AsGenerated.
        let base = ScenarioSpec::new(TraceFamily::Google { scale: 10 }, 80);
        let replayed = base.clone().arrivals(ArrivalSpec::Replay { stretch: 1.0 });
        assert_eq!(base.trace(7), replayed.trace(7));
    }

    #[test]
    fn replay_cycles_and_stretches() {
        let trace = TraceFamily::Google { scale: 10 }.generate(10, 9);
        let mut replay = TraceReplayArrivals::from_trace(&trace).with_stretch(2.0);
        let mut rng = SimRng::seed_from_u64(0);
        // More draws than recorded gaps: the process must keep going and
        // stay monotone.
        let mut last = SimTime::ZERO;
        for _ in 0..50 {
            let t = replay.next_arrival(&mut rng);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "at least two jobs")]
    fn replay_rejects_tiny_traces() {
        let trace = TraceFamily::Google { scale: 10 }.generate(1, 1);
        TraceReplayArrivals::from_trace(&trace);
    }

    #[test]
    fn retime_preserves_everything_but_submissions() {
        let trace = TraceFamily::Yahoo.generate(50, 5);
        let mut rng = SimRng::seed_from_u64(8);
        let mut process = PoissonArrivals::new(SimDuration::from_secs(10));
        let retimed = retime(&trace, &mut process, &mut rng);
        assert_eq!(retimed.len(), trace.len());
        for (a, b) in trace.jobs().iter().zip(retimed.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.generated_class, b.generated_class);
        }
    }

    #[test]
    fn scenario_as_generated_equals_family_trace() {
        let spec = ScenarioSpec::new(TraceFamily::Google { scale: 10 }, 120);
        assert_eq!(
            spec.trace(7),
            GoogleTraceConfig::with_scale(10, 120).generate(7)
        );
    }

    #[test]
    fn scenario_trace_is_deterministic_per_arrival_spec() {
        for arrivals in [
            ArrivalSpec::AsGenerated,
            ArrivalSpec::Poisson {
                mean: SimDuration::from_secs(30),
            },
            ArrivalSpec::Bursty {
                burst_factor: 8.0,
                mean_calm_run: 40.0,
                mean_burst_run: 10.0,
            },
            ArrivalSpec::Replay { stretch: 0.5 },
            ArrivalSpec::Saturation {
                mean: SimDuration::from_secs(20),
                overload: 4.0,
            },
        ] {
            let spec = ScenarioSpec::new(TraceFamily::Facebook, 80).arrivals(arrivals);
            assert_eq!(spec.trace(11), spec.trace(11), "{arrivals:?}");
        }
    }

    #[test]
    fn every_family_generates() {
        for family in [
            TraceFamily::Google { scale: 100 },
            TraceFamily::ClouderaB,
            TraceFamily::ClouderaC,
            TraceFamily::ClouderaD,
            TraceFamily::Facebook,
            TraceFamily::Yahoo,
        ] {
            let trace = family.generate(30, 2);
            assert_eq!(trace.len(), 30, "{}", family.label());
        }
    }

    #[test]
    fn rolling_script_alternates_down_up() {
        let script = DynamicsScript::rolling(
            &[4, 9],
            SimTime::from_secs(100),
            SimDuration::from_secs(50),
            SimDuration::from_secs(20),
            4,
        );
        let events = script.events();
        assert_eq!(events.len(), 8);
        assert_eq!(events[0].change, NodeChange::Down(4));
        assert_eq!(events[1].change, NodeChange::Up(4));
        assert_eq!(events[2].change, NodeChange::Down(9));
        assert_eq!(events[2].at, SimTime::from_secs(150));
        // Cycles wrap around the server list.
        assert_eq!(events[4].change, NodeChange::Down(4));
        assert_eq!(script.max_server(), Some(9));
        assert!(!script.is_empty());
        assert!(DynamicsScript::none().is_empty());
        assert_eq!(DynamicsScript::none().max_server(), None);
    }

    #[test]
    #[should_panic(expected = "still-down server")]
    fn rolling_rejects_overlapping_outages_of_one_server() {
        // Two servers, 60 s period, 130 s downtime: server 0's second
        // outage would start while its first is still in progress.
        DynamicsScript::rolling(
            &[0, 1],
            SimTime::from_secs(0),
            SimDuration::from_secs(60),
            SimDuration::from_secs(130),
            4,
        );
    }

    #[test]
    fn two_tier_speeds_spread_evenly() {
        let spec = SpeedSpec::TwoTier {
            slow_fraction: 0.25,
            slow_speed: 0.5,
        };
        let speeds = spec.resolve(100).unwrap();
        assert_eq!(speeds.len(), 100);
        assert_eq!(speeds.iter().filter(|&&s| s == 0.5).count(), 25);
        // Evenly spread: every 20-server window holds 5 slow servers.
        for chunk in speeds.chunks(20) {
            assert_eq!(chunk.iter().filter(|&&s| s == 0.5).count(), 5);
        }
    }

    #[test]
    fn uniform_speeds_resolve_to_none() {
        assert!(SpeedSpec::Uniform.resolve(50).is_none());
        assert!(SpeedSpec::Uniform.is_uniform());
        assert!(SpeedSpec::TwoTier {
            slow_fraction: 0.0,
            slow_speed: 0.5
        }
        .is_uniform());
        assert!(SpeedSpec::PerServer(vec![1.0; 4]).is_uniform());
        assert!(!SpeedSpec::TwoTier {
            slow_fraction: 0.5,
            slow_speed: 0.5
        }
        .is_uniform());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn per_server_length_must_match() {
        SpeedSpec::PerServer(vec![1.0; 3]).resolve(4);
    }

    #[test]
    fn scenario_labels_compose() {
        let spec = ScenarioSpec::new(TraceFamily::Yahoo, 10)
            .arrivals(ArrivalSpec::Bursty {
                burst_factor: 4.0,
                mean_calm_run: 10.0,
                mean_burst_run: 5.0,
            })
            .speeds(SpeedSpec::TwoTier {
                slow_fraction: 0.2,
                slow_speed: 0.5,
            })
            .dynamics(DynamicsScript::none().down_at(SimTime::from_secs(1), 0));
        assert_eq!(spec.label(), "yahoo-2011+bursty+churn+hetero");
        assert_eq!(TraceSource::label(&spec), spec.label());
        let saturated =
            ScenarioSpec::new(TraceFamily::Yahoo, 10).arrivals(ArrivalSpec::Saturation {
                mean: SimDuration::from_secs(20),
                overload: 4.0,
            });
        assert_eq!(saturated.label(), "yahoo-2011+saturation");
    }

    #[test]
    fn scenario_sources_traces() {
        let spec = ScenarioSpec::new(TraceFamily::ClouderaB, 12);
        assert_eq!(spec.generate_trace(4), spec.trace(4));
    }
}
