//! Property tests for the hand-rolled JSON-lines `Job` codec.
//!
//! The codec replaced serde_json in the offline build; these tests pin its
//! contract: arbitrary valid traces round-trip exactly, unknown fields are
//! tolerated (annotated traces from external tools keep loading), and the
//! float-to-duration conversion boundary handles the edge cases that
//! reach the encoder (zero, subnormal, and huge runtimes).

use proptest::prelude::*;

use hawk_simcore::{SimDuration, SimTime};
use hawk_workload::{Job, JobClass, JobId, Trace};

/// Generator for one job's raw material: submission offset, task
/// durations (µs), and an optional generated class tag.
fn job_parts() -> impl Strategy<Value = (u64, Vec<u64>, u8)> {
    (
        0u64..1 << 40,
        proptest::collection::vec(0u64..1 << 45, 1..12),
        0u8..3,
    )
}

fn build_trace(parts: Vec<(u64, Vec<u64>, u8)>) -> Trace {
    // Make submissions non-decreasing by accumulating the offsets.
    let mut at = 0u64;
    let jobs = parts
        .into_iter()
        .enumerate()
        .map(|(i, (offset, tasks, class))| {
            at += offset % 1_000_000;
            Job {
                id: JobId(i as u32),
                submission: SimTime::from_micros(at),
                tasks: tasks.into_iter().map(SimDuration::from_micros).collect(),
                generated_class: match class {
                    0 => None,
                    1 => Some(JobClass::Short),
                    _ => Some(JobClass::Long),
                },
            }
        })
        .collect();
    Trace::new(jobs).expect("generated jobs satisfy the trace invariants")
}

proptest! {
    /// Encode → decode is the identity on arbitrary valid traces.
    #[test]
    fn json_lines_round_trip(parts in proptest::collection::vec(job_parts(), 0..20)) {
        let trace = build_trace(parts);
        let text = trace.to_json_lines();
        let back = Trace::from_json_lines(&text).expect("codec accepts its own output");
        prop_assert_eq!(trace, back);
    }

    /// Decoding tolerates unknown fields of every JSON shape, in any
    /// position, exactly as serde_json's derived deserializer did.
    #[test]
    fn unknown_fields_are_skipped(
        submission in 0u64..1 << 40,
        task in 0u64..1 << 45,
        noise_num in -1.0e9f64..1.0e9,
        flag_bit in 0u8..2,
    ) {
        let flag = flag_bit == 1;
        let line = format!(
            "{{\"id\":0,\"zzz\":{noise_num},\"submission\":{submission},\
             \"meta\":{{\"nested\":[1,{noise_num},\"s\",{flag}],\"n\":null}},\
             \"tasks\":[{task}],\"note\":\"escaped \\\" quote\",\
             \"generated_class\":null}}"
        );
        let trace = Trace::from_json_lines(&line).expect("unknown fields tolerated");
        prop_assert_eq!(trace.len(), 1);
        let job = trace.job(JobId(0));
        prop_assert_eq!(job.submission, SimTime::from_micros(submission));
        prop_assert_eq!(job.tasks.clone(), vec![SimDuration::from_micros(task)]);
    }

    /// The float seconds → integer micros conversion (the single entry
    /// point for generator output into the trace format) is total and
    /// monotone-safe on edge inputs: zero, subnormals, huge runtimes,
    /// negatives and non-finite values.
    #[test]
    fn duration_from_secs_f64_edge_cases(mantissa in 0u64..1 << 52) {
        // Zero and negative zero.
        prop_assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        prop_assert_eq!(SimDuration::from_secs_f64(-0.0), SimDuration::ZERO);
        // Subnormals round to zero micros rather than wrapping.
        let subnormal = f64::from_bits(mantissa);
        prop_assert!(subnormal == 0.0 || subnormal.is_subnormal());
        prop_assert_eq!(SimDuration::from_secs_f64(subnormal), SimDuration::ZERO);
        // Large runtimes (the paper's longest tasks are ~20,000 s; allow
        // well beyond) convert exactly in integer micros.
        let big = 20_000.0 * 1e3; // 2e7 seconds
        prop_assert_eq!(
            SimDuration::from_secs_f64(big).as_micros(),
            20_000_000_000_000u64
        );
        // Invalid inputs (non-finite or negative) clamp to zero instead of
        // panicking or wrapping.
        prop_assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        prop_assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        prop_assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
        prop_assert_eq!(SimDuration::from_secs_f64(-1.5), SimDuration::ZERO);
    }

    /// Jobs with zero-length and huge task durations survive the codec
    /// (the encoder writes raw micros, so no float precision is involved).
    #[test]
    fn extreme_durations_round_trip(micros in proptest::collection::vec(0u64..u64::MAX >> 12, 1..8)) {
        let job = Job {
            id: JobId(0),
            submission: SimTime::ZERO,
            tasks: micros.iter().copied().map(SimDuration::from_micros).collect(),
            generated_class: Some(JobClass::Long),
        };
        let trace = Trace::new(vec![job]).expect("valid single-job trace");
        let back = Trace::from_json_lines(&trace.to_json_lines()).expect("round trip");
        prop_assert_eq!(trace, back);
    }
}

/// Non-property edge pins: the exact behavior of `from_secs_f64` at the
/// representable extremes (documented contract, not accidents).
#[test]
fn duration_conversion_pinned_extremes() {
    // Non-finite inputs clamp to zero; the smallest positive normal float
    // is far below one microsecond and rounds to zero.
    assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    assert_eq!(
        SimDuration::from_secs_f64(f64::MIN_POSITIVE),
        SimDuration::ZERO
    );
    // Sub-microsecond rounds to nearest.
    assert_eq!(SimDuration::from_secs_f64(4.9e-7).as_micros(), 0);
    assert_eq!(SimDuration::from_secs_f64(5.1e-7).as_micros(), 1);
}
