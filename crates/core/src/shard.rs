//! Sharded parallel driver: conservative discrete-event simulation for
//! 100k+-node cells.
//!
//! [`ShardedDriver`] partitions the cluster into `K` contiguous shards.
//! Each shard owns a slice of servers and runs its own [`Engine`], RNG
//! streams, recycled buffers and topology instance; shards advance in
//! *epochs* bounded by a conservative lookahead horizon and exchange
//! messages only between epochs, through a deterministic merge. Epochs
//! are executed by a work-claiming pool: each epoch publishes the set
//! of *runnable* shards (those with an event below their horizon),
//! workers claim them one at a time from a shared queue, and whichever
//! worker reports the last result merges inline and publishes the next
//! epoch — no barrier, so an epoch that runs one shard costs one lock
//! round-trip, not a K-thread rendezvous. The result is deterministic
//! for a fixed shard count `K` regardless of how many OS threads
//! execute the shards — worker count is a pure throughput knob.
//!
//! # Synchronization contract
//!
//! Lookahead is a per-shard-pair matrix `D`, not one global constant.
//! The one-hop floor `Δ[i][j]` is the cheapest message any endpoint
//! hosted in shard `i` can deliver to shard `j`: under a rack-aligned
//! map on a fat tree this is [`TopologySpec::min_delay_between`] of the
//! two owned ranges (cross-pod pairs are far "wider apart" than
//! neighbours), otherwise the global
//! [`TopologySpec::min_message_delay`]. `D` is the shortest-*walk*
//! closure of `Δ` (Floyd–Warshall with an unreachable diagonal), so
//! `D[i][j]` also lower-bounds multi-epoch relay chains `i → m → j`,
//! and `D[j][j]` is the cheapest cycle by which shard `j`'s own
//! emission can come back to haunt it. Each epoch:
//!
//! 1. every *runnable* shard `j` (one with an event strictly below its
//!    horizon `H[j]`) processes its local events up to `H[j]`,
//!    buffering cross-shard messages in an outbox kept sorted by
//!    `(firing time, send sequence)`; shards with nothing below their
//!    horizon are skipped entirely;
//! 2. once every runnable shard has reported, the finishing worker
//!    k-way-merges the outbox streams in `(firing time, source shard,
//!    send sequence)` order — a total order independent of thread
//!    interleaving, and the exact order a concat-and-sort would
//!    produce — injecting each envelope directly into its destination
//!    engine without sorting or allocating;
//! 3. the next horizons are `H'[j] = min over i of t[i] + D[i][j]`,
//!    where `t[i]` is the firing time of shard `i`'s next pending event
//!    (re-peeked after injection, so delivered envelopes are counted).
//!
//! Any event shard `i` processes fires at `≥ t[i]`, so any message it
//! sends (or causes, transitively) into shard `j` arrives at
//! `≥ t[i] + D[i][j] ≥ H'[j]` — never inside the receiving shard's
//! processed past. Inbox injection therefore uses
//! [`Engine::try_schedule_at`], which turns any violation of this
//! argument into a hard error in **both** build profiles instead of the
//! release-mode clamp that would silently reorder causality.
//!
//! **Quiescence fast-path:** when exactly one shard has a pending event
//! (`t[i] = ∞` for every other `i`), no horizon can bind before that
//! shard emits — the merge publishes `H[j] = ∞` and the sole active
//! shard *free-runs*: it processes events without a horizon until it
//! emits a cross-shard envelope, finishes its last home job, or
//! exhausts a large event budget. Utilization sampling is lazy (see
//! below) so an idle shard's queue really is empty rather than ticking
//! a sampling clock, which is what lets the fast path fire.
//!
//! **Lazy utilization sampling:** the single-threaded driver schedules
//! a `UtilSample` event every `util_interval`. Here that would keep
//! every idle shard's `t[i]` finite forever (and a self-rescheduling
//! event would livelock a free-run), so samples are not events: each
//! shard records all sample points `≤ t` immediately before processing
//! an event at `t`, and catches up to its horizon at epoch end —
//! sound, because no arrival can land below the horizon, so the
//! sampled state cannot change there. Sample *values* are identical to
//! the eager scheme (cluster state only changes at events); sampled
//! events are no longer counted in `events`.
//!
//! # Shadow clusters
//!
//! Every shard holds a *full-size* [`Cluster`] and replays the complete
//! dynamics script, but only ever enqueues work on the servers it owns.
//! Global server ids therefore need no translation, liveness-aware
//! placement (`PlacementView`, victim filters) sees correct membership
//! everywhere, and non-owned servers simply look idle. The built-in
//! policies sample placement targets randomly, so an idle-looking
//! remote server is indistinguishable from a real one; a future
//! depth-aware policy would need shard-aware load views.
//!
//! # Rack-aligned partitioning
//!
//! When the topology exposes rack geometry
//! ([`TopologySpec::rack_geometry`]), the shard map aligns shard
//! boundaries to the largest geometry unit that still leaves at least
//! one unit per shard — pods when the cluster has enough of them,
//! racks otherwise, plain servers as the degenerate fallback. Racks are
//! then never split across shards, every shard pair sits a full
//! cross-rack (usually cross-pod) hop apart — which is exactly what
//! makes the lookahead matrix wide — and under rack-first stealing a
//! thief's rack-local victims are always shard-local. Distributed jobs
//! are homed on the shard that owns the host of their scheduler
//! endpoint (`job id mod nodes`) so every scheduler-source message
//! originates in its home shard and the per-pair floors apply to
//! scheduler traffic too; without geometry the home stays
//! `job id mod K`.
//!
//! # Divergences from the single-threaded [`Driver`]
//!
//! `shards = 1` run through [`ShardedDriver`] is event-for-event
//! identical to [`Driver`] *except* for the bookkeeping-message timing
//! below, which is why [`crate::Experiment::run`] routes `shards <= 1`
//! to [`Driver`] (byte-identical to every pinned golden digest) and
//! `K > 1` here. For `K > 1` the simulated system is the same, but:
//!
//! * task-completion bookkeeping travels server → scheduler as a
//!   message, so a job's recorded completion time is one network delay
//!   after its last task finished;
//! * relocation off a failed server detours through the deciding
//!   scheduler (central for tasks, the job's scheduler for probes)
//!   instead of moving point-to-point — probe re-probes are sent from
//!   the job's scheduler endpoint, not the failed server;
//! * an idle thief scans only shard-local victims synchronously; the
//!   remote victims from the same scan (up to four) are tried
//!   asynchronously one at a time, each failed request forwarding to
//!   the next candidate;
//! * each shard's topology instance tracks contention for the messages
//!   it sends, so contended fat-trees approximate global link state;
//! * per-shard RNG streams replace the global ones (split order below);
//! * utilization samples are taken lazily (identical values, different
//!   tail truncation at run end) and not counted as engine events.
//!
//! Headline metrics stay within a few percent of the single-threaded
//! driver (the conformance suite pins a bound); digests are comparable
//! only between runs with the same `K`.
//!
//! [`Driver`]: crate::Driver
//! [`TopologySpec::min_message_delay`]: hawk_net::TopologySpec::min_message_delay

use std::sync::{Arc, Condvar, Mutex};

use hawk_cluster::{Cluster, QueueEntry, ServerAction, ServerId, TaskSpec, UtilizationTracker};
use hawk_net::{Endpoint, NetworkStats, RackGeometry, Topology, TopologySpec};
use hawk_simcore::stats::StreamingQuantiles;
use hawk_simcore::{BatchHandle, BatchPool, Engine, SimDuration, SimRng, SimTime};
use hawk_workload::classify::{Cutoff, JobEstimates};
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobClass, JobId, Trace};

use crate::admission::{AdmissionDecision, AdmissionPlan};
use crate::centralized::CentralScheduler;
use crate::config::{Route, Scope, SimConfig};
use crate::live::LiveRecorder;
use crate::metrics::{JobResult, MetricsReport, ShardedStats, StreamingStats, StreamingSummary};
use crate::scheduler::{PlacementView, Scheduler, StealSpec};

/// The number of simulation worker threads the process should use, the
/// budget the sharded driver and [`crate::Sweep`] divide between cells
/// and shards.
///
/// Defaults to [`std::thread::available_parallelism`]; the
/// `HAWK_WORKER_BUDGET` environment variable overrides it explicitly
/// (clamped to at least 1). The override exists both to pin CI runners
/// to a known width and to stop oversubscription when several
/// simulations share a machine.
pub fn worker_budget() -> usize {
    if let Ok(raw) = std::env::var("HAWK_WORKER_BUDGET") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Contiguous-range shard map: shard `s` owns a run of server ids, with
/// boundaries aligned to multiples of `align` servers. With `align = 1`
/// (no topology geometry) the first `nodes % shards` shards are one
/// server larger — the original placement-blind map. With `align > 1`
/// the cluster is split into `ceil(nodes / align)` alignment units
/// (racks or pods) and whole units are dealt to shards the same way, so
/// no unit is ever split across a shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardMap {
    nodes: usize,
    shards: usize,
    align: usize,
}

impl ShardMap {
    #[cfg(test)]
    fn new(nodes: usize, shards: usize) -> Self {
        ShardMap::aligned(nodes, shards, 1)
    }

    fn aligned(nodes: usize, shards: usize, align: usize) -> Self {
        let align = align.max(1);
        let units = nodes.max(1).div_ceil(align);
        let shards = shards.clamp(1, units);
        ShardMap {
            nodes,
            shards,
            align,
        }
    }

    /// The alignment unit (servers per indivisible block) that keeps at
    /// least one block per shard: pods when the cluster has enough,
    /// racks otherwise, single servers as the degenerate fallback.
    fn pick_align(nodes: usize, shards: usize, geometry: Option<RackGeometry>) -> usize {
        let Some(geo) = geometry else { return 1 };
        let rack = geo.hosts_per_rack.max(1);
        let pod = rack * geo.racks_per_pod.max(1);
        if nodes.div_ceil(pod) >= shards.max(1) {
            pod
        } else if nodes.div_ceil(rack) >= shards.max(1) {
            rack
        } else {
            1
        }
    }

    /// Whether shard boundaries are aligned to topology geometry (and
    /// therefore scheduler endpoints are homed by owner, and the
    /// lookahead matrix may use per-pair range floors).
    fn rack_aligned(&self) -> bool {
        self.align > 1
    }

    fn units(&self) -> usize {
        self.nodes.max(1).div_ceil(self.align)
    }

    /// Owned id range of shard `s` as `[start, end)`.
    fn range(&self, s: usize) -> (u32, u32) {
        let units = self.units();
        let q = units / self.shards;
        let r = units % self.shards;
        let start_u = s * q + s.min(r);
        let len_u = q + usize::from(s < r);
        let start = (start_u * self.align).min(self.nodes);
        let end = ((start_u + len_u) * self.align).min(self.nodes);
        (start as u32, end as u32)
    }

    /// The shard owning server `id`.
    fn owner(&self, id: ServerId) -> usize {
        let units = self.units();
        let q = units / self.shards;
        let r = units % self.shards;
        let unit = (id.index() / self.align).min(units - 1);
        let wide = r * (q + 1);
        if unit < wide {
            unit / (q + 1)
        } else {
            r + (unit - wide) / q
        }
    }
}

/// A shard-local simulation event. Mirrors [`crate::driver::Event`] with
/// the cross-shard bookkeeping messages the single-threaded driver
/// performs as direct state access.
#[derive(Debug, Clone, Copy)]
enum SEvent {
    /// A job was submitted (scheduled only in its home shard).
    Arrival(JobId),
    /// A probe reached an owned server.
    Probe {
        server: ServerId,
        job: JobId,
        class: JobClass,
        bounces: u8,
    },
    /// A centrally-placed (or relocated) task reached an owned server.
    Task { server: ServerId, spec: TaskSpec },
    /// A server's task request reached the job's home shard.
    BindRequest { server: ServerId, job: JobId },
    /// The home shard's response reached the owned server.
    BindResponse {
        server: ServerId,
        task: Option<TaskSpec>,
    },
    /// The running task on an owned server completed.
    Finish { server: ServerId },
    /// Stolen entries reached an owned thief (handle into the shard's
    /// local batch pool; never crosses the wire as-is).
    Stolen {
        server: ServerId,
        batch: BatchHandle,
    },
    /// A remote thief asks the victim's owner for one steal scan.
    /// `rest` holds the thief's remaining remote candidates from the
    /// same victim scan (`u32::MAX`-padded): when the scan fails, the
    /// victim's owner forwards the request to `rest[0]` so one idle
    /// transition can try several remote victims without a round-trip
    /// through the thief.
    StealRequest {
        thief: ServerId,
        victim: ServerId,
        rest: [u32; 3],
    },
    /// A distributed job's task finished; counts down at the home shard.
    TaskDone { job: JobId },
    /// A central job's task finished; shard 0 updates the waiting-time
    /// bookkeeping and the job's completion state in one message.
    CentralTaskDone { job: JobId, server: ServerId },
    /// A task drained off a failed server asks shard 0 for a new home.
    TaskRelocate { from: ServerId, spec: TaskSpec },
    /// A probe drained off a failed server asks the job's home shard to
    /// re-probe or abandon it.
    ProbeRelocate {
        from: ServerId,
        job: JobId,
        class: JobClass,
    },
    /// The centralized scheduler's serial queue reaches this job.
    CentralPlace(JobId),
    /// Scripted dynamics, replayed in every shard's shadow cluster.
    NodeDown(ServerId),
    /// Scripted dynamics, replayed in every shard's shadow cluster.
    NodeUp(ServerId),
}

/// Sentinel padding for [`SEvent::StealRequest::rest`].
const NO_VICTIM: u32 = u32::MAX;

/// A cross-shard message payload.
#[derive(Debug)]
enum WireMsg {
    /// An ordinary event for the destination shard's engine.
    Ev(SEvent),
    /// A remote steal's stolen group. The only steady-state allocation
    /// of the sharded driver: remote steals carry their entries in an
    /// owned `Vec` (local steals stay in the recycled batch pool).
    Stolen {
        thief: ServerId,
        entries: Vec<QueueEntry>,
    },
}

/// A cross-shard message in flight between epochs.
#[derive(Debug)]
struct Envelope {
    at: SimTime,
    dest: u32,
    src: u32,
    /// Per-source send sequence; `(at, src, seq)` totally orders all
    /// envelopes of a run independently of thread interleaving.
    seq: u64,
    msg: WireMsg,
}

/// Per-job dynamic state; only the entry in the job's *home* shard is
/// authoritative.
#[derive(Debug, Clone, Copy)]
struct JobRun {
    class: JobClass,
    next_task: u32,
    remaining: u32,
    completion: Option<SimTime>,
}

/// One raw utilization sample of a shard's owned slice.
#[derive(Debug, Clone, Copy)]
struct UtilSampleRaw {
    running: u32,
    down_running: u32,
    owned_down: u32,
}

/// Shared state of one sharded run: the shards themselves (locked by
/// whichever worker claims them each epoch), the work queue driving the
/// epoch protocol, and the read-only lookahead matrix.
struct SharedState<'t> {
    shards: Vec<Mutex<Shard<'t>>>,
    work: Mutex<WorkQueue>,
    /// Parked workers wait here; signalled when an epoch with work for
    /// more than one thread is published, and at stop.
    available: Condvar,
    /// Shortest-walk closure of the per-shard-pair one-hop delay
    /// floors, row-major `[src * K + dst]`, raw microseconds. The
    /// diagonal is the cheapest cycle back to the shard itself (never
    /// zero), so a shard's own emissions bound its horizon too.
    delta: Vec<u64>,
    /// How many *peers* of the finishing worker are worth waking per
    /// epoch: the machine's available parallelism minus the one thread
    /// already running. Waking is purely a throughput heuristic (the
    /// finishing worker claims from the fresh schedule itself), so on
    /// a single-core host this is zero and surplus workers park for
    /// the whole run instead of forcing a context switch per epoch.
    wake_cap: usize,
}

/// The epoch scheduler. One mutex guards the whole epoch protocol:
/// workers claim runnable shards from it, report back when a shard has
/// run to its horizon, and the worker whose report completes the epoch
/// merges and publishes the next one *while still holding the lock* —
/// so in sparse phases (almost every epoch has exactly one runnable
/// shard) a single thread runs claim → shard → report → merge → claim
/// with two uncontended lock acquisitions per epoch and no barrier or
/// cross-thread handoff at all. Workers that find nothing to claim
/// park on the condvar and are only woken for epochs that actually
/// have work for a second thread.
struct WorkQueue {
    /// Shard ids with work this epoch (`t[j] < H[j]`), ascending.
    runnable: Vec<u32>,
    /// Claim cursor into `runnable`.
    next: usize,
    /// Shards claimed but not yet reported back.
    inflight: usize,
    /// Per-shard horizons, raw microseconds; `u64::MAX` is the
    /// free-run sentinel (quiescence fast-path).
    horizons: Vec<u64>,
    /// `t[i]`: shard `i`'s next pending event (`u64::MAX` = drained).
    t: Vec<u64>,
    /// Cached per-shard unfinished-home-job counts, plus their sum
    /// (maintained incrementally from epoch reports).
    unfinished: Vec<usize>,
    total_unfinished: usize,
    /// Shards whose outbox holds envelopes awaiting the merge.
    outbox_full: Vec<bool>,
    /// Per-source outbox streams, swapped in from the shards at merge.
    streams: Vec<Vec<Envelope>>,
    /// Read cursor per stream.
    cursors: Vec<usize>,
    /// Recycled per-destination delivery buffers.
    inboxes: Vec<Vec<Envelope>>,
    stopped: bool,
    /// Workers currently waiting on [`SharedState::available`].
    parked: usize,
    epochs: u64,
    merge_envelopes: u64,
    span_accum: u64,
    last_base: u64,
}

/// One shard: a slice of owned servers with its own engine, shadow
/// cluster, RNG streams and recycled buffers.
struct Shard<'t> {
    id: usize,
    map: ShardMap,
    own_start: u32,
    own_end: u32,
    trace: &'t Trace,
    scheduler: Arc<dyn Scheduler>,
    estimates: Arc<JobEstimates>,
    engine: Engine<SEvent>,
    cluster: Cluster,
    jobs: Vec<JobRun>,
    /// Present only on shard 0, which owns all centralized decisions.
    central: Option<CentralScheduler>,
    steal_spec: Option<StealSpec>,
    probe_rng: SimRng,
    steal_rng: SimRng,
    scenario_rng: SimRng,
    cutoff: Cutoff,
    central_overhead: crate::config::CentralOverhead,
    util_interval: SimDuration,
    /// Next lazy utilization sample point (see the module docs).
    next_sample: SimTime,
    /// Topology geometry for rack-first victim picking; `None` under
    /// placement-blind topologies.
    rack_geometry: Option<RackGeometry>,
    /// Shared admission plan (computed once, applied at home-shard
    /// arrivals); `None` runs byte-identically to the pre-admission
    /// driver.
    admission: Option<Arc<AdmissionPlan>>,
    /// Streaming runtime sink for home jobs whose true class is short.
    short_sink: StreamingQuantiles,
    /// Streaming runtime sink for home jobs whose true class is long.
    long_sink: StreamingQuantiles,
    /// Per-shard live-metrics recorder, closed lazily alongside
    /// utilization sampling (never an engine event — a self-rescheduling
    /// sample would break the quiescence free-run).
    live: Option<LiveRecorder>,
    unfinished_home: usize,
    steals: u64,
    steal_attempts: u64,
    migrations: u64,
    abandons: u64,
    /// Owned servers currently out of service (shadow failures of other
    /// shards' servers are not counted here).
    owned_down: usize,
    samples: Vec<UtilSampleRaw>,
    drain_buf: Vec<QueueEntry>,
    victim_scratch: Vec<usize>,
    victim_buf: Vec<ServerId>,
    steal_buf: Vec<QueueEntry>,
    stolen_pool: BatchPool<QueueEntry>,
    probe_buf: Vec<ServerId>,
    place_buf: Vec<ServerId>,
    central_ready: SimTime,
    topology: Box<dyn Topology>,
    outbox: Vec<Envelope>,
    out_seq: u64,
}

impl<'t> Shard<'t> {
    fn owns(&self, server: ServerId) -> bool {
        (self.own_start..self.own_end).contains(&(server.0))
    }

    /// Home shard of a *distributed* job. Under a rack-aligned map the
    /// home is the shard owning the host of the job's scheduler
    /// endpoint (`job id mod nodes`, see [`Endpoint::host`]), so every
    /// scheduler-source message originates in its home shard and the
    /// per-pair lookahead floors hold; otherwise jobs are dealt
    /// round-robin so scheduler-side work spreads evenly. Central jobs
    /// live on shard 0 (which owns host 0, the central endpoint).
    fn distributed_home(&self, job: JobId) -> usize {
        distributed_home(&self.map, job)
    }

    fn scope_range(&self, scope: Scope) -> (u32, usize) {
        let p = self.cluster.partition();
        match scope {
            Scope::Whole => (0, p.total()),
            Scope::General => (0, p.general_count()),
            Scope::ShortReserved => (p.general_count() as u32, p.short_count()),
        }
    }

    /// Routes an event: scheduled directly when `dest` is this shard,
    /// buffered in the outbox for the epoch merge otherwise.
    fn send_ev(&mut self, delay: SimDuration, dest: usize, ev: SEvent) {
        let at = self.engine.now() + delay;
        if dest == self.id {
            self.engine.schedule_at(at, ev);
        } else {
            self.out_seq += 1;
            self.outbox.push(Envelope {
                at,
                dest: dest as u32,
                src: self.id as u32,
                seq: self.out_seq,
                msg: WireMsg::Ev(ev),
            });
        }
    }

    /// Commits one epoch's merged inbox into the engine. Every envelope
    /// must fire at or after the local clock — the epoch horizon
    /// guarantees it, and `try_schedule_at` makes any violation a hard
    /// error in both build profiles.
    fn inject(&mut self, inbox: &mut Vec<Envelope>) {
        for env in inbox.drain(..) {
            let result = match env.msg {
                WireMsg::Ev(ev) => self.engine.try_schedule_at(env.at, ev),
                WireMsg::Stolen { thief, mut entries } => {
                    let batch = self.stolen_pool.put(&mut entries);
                    self.engine.try_schedule_at(
                        env.at,
                        SEvent::Stolen {
                            server: thief,
                            batch,
                        },
                    )
                }
            };
            if let Err(err) = result {
                panic!(
                    "cross-shard event delivered in shard {}'s past \
                     (epoch-horizon violation): {err}",
                    self.id
                );
            }
        }
    }

    /// Records every lazy utilization sample point at or before `limit`
    /// with the *current* cluster state. Callers guarantee no event
    /// below `limit` remains unprocessed, and state between events is
    /// constant, so the values match the single-threaded driver's eager
    /// `UtilSample` events (a sample coinciding with an event reads the
    /// pre-event state).
    fn sample_up_to(&mut self, limit: SimTime) {
        while self.next_sample <= limit {
            self.samples.push(UtilSampleRaw {
                running: self.cluster.running_count() as u32,
                down_running: self.cluster.down_running_count() as u32,
                owned_down: self.owned_down as u32,
            });
            self.next_sample += self.util_interval;
        }
        // Live-metrics windows close on the same lazy schedule. The
        // shadow cluster only ever runs owned tasks, so its utilization
        // is this shard's *share* of the whole-cluster occupancy —
        // [`LiveRecorder::merge`] sums the shares at report time.
        if let Some(live) = &mut self.live {
            live.close_up_to(
                limit,
                self.cluster.utilization(),
                self.steals,
                self.steal_attempts,
            );
        }
    }

    /// Processes every local event strictly below `horizon`, then
    /// catches utilization sampling up to the horizon (no cross-shard
    /// arrival can land below it, so the state there is final).
    fn run_until(&mut self, horizon: SimTime) {
        while let Some(t) = self.engine.peek_time() {
            if t >= horizon {
                break;
            }
            self.sample_up_to(t);
            let (_, ev) = self.engine.pop().expect("peeked event vanished");
            self.dispatch(ev);
        }
        self.sample_up_to(horizon);
    }

    /// The quiescence fast-path: this shard is the only one with a
    /// pending event, so nothing can interfere before it emits. Process
    /// events without a horizon until the first cross-shard envelope is
    /// buffered, the last home job completes (its queue may still be
    /// draining bookkeeping that another shard waits on), or a large
    /// budget runs out (a backstop bounding epoch length).
    fn run_free(&mut self) {
        const FREE_RUN_EVENT_BUDGET: u32 = 1 << 22;
        let entered_unfinished = self.unfinished_home > 0;
        let mut budget = FREE_RUN_EVENT_BUDGET;
        while let Some(t) = self.engine.peek_time() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            self.sample_up_to(t);
            let (_, ev) = self.engine.pop().expect("peeked event vanished");
            self.dispatch(ev);
            if !self.outbox.is_empty() || (entered_unfinished && self.unfinished_home == 0) {
                break;
            }
        }
    }

    fn dispatch(&mut self, event: SEvent) {
        match event {
            SEvent::Arrival(job) => self.on_job_arrival(job),
            SEvent::Probe {
                server,
                job,
                class,
                bounces,
            } => self.on_probe(server, job, class, bounces),
            SEvent::Task { server, spec } => {
                debug_assert!(self.owns(server));
                if self.cluster.is_down(server) {
                    self.relocate_task(server, spec);
                    return;
                }
                if let Some(action) = self.cluster.enqueue(server, QueueEntry::Task(spec)) {
                    self.on_action(server, action);
                }
            }
            SEvent::BindRequest { server, job } => self.on_bind_request(server, job),
            SEvent::BindResponse { server, task } => {
                debug_assert!(self.owns(server));
                let action = self.cluster.on_bind_response(server, task);
                self.on_action(server, action);
            }
            SEvent::Finish { server } => self.on_task_finish(server),
            SEvent::Stolen { server, batch } => self.on_stolen(server, batch),
            SEvent::StealRequest {
                thief,
                victim,
                rest,
            } => self.on_steal_request(thief, victim, rest),
            SEvent::TaskDone { job } => self.on_task_done(job),
            SEvent::CentralTaskDone { job, server } => {
                let estimate = self.estimates.estimate(job);
                self.central
                    .as_mut()
                    .expect("central bookkeeping lives on shard 0")
                    .on_task_complete(server, estimate);
                self.on_task_done(job);
            }
            SEvent::TaskRelocate { from, spec } => self.on_task_relocate(from, spec),
            SEvent::ProbeRelocate { from, job, class } => self.on_probe_relocate(from, job, class),
            SEvent::CentralPlace(job) => self.place_centrally(job),
            SEvent::NodeDown(server) => self.on_node_down(server),
            SEvent::NodeUp(server) => {
                if self.cluster.revive_server(server) {
                    if self.owns(server) {
                        self.owned_down -= 1;
                    }
                    if let Some(central) = &mut self.central {
                        if server.index() < central.scope() {
                            central.revive(server);
                        }
                    }
                }
            }
        }
    }

    fn on_job_arrival(&mut self, job: JobId) {
        // Admission control, applied at the home shard (`Arrival` only
        // ever fires there). The plan is a pure function of the
        // experiment inputs, so no RNG stream advances on any path and
        // admission-off runs are byte-identical to the classic digests.
        if let Some(plan) = &self.admission {
            match plan.decision(job) {
                AdmissionDecision::Admit => {
                    if let Some(live) = &mut self.live {
                        live.on_arrival();
                    }
                }
                AdmissionDecision::Defer { until } => {
                    let now = self.engine.now();
                    if now < until {
                        // First firing: postpone locally. The re-fire at
                        // `until` falls through without double-counting.
                        if let Some(live) = &mut self.live {
                            live.on_arrival();
                            live.on_deferral();
                        }
                        self.engine.schedule_at(until, SEvent::Arrival(job));
                        return;
                    }
                }
                AdmissionDecision::Shed => {
                    if let Some(live) = &mut self.live {
                        live.on_arrival();
                        live.on_shed();
                    }
                    let class = self.estimates.class(job, self.cutoff);
                    let run = &mut self.jobs[job.index()];
                    run.class = class;
                    run.completion = Some(self.engine.now());
                    self.unfinished_home -= 1;
                    return;
                }
            }
        } else if let Some(live) = &mut self.live {
            live.on_arrival();
        }
        let spec = self.trace.job(job);
        let class = self.estimates.class(job, self.cutoff);
        self.jobs[job.index()].class = class;
        match self.scheduler.route(class) {
            Route::Central(_) => {
                debug_assert_eq!(self.id, 0, "central jobs are homed on shard 0");
                if self.central_overhead.is_free() {
                    self.place_centrally(job);
                } else {
                    let now = self.engine.now();
                    let ready =
                        self.central_ready.max(now) + self.central_overhead.cost(spec.num_tasks());
                    self.central_ready = ready;
                    self.engine.schedule_at(ready, SEvent::CentralPlace(job));
                }
            }
            Route::Distributed(scope) => {
                let (start, len) = self.scope_range(scope);
                let view = PlacementView::new(&self.cluster, start, len);
                self.scheduler.probe_targets_into(
                    &view,
                    spec.num_tasks(),
                    &mut self.probe_rng,
                    &mut self.probe_buf,
                );
                let now = self.engine.now();
                let src = Endpoint::Scheduler(job.0);
                let targets = std::mem::take(&mut self.probe_buf);
                for &server in &targets {
                    let delay = self.topology.delay(now, src, Endpoint::Server(server));
                    let dest = self.map.owner(server);
                    self.send_ev(
                        delay,
                        dest,
                        SEvent::Probe {
                            server,
                            job,
                            class,
                            bounces: 0,
                        },
                    );
                }
                self.probe_buf = targets;
            }
        }
    }

    fn on_probe(&mut self, server: ServerId, job: JobId, class: JobClass, bounces: u8) {
        debug_assert!(self.owns(server));
        if self.cluster.is_down(server) {
            self.relocate_probe(server, job, class);
            return;
        }
        if self
            .scheduler
            .bounce_probe(self.cluster.server(server), class, bounces)
        {
            let scope = match self.scheduler.route(class) {
                Route::Distributed(scope) => scope,
                Route::Central(_) => unreachable!("probes imply a distributed route"),
            };
            let (start, len) = self.scope_range(scope);
            let retry =
                PlacementView::new(&self.cluster, start, len).random_server(&mut self.probe_rng);
            let delay = self.topology.delay(
                self.engine.now(),
                Endpoint::Server(server),
                Endpoint::Server(retry),
            );
            let dest = self.map.owner(retry);
            self.send_ev(
                delay,
                dest,
                SEvent::Probe {
                    server: retry,
                    job,
                    class,
                    bounces: bounces + 1,
                },
            );
            return;
        }
        if let Some(action) = self
            .cluster
            .enqueue(server, QueueEntry::Probe { job, class })
        {
            self.on_action(server, action);
        }
    }

    /// Runs the §3.7 placement for `job` on shard 0 and sends the tasks
    /// to their owners.
    fn place_centrally(&mut self, job: JobId) {
        let spec = self.trace.job(job);
        let class = self.jobs[job.index()].class;
        let estimate = self.estimates.estimate(job);
        let central = self
            .central
            .as_mut()
            .expect("central route requires a central scheduler");
        central.assign_job_into(spec.num_tasks(), estimate, &mut self.place_buf);
        let now = self.engine.now();
        let placements = std::mem::take(&mut self.place_buf);
        for (i, &server) in placements.iter().enumerate() {
            let task = TaskSpec {
                job,
                duration: spec.tasks[i],
                estimate,
                class,
                task: i as u32,
                attempt: 0,
            };
            let delay = self
                .topology
                .delay(now, Endpoint::Central, Endpoint::Server(server));
            let dest = self.map.owner(server);
            self.send_ev(delay, dest, SEvent::Task { server, spec: task });
        }
        self.place_buf = placements;
    }

    /// A task stranded on a down server: ask shard 0's central scheduler
    /// for a new placement (one hop to the scheduler, one hop out — the
    /// single-threaded driver moves it point-to-point in one hop).
    fn relocate_task(&mut self, from: ServerId, spec: TaskSpec) {
        let delay =
            self.topology
                .delay(self.engine.now(), Endpoint::Server(from), Endpoint::Central);
        self.send_ev(delay, 0, SEvent::TaskRelocate { from, spec });
    }

    /// A probe stranded on a down server: its re-probe (or abandon)
    /// decision belongs to the job's home shard.
    fn relocate_probe(&mut self, from: ServerId, job: JobId, class: JobClass) {
        let home = self.distributed_home(job);
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Server(from),
            Endpoint::Scheduler(job.0),
        );
        self.send_ev(delay, home, SEvent::ProbeRelocate { from, job, class });
    }

    fn on_task_relocate(&mut self, from: ServerId, spec: TaskSpec) {
        let central = self
            .central
            .as_mut()
            .expect("directly-placed tasks imply a central scheduler");
        let target = central.least_loaded();
        assert!(
            !self.cluster.is_down(target),
            "central scope has no live servers to migrate a task to \
             (the dynamics script took down the entire scope)"
        );
        central.reassign(from, target, spec.estimate);
        self.migrations += 1;
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Central,
            Endpoint::Server(target),
        );
        let dest = self.map.owner(target);
        self.send_ev(
            delay,
            dest,
            SEvent::Task {
                server: target,
                spec,
            },
        );
    }

    fn on_probe_relocate(&mut self, _from: ServerId, job: JobId, class: JobClass) {
        let launched = self.jobs[job.index()].next_task as usize;
        if launched >= self.trace.job(job).num_tasks() {
            self.abandons += 1;
            return;
        }
        self.migrations += 1;
        let scope = match self.scheduler.route(class) {
            Route::Distributed(scope) => scope,
            Route::Central(_) => unreachable!("probes imply a distributed route"),
        };
        let (start, len) = self.scope_range(scope);
        let target =
            PlacementView::new(&self.cluster, start, len).random_server(&mut self.scenario_rng);
        // The re-probe is sent from the job's scheduler endpoint — this
        // shard hosts it (the relocation already detoured here, see the
        // module docs) — not from the failed server, which may live in
        // a shard whose delay floors don't cover this send.
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Scheduler(job.0),
            Endpoint::Server(target),
        );
        let dest = self.map.owner(target);
        self.send_ev(
            delay,
            dest,
            SEvent::Probe {
                server: target,
                job,
                class,
                bounces: 0,
            },
        );
    }

    fn on_bind_request(&mut self, server: ServerId, job: JobId) {
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Scheduler(job.0),
            Endpoint::Server(server),
        );
        let estimate = self.estimates.estimate(job);
        let spec = self.trace.job(job);
        let run = &mut self.jobs[job.index()];
        let task = if (run.next_task as usize) < spec.num_tasks() {
            let idx = run.next_task as usize;
            run.next_task += 1;
            Some(TaskSpec {
                job,
                duration: spec.tasks[idx],
                estimate,
                class: run.class,
                task: idx as u32,
                attempt: 0,
            })
        } else {
            None // all tasks given out: cancel (§3.5)
        };
        let dest = self.map.owner(server);
        self.send_ev(delay, dest, SEvent::BindResponse { server, task });
    }

    fn on_task_finish(&mut self, server: ServerId) {
        debug_assert!(self.owns(server));
        let now = self.engine.now();
        let (spec, action) = self.cluster.on_task_finish(server);
        let job = spec.job;
        if matches!(self.scheduler.route(spec.class), Route::Central(_)) {
            // Central jobs are homed on shard 0, which also owns the
            // waiting-time bookkeeping: one message covers both.
            let delay = self
                .topology
                .delay(now, Endpoint::Server(server), Endpoint::Central);
            self.send_ev(delay, 0, SEvent::CentralTaskDone { job, server });
        } else {
            let delay =
                self.topology
                    .delay(now, Endpoint::Server(server), Endpoint::Scheduler(job.0));
            let home = self.distributed_home(job);
            self.send_ev(delay, home, SEvent::TaskDone { job });
        }
        self.on_action(server, action);
    }

    fn on_task_done(&mut self, job: JobId) {
        let run = &mut self.jobs[job.index()];
        run.remaining -= 1;
        if run.remaining == 0 {
            let now = self.engine.now();
            run.completion = Some(now);
            self.unfinished_home -= 1;
            // Streaming runtime sinks, keyed by *true* class like the
            // exact per-class summaries (digest-excluded, RNG-free).
            let spec = self.trace.job(job);
            let true_class = self.cutoff.classify(spec.mean_task_duration());
            let micros = (now - spec.submission).as_micros();
            match true_class {
                JobClass::Short => self.short_sink.record(micros),
                JobClass::Long => self.long_sink.record(micros),
            }
            if let Some(live) = &mut self.live {
                live.on_completion(true_class, micros);
            }
        }
    }

    fn on_action(&mut self, server: ServerId, action: ServerAction) {
        match action {
            ServerAction::StartTask(spec) => {
                let occupancy = self.cluster.server(server).scale_duration(spec.duration);
                self.engine.schedule(occupancy, SEvent::Finish { server });
            }
            ServerAction::RequestBind { job } => {
                let delay = self.topology.delay(
                    self.engine.now(),
                    Endpoint::Server(server),
                    Endpoint::Scheduler(job.0),
                );
                let home = self.distributed_home(job);
                self.send_ev(delay, home, SEvent::BindRequest { server, job });
            }
            ServerAction::BecameIdle => self.try_steal(server),
        }
    }

    /// One steal attempt for an idle owned thief (§3.6). Victim draws
    /// use this shard's steal stream exactly like the single-threaded
    /// driver uses its global one (rack-first when the scheduler says
    /// so and the topology has geometry); shard-local victims are
    /// scanned synchronously in pick order, and if none yields a group,
    /// the remote victims from the same scan (up to four, in pick
    /// order) are chained into one asynchronous
    /// [`SEvent::StealRequest`] that each failed hop forwards onward.
    fn try_steal(&mut self, thief: ServerId) {
        let Some(spec) = self.steal_spec else { return };
        if self.cluster.is_down(thief) {
            return;
        }
        self.steal_attempts += 1;
        let partition = self.cluster.partition();
        let granularity = spec.granularity;
        let mut victims = std::mem::take(&mut self.victim_buf);
        self.scheduler.pick_victims_in_fabric_into(
            &partition,
            thief,
            self.rack_geometry,
            &mut self.steal_rng,
            &mut self.victim_scratch,
            &mut victims,
        );
        // The long-work index only covers owned servers faithfully (the
        // shadow slices never enqueue), so it can short-circuit local
        // scans but not the remote attempt.
        let local_scan = self.cluster.long_holder_count() > 0;
        debug_assert!(self.steal_buf.is_empty(), "stale steal batch");
        let mut robbed = None;
        let mut remotes = [NO_VICTIM; 4];
        let mut remote_count = 0;
        for &victim in &victims {
            if !self.owns(victim) {
                if remote_count < remotes.len() {
                    remotes[remote_count] = victim.0;
                    remote_count += 1;
                }
                continue;
            }
            if !local_scan || !self.cluster.holds_long_work(victim) {
                continue;
            }
            self.cluster.steal_from_with_into(
                victim,
                granularity,
                &mut self.steal_rng,
                &mut self.steal_buf,
            );
            if !self.steal_buf.is_empty() {
                robbed = Some(victim);
                break;
            }
        }
        self.victim_buf = victims;
        if let Some(victim) = robbed {
            self.steals += 1;
            let transfer = self.topology.steal_transfer(
                self.engine.now(),
                Endpoint::Server(victim),
                Endpoint::Server(thief),
            );
            if transfer.is_zero() {
                if let Some(action) = self.cluster.give_stolen_drain(thief, &mut self.steal_buf) {
                    self.on_action(thief, action);
                }
            } else {
                let batch = self.stolen_pool.put(&mut self.steal_buf);
                self.engine.schedule(
                    transfer,
                    SEvent::Stolen {
                        server: thief,
                        batch,
                    },
                );
            }
        } else if remote_count > 0 {
            let victim = ServerId(remotes[0]);
            let delay = self.topology.delay(
                self.engine.now(),
                Endpoint::Server(thief),
                Endpoint::Server(victim),
            );
            let dest = self.map.owner(victim);
            self.send_ev(
                delay,
                dest,
                SEvent::StealRequest {
                    thief,
                    victim,
                    rest: [remotes[1], remotes[2], remotes[3]],
                },
            );
        }
    }

    /// A remote thief's steal request against an owned victim. A failed
    /// scan forwards the request to the next candidate in `rest` (sent
    /// from the owned victim, so the per-pair delay floors hold); when
    /// the chain is exhausted no reply is sent, like an unsuccessful
    /// local scan.
    fn on_steal_request(&mut self, thief: ServerId, victim: ServerId, rest: [u32; 3]) {
        debug_assert!(self.owns(victim));
        let Some(spec) = self.steal_spec else { return };
        let useless = self.cluster.is_down(victim) || !self.cluster.holds_long_work(victim);
        if !useless {
            debug_assert!(self.steal_buf.is_empty(), "stale steal batch");
            self.cluster.steal_from_with_into(
                victim,
                spec.granularity,
                &mut self.steal_rng,
                &mut self.steal_buf,
            );
        }
        if useless || self.steal_buf.is_empty() {
            if rest[0] != NO_VICTIM {
                let next = ServerId(rest[0]);
                let delay = self.topology.delay(
                    self.engine.now(),
                    Endpoint::Server(victim),
                    Endpoint::Server(next),
                );
                let dest = self.map.owner(next);
                self.send_ev(
                    delay,
                    dest,
                    SEvent::StealRequest {
                        thief,
                        victim: next,
                        rest: [rest[1], rest[2], NO_VICTIM],
                    },
                );
            }
            return;
        }
        self.steals += 1;
        let now = self.engine.now();
        let transfer =
            self.topology
                .steal_transfer(now, Endpoint::Server(victim), Endpoint::Server(thief));
        let delay = self
            .topology
            .delay(now, Endpoint::Server(victim), Endpoint::Server(thief))
            + transfer;
        let entries: Vec<QueueEntry> = self.steal_buf.drain(..).collect();
        self.out_seq += 1;
        self.outbox.push(Envelope {
            at: now + delay,
            dest: self.map.owner(thief) as u32,
            src: self.id as u32,
            seq: self.out_seq,
            msg: WireMsg::Stolen { thief, entries },
        });
    }

    fn on_stolen(&mut self, server: ServerId, batch: BatchHandle) {
        debug_assert!(self.owns(server));
        self.stolen_pool.take_into(batch, &mut self.steal_buf);
        if self.cluster.is_down(server) {
            let mut group = std::mem::take(&mut self.steal_buf);
            for entry in group.drain(..) {
                match entry {
                    QueueEntry::Task(spec) => self.relocate_task(server, spec),
                    QueueEntry::Probe { job, class } => self.relocate_probe(server, job, class),
                }
            }
            self.steal_buf = group;
            return;
        }
        if let Some(action) = self.cluster.give_stolen_drain(server, &mut self.steal_buf) {
            self.on_action(server, action);
        }
    }

    fn on_node_down(&mut self, server: ServerId) {
        debug_assert!(self.drain_buf.is_empty(), "stale drain buffer");
        let mut drained = std::mem::take(&mut self.drain_buf);
        if !self.cluster.fail_server(server, &mut drained) {
            self.drain_buf = drained;
            return; // already down: duplicate script entry
        }
        if self.owns(server) {
            self.owned_down += 1;
        } else {
            debug_assert!(drained.is_empty(), "shadow server held queue entries");
        }
        if let Some(central) = &mut self.central {
            if server.index() < central.scope() {
                central.fail(server);
            }
        }
        for entry in drained.drain(..) {
            match entry {
                QueueEntry::Task(spec) => self.relocate_task(server, spec),
                QueueEntry::Probe { job, class } => self.relocate_probe(server, job, class),
            }
        }
        self.drain_buf = drained;
    }
}

/// The sharded parallel driver. Construct with [`ShardedDriver::new`],
/// consume with [`ShardedDriver::run`]; see the module docs for the
/// synchronization contract and the divergences from [`crate::Driver`].
pub struct ShardedDriver<'t> {
    shards: Vec<Shard<'t>>,
    trace: &'t Trace,
    scheduler: Arc<dyn Scheduler>,
    /// Home shard of every job, by job index.
    homes: Vec<u32>,
    /// Closure of the per-pair lookahead floors (see [`SharedState`]).
    delta: Vec<u64>,
    workers: usize,
    nodes: usize,
    cutoff: Cutoff,
    util_interval: SimDuration,
    stats: ShardedStats,
    /// Shared admission plan (also cloned into every shard); kept here
    /// for the report-time outcome counters.
    admission: Option<Arc<AdmissionPlan>>,
}

impl<'t> ShardedDriver<'t> {
    /// Builds a sharded driver for `sim.shards` shards (clamped to the
    /// node or alignment-unit count), defaulting the worker-thread
    /// count to `min(shards, worker_budget())`. When the topology
    /// exposes rack geometry the shard map aligns to it and the
    /// lookahead matrix uses per-pair range floors (module docs).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (like [`crate::Driver`]) and
    /// when any shard pair's minimum message delay is zero —
    /// conservative parallel execution requires positive lookahead.
    pub fn new(trace: &'t Trace, scheduler: Arc<dyn Scheduler>, sim: &SimConfig) -> Self {
        let spec = sim.topology_spec();
        let rack_geometry = spec.rack_geometry();
        let align = ShardMap::pick_align(sim.nodes, sim.shards.max(1), rack_geometry);
        let map = ShardMap::aligned(sim.nodes, sim.shards, align);
        let shards = map.shards;
        let delta = lookahead_closure(&spec, &map);

        // RNG split order (frozen, see ARCHITECTURE.md): root →
        // estimate stream → per shard s in 0..K: (probe_s, steal_s,
        // scenario_s). The estimate stream splits first so estimates
        // match the single-threaded driver bit-for-bit.
        let mut root = SimRng::seed_from_u64(sim.seed);
        let mut estimate_rng = root.split();
        let mut shard_rngs: Vec<(SimRng, SimRng, SimRng)> = (0..shards)
            .map(|_| (root.split(), root.split(), root.split()))
            .collect();

        let estimates = Arc::new(match sim.misestimate {
            Some(range) => JobEstimates::misestimated(trace, range, &mut estimate_rng),
            None => JobEstimates::exact(trace),
        });

        // One admission plan for the whole cell, shared by every shard:
        // a pure function of the experiment inputs, so the shards agree
        // on every decision without exchanging a single message.
        let admission = sim.admission.map(|policy| {
            Arc::new(AdmissionPlan::compute(
                trace,
                sim.nodes,
                sim.cutoff,
                &sim.dynamics,
                policy,
            ))
        });

        let speeds = sim.speeds.resolve(sim.nodes);
        let long_route = scheduler.route(JobClass::Long);
        let short_route = scheduler.route(JobClass::Short);

        // Home assignment is computable up front: class (and therefore
        // route) depends only on the precomputed estimates.
        let mut homes = Vec::with_capacity(trace.len());
        for job in trace.jobs() {
            let class = estimates.class(job.id, sim.cutoff);
            let home = match scheduler.route(class) {
                Route::Central(_) => 0,
                Route::Distributed(_) => distributed_home(&map, job.id),
            };
            homes.push(home as u32);
        }

        if let Some(max) = sim.dynamics.max_server() {
            assert!(
                (max as usize) < sim.nodes,
                "dynamics script touches server {max} but the cluster has {} servers",
                sim.nodes
            );
        }

        let max_tasks = trace
            .jobs()
            .iter()
            .map(|j| j.num_tasks())
            .max()
            .unwrap_or(0);

        let mut built = Vec::with_capacity(shards);
        for (s, rng_slot) in shard_rngs.iter_mut().enumerate() {
            let cluster = match &speeds {
                Some(speeds) => {
                    Cluster::with_speeds(sim.nodes, scheduler.short_partition_fraction(), speeds)
                }
                None => Cluster::new(sim.nodes, scheduler.short_partition_fraction()),
            };
            let partition = cluster.partition();
            for route in [long_route, short_route] {
                if let Route::Distributed(Scope::ShortReserved)
                | Route::Central(Scope::ShortReserved) = route
                {
                    assert!(
                        partition.short_count() > 0,
                        "route targets the short partition but none is reserved"
                    );
                }
            }
            // Centralized decisions (placement, waiting-time queue,
            // migration targets) all live on shard 0.
            let central = if s == 0 {
                central_scope(&long_route, &short_route).map(|scope| {
                    let len = match scope {
                        Scope::Whole => partition.total(),
                        Scope::General => partition.general_count(),
                        Scope::ShortReserved => {
                            unreachable!("central routes never target the short partition")
                        }
                    };
                    assert!(len > 0, "centralized route over an empty scope");
                    CentralScheduler::new(len)
                })
            } else {
                None
            };

            let mut engine = Engine::with_capacity(trace.len() * 2 / shards + 64);
            let mut unfinished_home = 0;
            for job in trace.jobs() {
                if homes[job.id.index()] as usize == s {
                    engine.schedule_at(job.submission, SEvent::Arrival(job.id));
                    unfinished_home += 1;
                }
            }
            // Every shard replays the full dynamics script so shadow
            // membership stays globally correct. Utilization sampling
            // is lazy, not an engine event (module docs).
            for scripted in sim.dynamics.events() {
                let event = match scripted.change {
                    NodeChange::Down(server) => SEvent::NodeDown(ServerId(server)),
                    NodeChange::Up(server) => SEvent::NodeUp(ServerId(server)),
                };
                engine.schedule_at(scripted.at, event);
            }

            let jobs = trace
                .jobs()
                .iter()
                .map(|j| JobRun {
                    class: JobClass::Short, // finalized at arrival
                    next_task: 0,
                    remaining: j.num_tasks() as u32,
                    completion: None,
                })
                .collect();

            let (probe_rng, steal_rng, scenario_rng) = (
                std::mem::replace(&mut rng_slot.0, SimRng::seed_from_u64(0)),
                std::mem::replace(&mut rng_slot.1, SimRng::seed_from_u64(0)),
                std::mem::replace(&mut rng_slot.2, SimRng::seed_from_u64(0)),
            );
            let (own_start, own_end) = map.range(s);
            built.push(Shard {
                id: s,
                map,
                own_start,
                own_end,
                trace,
                scheduler: Arc::clone(&scheduler),
                estimates: Arc::clone(&estimates),
                engine,
                cluster,
                jobs,
                central,
                steal_spec: scheduler.steal(),
                probe_rng,
                steal_rng,
                scenario_rng,
                cutoff: sim.cutoff,
                central_overhead: sim.central_overhead,
                util_interval: sim.util_interval,
                next_sample: SimTime::ZERO + sim.util_interval,
                rack_geometry,
                admission: admission.clone(),
                short_sink: StreamingQuantiles::new(),
                long_sink: StreamingQuantiles::new(),
                live: sim.live_window.map(LiveRecorder::new),
                unfinished_home,
                steals: 0,
                steal_attempts: 0,
                migrations: 0,
                abandons: 0,
                owned_down: 0,
                samples: Vec::with_capacity(256),
                drain_buf: Vec::with_capacity(4 * max_tasks + 64),
                victim_scratch: Vec::new(),
                victim_buf: Vec::new(),
                steal_buf: Vec::with_capacity(64),
                stolen_pool: BatchPool::new(),
                probe_buf: Vec::with_capacity(4 * max_tasks + 8),
                place_buf: Vec::with_capacity(max_tasks),
                central_ready: SimTime::ZERO,
                topology: sim.topology_spec().build(sim.nodes),
                outbox: Vec::new(),
                out_seq: 0,
            });
        }

        ShardedDriver {
            shards: built,
            trace,
            scheduler,
            homes,
            delta,
            workers: worker_budget().clamp(1, shards),
            nodes: sim.nodes,
            cutoff: sim.cutoff,
            util_interval: sim.util_interval,
            stats: ShardedStats::default(),
            admission,
        }
    }

    /// Overrides the number of OS worker threads (clamped to
    /// `1..=shards`). Results are identical for every worker count; the
    /// determinism suite pins it.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, self.shards.len());
        self
    }

    /// The number of shards this driver was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs the simulation to completion and reports merged metrics.
    ///
    /// # Panics
    ///
    /// Panics if every event queue drains before all jobs complete, or
    /// if a cross-shard message violates the epoch-horizon contract.
    pub fn run(mut self) -> MetricsReport {
        let shard_count = self.shards.len();
        let total_unfinished: usize = self.shards.iter().map(|s| s.unfinished_home).sum();
        if total_unfinished > 0 {
            let t: Vec<u64> = self
                .shards
                .iter()
                .map(|s| s.engine.peek_time().map_or(u64::MAX, SimTime::as_micros))
                .collect();
            let base = t.iter().copied().min().expect("at least one shard");
            assert!(base != u64::MAX, "unfinished jobs but no pending events");
            let mut wq = WorkQueue {
                runnable: Vec::with_capacity(shard_count),
                next: 0,
                inflight: 0,
                horizons: vec![0; shard_count],
                unfinished: self.shards.iter().map(|s| s.unfinished_home).collect(),
                total_unfinished,
                outbox_full: vec![false; shard_count],
                streams: (0..shard_count).map(|_| Vec::new()).collect(),
                cursors: vec![0; shard_count],
                inboxes: (0..shard_count).map(|_| Vec::new()).collect(),
                t,
                stopped: false,
                parked: 0,
                epochs: 0,
                merge_envelopes: 0,
                span_accum: 0,
                last_base: base,
            };
            let delta = std::mem::take(&mut self.delta);
            publish_schedule(&mut wq, &delta);
            // Shards are claimed per epoch, not statically assigned:
            // any worker may run any shard, and the merge order depends
            // only on epoch content, so every worker count yields
            // identical results.
            let shared = SharedState {
                shards: self.shards.drain(..).map(Mutex::new).collect(),
                work: Mutex::new(wq),
                available: Condvar::new(),
                delta,
                wake_cap: std::thread::available_parallelism()
                    .map_or(1, std::num::NonZeroUsize::get)
                    .saturating_sub(1),
            };
            let shared_ref = &shared;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.workers)
                    .map(|_| scope.spawn(move || worker_loop(shared_ref)))
                    .collect();
                for handle in handles {
                    handle.join().expect("shard worker panicked");
                }
            });
            self.shards = shared
                .shards
                .into_iter()
                .map(|m| m.into_inner().expect("shard poisoned"))
                .collect();
            let wq = shared.work.into_inner().expect("work queue poisoned");
            self.stats = ShardedStats {
                epochs: wq.epochs,
                merge_envelopes: wq.merge_envelopes,
                avg_epoch_span_micros: wq.span_accum / wq.epochs.max(1),
            };
        }
        self.report()
    }

    fn report(self) -> MetricsReport {
        let cutoff = self.cutoff;
        let mut makespan = SimTime::ZERO;
        let mut results: Vec<JobResult> = Vec::with_capacity(self.trace.len());
        for job in self.trace.jobs() {
            let home = self.homes[job.id.index()] as usize;
            let run = &self.shards[home].jobs[job.id.index()];
            let Some(completion) = run.completion else {
                unreachable!("job {} unfinished at report time", job.id);
            };
            makespan = makespan.max(completion);
            results.push(JobResult {
                job: job.id,
                true_class: cutoff.classify(job.mean_task_duration()),
                scheduled_class: run.class,
                submission: job.submission,
                completion,
                num_tasks: job.num_tasks(),
            });
        }

        // Merge utilization: every shard samples on the same schedule,
        // so sample i exists in all shards (truncate defensively) and
        // the cluster-wide ratio is the summed numerator over the
        // summed usable capacity of the owned slices.
        let mut util = UtilizationTracker::new(self.util_interval);
        let sample_count = self
            .shards
            .iter()
            .map(|s| s.samples.len())
            .min()
            .unwrap_or(0);
        for i in 0..sample_count {
            let mut running = 0u64;
            let mut usable = 0u64;
            for shard in &self.shards {
                let sample = shard.samples[i];
                let own_len = (shard.own_end - shard.own_start) as u64;
                running += sample.running as u64;
                usable += own_len - sample.owned_down as u64 + sample.down_running as u64;
            }
            util.record(running as f64 / usable.max(1) as f64);
        }

        let mut network = NetworkStats::default();
        for shard in &self.shards {
            let stats = shard.topology.stats();
            network.rack_local_msgs += stats.rack_local_msgs;
            network.cross_rack_msgs += stats.cross_rack_msgs;
            network.cross_pod_msgs += stats.cross_pod_msgs;
            network.rack_local_steals += stats.rack_local_steals;
            network.steal_transfers += stats.steal_transfers;
        }

        // Merging the per-shard streaming sinks is exact: the merged
        // histogram is bit-identical to one global sink fed the same
        // runtimes, so the summary carries the same `1/128` guarantee.
        let mut short_sink = StreamingQuantiles::new();
        let mut long_sink = StreamingQuantiles::new();
        for shard in &self.shards {
            short_sink.merge(&shard.short_sink);
            long_sink.merge(&shard.long_sink);
        }
        let recorders: Vec<&LiveRecorder> =
            self.shards.iter().filter_map(|s| s.live.as_ref()).collect();
        let live = (!recorders.is_empty()).then(|| LiveRecorder::merge(&recorders));

        MetricsReport {
            scheduler: self.scheduler.name(),
            nodes: self.nodes,
            results,
            median_utilization: util.median().unwrap_or(0.0),
            max_utilization: util.max().unwrap_or(0.0),
            utilization_samples: util.samples().to_vec(),
            makespan,
            events: self.shards.iter().map(|s| s.engine.processed()).sum(),
            steals: self.shards.iter().map(|s| s.steals).sum(),
            steal_attempts: self.shards.iter().map(|s| s.steal_attempts).sum(),
            migrations: self.shards.iter().map(|s| s.migrations).sum(),
            abandons: self.shards.iter().map(|s| s.abandons).sum(),
            network,
            sharded: Some(self.stats),
            streaming: StreamingStats {
                short: StreamingSummary::from_sink(&short_sink),
                long: StreamingSummary::from_sink(&long_sink),
            },
            live,
            admission: self
                .admission
                .as_ref()
                .map(|plan| plan.stats())
                .unwrap_or_default(),
        }
    }
}

/// Home shard of a distributed job under `map`
/// (see [`Shard::distributed_home`]).
fn distributed_home(map: &ShardMap, job: JobId) -> usize {
    if map.rack_aligned() {
        map.owner(ServerId((job.index() % map.nodes.max(1)) as u32))
    } else {
        job.index() % map.shards
    }
}

/// Builds the lookahead matrix: per-pair one-hop delay floors closed
/// under shortest walks (Floyd–Warshall), row-major `[src * K + dst]`,
/// raw microseconds. Under a rack-aligned map the one-hop floor of a
/// pair is the minimum delay between the two owned host ranges (every
/// endpoint hosted in shard `i` — servers by ownership, schedulers by
/// the homing rule — maps to a host in `i`'s range); otherwise
/// scheduler endpoints are scattered and only the global minimum is a
/// valid floor. The closed diagonal is the cheapest cycle through each
/// shard, bounding the feedback of a shard's own emissions.
///
/// # Panics
///
/// Panics when any one-hop floor is zero: conservative parallel
/// execution requires positive lookahead.
fn lookahead_closure(spec: &TopologySpec, map: &ShardMap) -> Vec<u64> {
    let k = map.shards;
    let global = spec.min_message_delay().as_micros();
    let mut delta = vec![u64::MAX; k * k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let floor = if map.rack_aligned() {
                let (a0, a1) = map.range(i);
                let (b0, b1) = map.range(j);
                spec.min_delay_between((a0 as usize, a1 as usize), (b0 as usize, b1 as usize))
                    .as_micros()
            } else {
                global
            };
            assert!(
                floor > 0,
                "sharded execution requires a positive minimum network delay \
                 between shards {i} and {j} (the lookahead of conservative \
                 parallel simulation)"
            );
            delta[i * k + j] = floor;
        }
    }
    for m in 0..k {
        for i in 0..k {
            let im = delta[i * k + m];
            if im == u64::MAX {
                continue;
            }
            for j in 0..k {
                let mj = delta[m * k + j];
                if mj == u64::MAX {
                    continue;
                }
                let via = im.saturating_add(mj);
                if via < delta[i * k + j] {
                    delta[i * k + j] = via;
                }
            }
        }
    }
    delta
}

/// Publishes the next epoch's schedule from the merged `t` vector:
/// horizon `H[j] = min over i of t[i] + D[i][j]`, or the `u64::MAX`
/// free-run sentinel for everyone when at most one shard has anything
/// pending (the quiescence fast-path — with no second actor, no bound
/// binds before the sole active shard emits). Only shards with work
/// strictly below their horizon enter the runnable list; the rest are
/// skipped outright — their lazy utilization samples catch up with
/// identical values once they do run, so skipping is invisible.
fn publish_schedule(wq: &mut WorkQueue, delta: &[u64]) {
    let k = wq.t.len();
    let active = wq.t.iter().filter(|&&ti| ti != u64::MAX).count();
    wq.runnable.clear();
    wq.next = 0;
    for j in 0..k {
        let horizon = if active > 1 {
            (0..k)
                .map(|i| wq.t[i].saturating_add(delta[i * k + j]))
                .min()
                .expect("at least one shard")
        } else {
            u64::MAX
        };
        wq.horizons[j] = horizon;
        if wq.t[j] < horizon {
            wq.runnable.push(j as u32);
        }
    }
}

/// The single scope used by centralized routes, if any (mirrors the
/// single-threaded driver's rule).
fn central_scope(long: &Route, short: &Route) -> Option<Scope> {
    match (long, short) {
        (Route::Central(a), Route::Central(b)) => {
            assert_eq!(a, b, "central routes must share a scope");
            Some(*a)
        }
        (Route::Central(a), _) => Some(*a),
        (_, Route::Central(b)) => Some(*b),
        _ => None,
    }
}

/// One worker's claim loop. All workers run the same loop: claim the
/// next runnable shard under the work lock, run it to its horizon
/// under its own shard lock, report back under the work lock. The
/// worker whose report completes the epoch merges inline (still
/// holding the work lock) and publishes the next schedule, then loops
/// straight into claiming — so a sparse epoch (one runnable shard)
/// costs one work-lock round and one shard-lock round, with every
/// other worker parked on the condvar.
///
/// Lock order is always work → shard: the claim path drops the work
/// lock before locking its shard, and the done-report drops the shard
/// lock before re-taking the work lock; only the merge holds both,
/// and it is the sole holder of the work lock at that moment.
fn worker_loop(shared: &SharedState<'_>) {
    let mut guard = shared.work.lock().expect("work queue poisoned");
    loop {
        if guard.stopped {
            return;
        }
        if guard.next < guard.runnable.len() {
            let id = guard.runnable[guard.next] as usize;
            guard.next += 1;
            guard.inflight += 1;
            let horizon = guard.horizons[id];
            drop(guard);
            let (next_micros, unfinished, outbox_full) = {
                let mut shard = shared.shards[id].lock().expect("shard poisoned");
                if horizon == u64::MAX {
                    shard.run_free();
                } else {
                    shard.run_until(SimTime::from_micros(horizon));
                }
                // Keep the outbox a sorted stream for the k-way merge.
                // Under constant delays it already is (pdqsort detects
                // the run in O(n)); topology delays can reorder.
                shard
                    .outbox
                    .sort_unstable_by_key(|env| (env.at.as_micros(), env.seq));
                (
                    shard
                        .engine
                        .peek_time()
                        .map_or(u64::MAX, SimTime::as_micros),
                    shard.unfinished_home,
                    !shard.outbox.is_empty(),
                )
            };
            guard = shared.work.lock().expect("work queue poisoned");
            let wq = &mut *guard;
            wq.t[id] = next_micros;
            wq.total_unfinished += unfinished;
            wq.total_unfinished -= wq.unfinished[id];
            wq.unfinished[id] = unfinished;
            wq.outbox_full[id] = outbox_full;
            wq.inflight -= 1;
            if wq.inflight == 0 && wq.next == wq.runnable.len() {
                merge_epoch(shared, wq);
                if wq.stopped {
                    shared.available.notify_all();
                    return;
                }
                // Waking peers is a throughput heuristic, never a
                // correctness requirement: this worker claims from the
                // fresh schedule itself on the next loop iteration.
                let wake = shared
                    .wake_cap
                    .min(wq.parked)
                    .min(wq.runnable.len().saturating_sub(1));
                for _ in 0..wake {
                    shared.available.notify_one();
                }
            }
        } else {
            guard.parked += 1;
            guard = shared.available.wait(guard).expect("work queue poisoned");
            guard.parked -= 1;
        }
    }
}

/// The zero-sort merge core: drains the per-source outbox `streams`
/// (each already sorted by `(firing time, send sequence)`) into the
/// per-destination `inboxes` in global `(firing time, source shard,
/// send sequence)` order — exactly what concatenating every stream and
/// sorting by that key would produce, without sorting or allocating.
/// `cursors[src]` must be zeroed for every non-empty stream. Returns
/// the number of envelopes moved.
///
/// Linear argmin over the stream heads: k is small (≤ tens), so this
/// beats a binary heap and keeps the order trivially equal to the sort
/// key. Consumed slots are back-filled with an inert placeholder
/// instead of shifting the stream.
fn kway_merge_streams(
    streams: &mut [Vec<Envelope>],
    cursors: &mut [usize],
    inboxes: &mut [Vec<Envelope>],
) -> u64 {
    let mut moved = 0u64;
    loop {
        let mut best: Option<(usize, (u64, u32, u64))> = None;
        for (src, stream) in streams.iter().enumerate() {
            if let Some(env) = stream.get(cursors[src]) {
                let key = (env.at.as_micros(), env.src, env.seq);
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((src, key));
                }
            }
        }
        let Some((src, _)) = best else { break };
        let env = std::mem::replace(
            &mut streams[src][cursors[src]],
            Envelope {
                at: SimTime::ZERO,
                dest: 0,
                src: 0,
                seq: 0,
                msg: WireMsg::Ev(SEvent::TaskDone { job: JobId(0) }),
            },
        );
        cursors[src] += 1;
        moved += 1;
        inboxes[env.dest as usize].push(env);
    }
    moved
}

/// The epoch merge, run inline by whichever worker finished the epoch
/// (the work lock is held throughout). K-way-merges the sorted outbox
/// streams in `(firing time, source shard, send sequence)` order —
/// exactly the order the old concat-and-sort produced, so per-inbox
/// envelope order is unchanged — injects them directly into the
/// destination engines, then publishes the next schedule (or stops).
/// Epochs that moved no envelopes skip the merge machinery entirely,
/// which is the common case for sparse workloads.
fn merge_epoch(shared: &SharedState<'_>, wq: &mut WorkQueue) {
    if wq.total_unfinished == 0 {
        wq.stopped = true;
        return;
    }
    let k = wq.t.len();
    if wq.runnable.iter().any(|&id| wq.outbox_full[id as usize]) {
        for r in 0..wq.runnable.len() {
            let id = wq.runnable[r] as usize;
            if !wq.outbox_full[id] {
                continue;
            }
            wq.outbox_full[id] = false;
            let mut shard = shared.shards[id].lock().expect("shard poisoned");
            debug_assert!(wq.streams[id].is_empty(), "stale merge stream");
            std::mem::swap(&mut wq.streams[id], &mut shard.outbox);
            wq.cursors[id] = 0;
        }
        wq.merge_envelopes += kway_merge_streams(&mut wq.streams, &mut wq.cursors, &mut wq.inboxes);
        for dest in 0..k {
            if wq.inboxes[dest].is_empty() {
                continue;
            }
            let mut shard = shared.shards[dest].lock().expect("shard poisoned");
            let mut inbox = std::mem::take(&mut wq.inboxes[dest]);
            shard.inject(&mut inbox);
            // Hand the drained Vec back so the next epoch reuses its
            // capacity, and re-peek: injected envelopes may precede
            // the engine's previous head.
            wq.inboxes[dest] = inbox;
            wq.t[dest] = shard
                .engine
                .peek_time()
                .map_or(u64::MAX, SimTime::as_micros);
        }
        for s in &mut wq.streams {
            s.clear();
        }
    }
    let base = wq.t.iter().copied().min().expect("at least one shard");
    assert!(
        base != u64::MAX,
        "event queues drained with {} unfinished jobs",
        wq.total_unfinished
    );
    wq.epochs += 1;
    wq.span_accum += base.saturating_sub(wq.last_base);
    wq.last_base = base;
    publish_schedule(wq, &shared.delta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Centralized, Hawk, Sparrow, SplitCluster};
    use hawk_workload::Job;

    #[test]
    fn shard_map_ranges_partition_every_cluster() {
        for nodes in [1usize, 2, 3, 7, 10, 100, 101] {
            for shards in [1usize, 2, 3, 4, 7, 16, 200] {
                let map = ShardMap::new(nodes, shards);
                assert!(map.shards >= 1 && map.shards <= nodes.max(1));
                let mut next = 0u32;
                for s in 0..map.shards {
                    let (start, end) = map.range(s);
                    assert_eq!(start, next, "nodes={nodes} shards={shards} s={s}");
                    assert!(end > start, "empty shard: nodes={nodes} shards={shards}");
                    for id in start..end {
                        assert_eq!(
                            map.owner(ServerId(id)),
                            s,
                            "nodes={nodes} shards={shards} id={id}"
                        );
                    }
                    next = end;
                }
                assert_eq!(next as usize, nodes);
            }
        }
    }

    /// Exhaustive rack-alignment partition math: with `align > 1` no
    /// alignment unit (rack or pod) is ever split across a shard
    /// boundary — every boundary except the cluster end is a multiple
    /// of `align` — the ranges still tile the cluster exactly, whole
    /// units are dealt as evenly as possible (unit counts differ by at
    /// most one), and the trailing partial unit (the remainder rack)
    /// stays glued to the last shard.
    #[test]
    fn aligned_shard_map_never_splits_a_unit() {
        for nodes in [1usize, 4, 15, 16, 17, 63, 64, 65, 100, 1000, 1001] {
            for shards in [1usize, 2, 3, 4, 7, 16] {
                for align in [1usize, 4, 16, 128] {
                    let map = ShardMap::aligned(nodes, shards, align);
                    let ctx = format!("nodes={nodes} shards={shards} align={align}");
                    assert!(map.shards >= 1, "{ctx}");
                    assert!(map.shards <= nodes.max(1).div_ceil(align), "{ctx}");
                    let mut next = 0u32;
                    let mut unit_counts = Vec::new();
                    for s in 0..map.shards {
                        let (start, end) = map.range(s);
                        assert_eq!(start, next, "{ctx} s={s}: ranges must tile");
                        assert!(end > start, "{ctx} s={s}: empty shard");
                        assert_eq!(
                            start as usize % align,
                            0,
                            "{ctx} s={s}: start splits a unit"
                        );
                        if (end as usize) < nodes {
                            assert_eq!(
                                end as usize % align,
                                0,
                                "{ctx} s={s}: boundary splits a unit"
                            );
                        }
                        unit_counts.push((end as usize - start as usize).div_ceil(align));
                        for id in start..end {
                            assert_eq!(map.owner(ServerId(id)), s, "{ctx} id={id}");
                        }
                        next = end;
                    }
                    assert_eq!(next as usize, nodes, "{ctx}: ranges must cover");
                    let lo = unit_counts.iter().min().unwrap();
                    let hi = unit_counts.iter().max().unwrap();
                    assert!(hi - lo <= 1, "{ctx}: uneven deal {unit_counts:?}");
                }
            }
        }
    }

    /// The alignment-unit picker prefers the coarsest geometry that
    /// still gives every shard at least one block: pods, then racks,
    /// then single servers.
    #[test]
    fn pick_align_prefers_pods_then_racks() {
        let geo = RackGeometry {
            hosts_per_rack: 16,
            racks_per_pod: 8,
        };
        // 1024 hosts = 8 pods: enough pods for 4 shards.
        assert_eq!(ShardMap::pick_align(1024, 4, Some(geo)), 128);
        // But not for 16 shards; 64 racks are plenty.
        assert_eq!(ShardMap::pick_align(1024, 16, Some(geo)), 16);
        // 48 hosts = 3 racks < 4 shards: degenerate to single servers.
        assert_eq!(ShardMap::pick_align(48, 4, Some(geo)), 1);
        // No geometry: always single servers.
        assert_eq!(ShardMap::pick_align(1024, 4, None), 1);
    }

    fn env(at: u64, src: u32, seq: u64, dest: u32) -> Envelope {
        Envelope {
            at: SimTime::from_micros(at),
            dest,
            src,
            seq,
            msg: WireMsg::Ev(SEvent::TaskDone { job: JobId(0) }),
        }
    }

    proptest::proptest! {
        /// The zero-sort k-way merge against its model: concatenating
        /// every outbox stream and sorting by `(firing time, source
        /// shard, send sequence)` must route exactly the same envelopes
        /// to each destination inbox, in exactly the same order.
        #[test]
        fn kway_merge_matches_sort_model(
            raw in proptest::collection::vec(
                proptest::collection::vec((0u64..200, 0u32..5), 0..40),
                1..6,
            ),
        ) {
            let k = raw.len() as u32;
            let mut streams: Vec<Vec<Envelope>> = raw
                .iter()
                .enumerate()
                .map(|(src, sends)| {
                    // seq is assigned in send order, then the outbox is
                    // sorted by (at, seq) — exactly what a shard does.
                    let mut stream: Vec<Envelope> = sends
                        .iter()
                        .enumerate()
                        .map(|(i, &(at, dest))| env(at, src as u32, i as u64, dest % k))
                        .collect();
                    stream.sort_unstable_by_key(|e| (e.at.as_micros(), e.seq));
                    stream
                })
                .collect();
            let mut model: Vec<(u64, u32, u64, u32)> = streams
                .iter()
                .flatten()
                .map(|e| (e.at.as_micros(), e.src, e.seq, e.dest))
                .collect();
            model.sort_unstable();
            let mut model_inboxes: Vec<Vec<(u64, u32, u64)>> = vec![Vec::new(); k as usize];
            for (at, src, seq, dest) in &model {
                model_inboxes[*dest as usize].push((*at, *src, *seq));
            }

            let mut cursors = vec![0usize; k as usize];
            let mut inboxes: Vec<Vec<Envelope>> = (0..k).map(|_| Vec::new()).collect();
            let moved = kway_merge_streams(&mut streams, &mut cursors, &mut inboxes);

            proptest::prop_assert_eq!(moved as usize, model.len());
            for dest in 0..k as usize {
                let got: Vec<(u64, u32, u64)> = inboxes[dest]
                    .iter()
                    .map(|e| (e.at.as_micros(), e.src, e.seq))
                    .collect();
                proptest::prop_assert_eq!(&got, &model_inboxes[dest], "dest {}", dest);
            }
        }
    }

    fn tiny_trace(jobs: Vec<(u64, Vec<u64>)>) -> Trace {
        let jobs = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (at, tasks))| Job {
                id: JobId(i as u32),
                submission: SimTime::from_secs(at),
                tasks: tasks.into_iter().map(SimDuration::from_secs).collect(),
                generated_class: None,
            })
            .collect();
        Trace::new(jobs).unwrap()
    }

    fn run_sharded(
        trace: &Trace,
        scheduler: Arc<dyn Scheduler>,
        nodes: usize,
        shards: usize,
        workers: usize,
    ) -> MetricsReport {
        let sim = SimConfig {
            nodes,
            shards,
            ..SimConfig::default()
        };
        ShardedDriver::new(trace, scheduler, &sim)
            .with_workers(workers)
            .run()
    }

    #[test]
    fn all_jobs_complete_under_every_scheduler_and_shard_count() {
        let trace = tiny_trace(vec![
            (0, vec![5; 8]),
            (1, vec![2000; 6]),
            (2, vec![3, 4, 5]),
            (4, vec![1500, 1600]),
            (6, vec![1; 10]),
        ]);
        let schedulers: Vec<Arc<dyn Scheduler>> = vec![
            Arc::new(Hawk::new(0.25)),
            Arc::new(Sparrow::new()),
            Arc::new(Centralized::new()),
            Arc::new(SplitCluster::new(0.25)),
        ];
        for scheduler in schedulers {
            for shards in [1, 2, 3, 4] {
                let name = scheduler.name();
                let report = run_sharded(&trace, Arc::clone(&scheduler), 8, shards, 2);
                assert_eq!(report.results.len(), 5, "{name} shards={shards}");
                for r in &report.results {
                    assert!(r.completion >= r.submission, "{name} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let trace = tiny_trace(vec![
            (0, vec![5; 12]),
            (0, vec![2_000; 4]),
            (1, vec![10, 20, 30]),
            (3, vec![1_800, 1_900]),
            (5, vec![2; 16]),
        ]);
        let hawk: Arc<dyn Scheduler> = Arc::new(Hawk::new(0.25));
        let one = run_sharded(&trace, Arc::clone(&hawk), 12, 4, 1);
        let four = run_sharded(&trace, hawk, 12, 4, 4);
        assert_eq!(one.results, four.results);
        assert_eq!(one.events, four.events);
        assert_eq!(one.steals, four.steals);
        assert_eq!(one.utilization_samples, four.utilization_samples);
    }

    #[test]
    fn sharded_run_is_self_deterministic() {
        let trace = tiny_trace(vec![
            (0, vec![5_000u64; 8]),
            (1, vec![20; 4]),
            (2, vec![20; 4]),
            (3, vec![20; 4]),
        ]);
        let hawk: Arc<dyn Scheduler> = Arc::new(Hawk::new(0.2));
        let a = run_sharded(&trace, Arc::clone(&hawk), 10, 3, 2);
        let b = run_sharded(&trace, hawk, 10, 3, 2);
        assert_eq!(a.results, b.results);
        assert_eq!(a.events, b.events);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn remote_steals_rescue_blocked_shorts_across_shards() {
        // The head-of-line scenario from the driver tests, but sharded
        // so the short-partition servers (ids 8–9, last shard) must
        // steal from general-partition victims in other shards.
        let mut jobs = vec![(0, vec![5_000u64; 8])];
        for i in 0..5 {
            jobs.push((1 + i, vec![20u64; 4]));
        }
        let trace = tiny_trace(jobs);
        let report = run_sharded(&trace, Arc::new(Hawk::new(0.2)), 10, 4, 2);
        let worst_short = report.results[1..]
            .iter()
            .map(|r| r.runtime().as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(
            worst_short < 1_000.0,
            "cross-shard stealing should rescue shorts: {worst_short}"
        );
        assert!(report.steals > 0);
    }

    #[test]
    fn churn_under_sharding_keeps_every_job_completing() {
        use hawk_workload::scenario::DynamicsScript;
        let mut jobs = vec![(0, vec![3_000u64; 6])];
        for i in 0..6 {
            jobs.push((1 + i, vec![20u64; 4]));
        }
        let trace = tiny_trace(jobs);
        let script = DynamicsScript::rolling(
            &[0, 1, 2],
            SimTime::from_secs(5),
            SimDuration::from_secs(40),
            SimDuration::from_secs(20),
            8,
        );
        let sim = SimConfig {
            nodes: 10,
            shards: 3,
            dynamics: script,
            ..SimConfig::default()
        };
        let report = ShardedDriver::new(&trace, Arc::new(Hawk::new(0.2)), &sim)
            .with_workers(3)
            .run();
        assert_eq!(report.results.len(), trace.len());
        for r in &report.results {
            assert!(r.completion >= r.submission);
        }
    }

    #[test]
    fn worker_budget_env_override_wins() {
        // Serialize against other env-reading tests via a named lock.
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("HAWK_WORKER_BUDGET", "3");
        assert_eq!(worker_budget(), 3);
        std::env::set_var("HAWK_WORKER_BUDGET", "0");
        assert_eq!(worker_budget(), 1, "zero clamps to one worker");
        std::env::set_var("HAWK_WORKER_BUDGET", "nonsense");
        let fallback = worker_budget();
        assert!(fallback >= 1);
        std::env::remove_var("HAWK_WORKER_BUDGET");
    }

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn shards_clamp_to_node_count() {
        let trace = tiny_trace(vec![(0, vec![10, 10])]);
        let sim = SimConfig {
            nodes: 2,
            shards: 64,
            ..SimConfig::default()
        };
        let driver = ShardedDriver::new(&trace, Arc::new(Sparrow::new()), &sim);
        assert_eq!(driver.shard_count(), 2);
        let report = driver.run();
        assert_eq!(report.results.len(), 1);
    }
}
