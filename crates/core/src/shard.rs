//! Sharded parallel driver: conservative discrete-event simulation for
//! 100k+-node cells.
//!
//! [`ShardedDriver`] partitions the cluster into `K` contiguous shards.
//! Each shard owns a slice of servers and runs its own [`Engine`], RNG
//! streams, recycled buffers and topology instance; shards advance in
//! lock-step *epochs* bounded by a conservative lookahead horizon and
//! exchange messages only at epoch barriers, through a deterministic
//! merge. The result is deterministic for a fixed shard count `K`
//! regardless of how many OS threads execute the shards — worker count
//! is a pure throughput knob.
//!
//! # Synchronization contract
//!
//! The lookahead Δ is [`TopologySpec::min_message_delay`]: no message
//! between any two endpoints is ever cheaper than Δ. Each epoch:
//!
//! 1. every shard processes its local events strictly below the shared
//!    horizon `H`, buffering cross-shard messages in an outbox;
//! 2. at the barrier, one worker merges all outboxes, sorts the
//!    envelopes by `(firing time, source shard, send sequence)` — a
//!    total order independent of thread interleaving — and routes them
//!    to the destination inboxes;
//! 3. the next horizon is `H' = base + Δ` where `base` is the minimum
//!    over all pending events and in-flight envelopes.
//!
//! An event processed at `t < H` satisfies `t ≥ base`, so any message it
//! sends fires at `t + δ ≥ base + Δ = H'` — never inside the receiving
//! shard's processed past. Inbox injection therefore uses
//! [`Engine::try_schedule_at`], which turns any violation of this
//! argument into a hard error in **both** build profiles instead of the
//! release-mode clamp that would silently reorder causality.
//!
//! # Shadow clusters
//!
//! Every shard holds a *full-size* [`Cluster`] and replays the complete
//! dynamics script, but only ever enqueues work on the servers it owns.
//! Global server ids therefore need no translation, liveness-aware
//! placement (`PlacementView`, victim filters) sees correct membership
//! everywhere, and non-owned servers simply look idle. The built-in
//! policies sample placement targets randomly, so an idle-looking
//! remote server is indistinguishable from a real one; a future
//! depth-aware policy would need shard-aware load views.
//!
//! # Divergences from the single-threaded [`Driver`]
//!
//! `shards = 1` run through [`ShardedDriver`] is event-for-event
//! identical to [`Driver`] *except* for the bookkeeping-message timing
//! below, which is why [`crate::Experiment::run`] routes `shards <= 1`
//! to [`Driver`] (byte-identical to every pinned golden digest) and
//! `K > 1` here. For `K > 1` the simulated system is the same, but:
//!
//! * task-completion bookkeeping travels server → scheduler as a
//!   message, so a job's recorded completion time is one network delay
//!   after its last task finished;
//! * relocation off a failed server detours through the deciding
//!   scheduler (central for tasks, the job's scheduler for probes)
//!   instead of moving point-to-point;
//! * an idle thief scans only shard-local victims synchronously and
//!   asks at most *one* remote victim per idle transition;
//! * each shard's topology instance tracks contention for the messages
//!   it sends, so contended fat-trees approximate global link state;
//! * per-shard RNG streams replace the global ones (split order below).
//!
//! Headline metrics stay within a few percent of the single-threaded
//! driver (the conformance suite pins a bound); digests are comparable
//! only between runs with the same `K`.
//!
//! [`Driver`]: crate::Driver
//! [`TopologySpec::min_message_delay`]: hawk_net::TopologySpec::min_message_delay

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use hawk_cluster::{Cluster, QueueEntry, ServerAction, ServerId, TaskSpec, UtilizationTracker};
use hawk_net::{Endpoint, NetworkStats, Topology};
use hawk_simcore::{BatchHandle, BatchPool, Engine, SimDuration, SimRng, SimTime};
use hawk_workload::classify::{Cutoff, JobEstimates};
use hawk_workload::scenario::NodeChange;
use hawk_workload::{JobClass, JobId, Trace};

use crate::centralized::CentralScheduler;
use crate::config::{Route, Scope, SimConfig};
use crate::metrics::{JobResult, MetricsReport};
use crate::scheduler::{PlacementView, Scheduler, StealSpec};

/// The number of simulation worker threads the process should use, the
/// budget the sharded driver and [`crate::Sweep`] divide between cells
/// and shards.
///
/// Defaults to [`std::thread::available_parallelism`]; the
/// `HAWK_WORKER_BUDGET` environment variable overrides it explicitly
/// (clamped to at least 1). The override exists both to pin CI runners
/// to a known width and to stop oversubscription when several
/// simulations share a machine.
pub fn worker_budget() -> usize {
    if let Ok(raw) = std::env::var("HAWK_WORKER_BUDGET") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Contiguous-range shard map: shard `s` owns a run of server ids, with
/// the first `nodes % shards` shards one server larger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardMap {
    nodes: usize,
    shards: usize,
}

impl ShardMap {
    fn new(nodes: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, nodes.max(1));
        ShardMap { nodes, shards }
    }

    /// Owned id range of shard `s` as `[start, end)`.
    fn range(&self, s: usize) -> (u32, u32) {
        let q = self.nodes / self.shards;
        let r = self.nodes % self.shards;
        let start = s * q + s.min(r);
        let len = q + usize::from(s < r);
        (start as u32, (start + len) as u32)
    }

    /// The shard owning server `id`.
    fn owner(&self, id: ServerId) -> usize {
        let q = self.nodes / self.shards;
        let r = self.nodes % self.shards;
        let idx = id.index();
        let wide = r * (q + 1);
        if idx < wide {
            idx / (q + 1)
        } else {
            r + (idx - wide) / q
        }
    }
}

/// A shard-local simulation event. Mirrors [`crate::driver::Event`] with
/// the cross-shard bookkeeping messages the single-threaded driver
/// performs as direct state access.
#[derive(Debug, Clone, Copy)]
enum SEvent {
    /// A job was submitted (scheduled only in its home shard).
    Arrival(JobId),
    /// A probe reached an owned server.
    Probe {
        server: ServerId,
        job: JobId,
        class: JobClass,
        bounces: u8,
    },
    /// A centrally-placed (or relocated) task reached an owned server.
    Task { server: ServerId, spec: TaskSpec },
    /// A server's task request reached the job's home shard.
    BindRequest { server: ServerId, job: JobId },
    /// The home shard's response reached the owned server.
    BindResponse {
        server: ServerId,
        task: Option<TaskSpec>,
    },
    /// The running task on an owned server completed.
    Finish { server: ServerId },
    /// Stolen entries reached an owned thief (handle into the shard's
    /// local batch pool; never crosses the wire as-is).
    Stolen {
        server: ServerId,
        batch: BatchHandle,
    },
    /// A remote thief asks the victim's owner for one steal scan.
    StealRequest { thief: ServerId, victim: ServerId },
    /// A distributed job's task finished; counts down at the home shard.
    TaskDone { job: JobId },
    /// A central job's task finished; shard 0 updates the waiting-time
    /// bookkeeping and the job's completion state in one message.
    CentralTaskDone { job: JobId, server: ServerId },
    /// A task drained off a failed server asks shard 0 for a new home.
    TaskRelocate { from: ServerId, spec: TaskSpec },
    /// A probe drained off a failed server asks the job's home shard to
    /// re-probe or abandon it.
    ProbeRelocate {
        from: ServerId,
        job: JobId,
        class: JobClass,
    },
    /// The centralized scheduler's serial queue reaches this job.
    CentralPlace(JobId),
    /// Scripted dynamics, replayed in every shard's shadow cluster.
    NodeDown(ServerId),
    /// Scripted dynamics, replayed in every shard's shadow cluster.
    NodeUp(ServerId),
    /// Periodic utilization snapshot (every shard samples its own slice).
    UtilSample,
}

/// A cross-shard message payload.
#[derive(Debug)]
enum WireMsg {
    /// An ordinary event for the destination shard's engine.
    Ev(SEvent),
    /// A remote steal's stolen group. The only steady-state allocation
    /// of the sharded driver: remote steals carry their entries in an
    /// owned `Vec` (local steals stay in the recycled batch pool).
    Stolen {
        thief: ServerId,
        entries: Vec<QueueEntry>,
    },
}

/// A cross-shard message in flight between epochs.
#[derive(Debug)]
struct Envelope {
    at: SimTime,
    dest: u32,
    src: u32,
    /// Per-source send sequence; `(at, src, seq)` totally orders all
    /// envelopes of a run independently of thread interleaving.
    seq: u64,
    msg: WireMsg,
}

/// Per-job dynamic state; only the entry in the job's *home* shard is
/// authoritative.
#[derive(Debug, Clone, Copy)]
struct JobRun {
    class: JobClass,
    next_task: u32,
    remaining: u32,
    completion: Option<SimTime>,
}

/// One raw utilization sample of a shard's owned slice.
#[derive(Debug, Clone, Copy)]
struct UtilSampleRaw {
    running: u32,
    down_running: u32,
    owned_down: u32,
}

/// Shared per-shard mailbox slots and the epoch synchronization state.
struct SharedState {
    slots: Vec<ShardSlot>,
    barrier: Barrier,
    /// Next horizon, in raw microseconds.
    horizon: AtomicU64,
    stop: AtomicBool,
    lookahead_micros: u64,
    /// Recycled merge buffer (only the barrier leader touches it).
    scratch: Mutex<Vec<Envelope>>,
}

#[derive(Default)]
struct ShardSlot {
    outbox: Mutex<Vec<Envelope>>,
    inbox: Mutex<Vec<Envelope>>,
    /// Firing time of the shard's next pending event in raw
    /// microseconds; `u64::MAX` when its queue is empty.
    next_micros: AtomicU64,
    unfinished: AtomicUsize,
}

/// One shard: a slice of owned servers with its own engine, shadow
/// cluster, RNG streams and recycled buffers.
struct Shard<'t> {
    id: usize,
    map: ShardMap,
    own_start: u32,
    own_end: u32,
    trace: &'t Trace,
    scheduler: Arc<dyn Scheduler>,
    estimates: Arc<JobEstimates>,
    engine: Engine<SEvent>,
    cluster: Cluster,
    jobs: Vec<JobRun>,
    /// Present only on shard 0, which owns all centralized decisions.
    central: Option<CentralScheduler>,
    steal_spec: Option<StealSpec>,
    probe_rng: SimRng,
    steal_rng: SimRng,
    scenario_rng: SimRng,
    cutoff: Cutoff,
    central_overhead: crate::config::CentralOverhead,
    util_interval: SimDuration,
    unfinished_home: usize,
    steals: u64,
    steal_attempts: u64,
    migrations: u64,
    abandons: u64,
    /// Owned servers currently out of service (shadow failures of other
    /// shards' servers are not counted here).
    owned_down: usize,
    samples: Vec<UtilSampleRaw>,
    drain_buf: Vec<QueueEntry>,
    victim_scratch: Vec<usize>,
    victim_buf: Vec<ServerId>,
    steal_buf: Vec<QueueEntry>,
    stolen_pool: BatchPool<QueueEntry>,
    probe_buf: Vec<ServerId>,
    place_buf: Vec<ServerId>,
    central_ready: SimTime,
    topology: Box<dyn Topology>,
    outbox: Vec<Envelope>,
    out_seq: u64,
}

impl<'t> Shard<'t> {
    fn owns(&self, server: ServerId) -> bool {
        (self.own_start..self.own_end).contains(&(server.0))
    }

    /// Home shard of a *distributed* job: jobs are dealt round-robin so
    /// scheduler-side work spreads evenly. Central jobs live on shard 0.
    fn distributed_home(&self, job: JobId) -> usize {
        job.index() % self.map.shards
    }

    fn scope_range(&self, scope: Scope) -> (u32, usize) {
        let p = self.cluster.partition();
        match scope {
            Scope::Whole => (0, p.total()),
            Scope::General => (0, p.general_count()),
            Scope::ShortReserved => (p.general_count() as u32, p.short_count()),
        }
    }

    /// Routes an event: scheduled directly when `dest` is this shard,
    /// buffered in the outbox for the epoch merge otherwise.
    fn send_ev(&mut self, delay: SimDuration, dest: usize, ev: SEvent) {
        let at = self.engine.now() + delay;
        if dest == self.id {
            self.engine.schedule_at(at, ev);
        } else {
            self.out_seq += 1;
            self.outbox.push(Envelope {
                at,
                dest: dest as u32,
                src: self.id as u32,
                seq: self.out_seq,
                msg: WireMsg::Ev(ev),
            });
        }
    }

    /// Commits one epoch's merged inbox into the engine. Every envelope
    /// must fire at or after the local clock — the epoch horizon
    /// guarantees it, and `try_schedule_at` makes any violation a hard
    /// error in both build profiles.
    fn inject(&mut self, inbox: &mut Vec<Envelope>) {
        for env in inbox.drain(..) {
            let result = match env.msg {
                WireMsg::Ev(ev) => self.engine.try_schedule_at(env.at, ev),
                WireMsg::Stolen { thief, mut entries } => {
                    let batch = self.stolen_pool.put(&mut entries);
                    self.engine.try_schedule_at(
                        env.at,
                        SEvent::Stolen {
                            server: thief,
                            batch,
                        },
                    )
                }
            };
            if let Err(err) = result {
                panic!(
                    "cross-shard event delivered in shard {}'s past \
                     (epoch-horizon violation): {err}",
                    self.id
                );
            }
        }
    }

    /// Processes every local event strictly below `horizon`.
    fn run_until(&mut self, horizon: SimTime) {
        while self.engine.peek_time().is_some_and(|t| t < horizon) {
            let (_, ev) = self.engine.pop().expect("peeked event vanished");
            self.dispatch(ev);
        }
    }

    fn dispatch(&mut self, event: SEvent) {
        match event {
            SEvent::Arrival(job) => self.on_job_arrival(job),
            SEvent::Probe {
                server,
                job,
                class,
                bounces,
            } => self.on_probe(server, job, class, bounces),
            SEvent::Task { server, spec } => {
                debug_assert!(self.owns(server));
                if self.cluster.is_down(server) {
                    self.relocate_task(server, spec);
                    return;
                }
                if let Some(action) = self.cluster.enqueue(server, QueueEntry::Task(spec)) {
                    self.on_action(server, action);
                }
            }
            SEvent::BindRequest { server, job } => self.on_bind_request(server, job),
            SEvent::BindResponse { server, task } => {
                debug_assert!(self.owns(server));
                let action = self.cluster.on_bind_response(server, task);
                self.on_action(server, action);
            }
            SEvent::Finish { server } => self.on_task_finish(server),
            SEvent::Stolen { server, batch } => self.on_stolen(server, batch),
            SEvent::StealRequest { thief, victim } => self.on_steal_request(thief, victim),
            SEvent::TaskDone { job } => self.on_task_done(job),
            SEvent::CentralTaskDone { job, server } => {
                let estimate = self.estimates.estimate(job);
                self.central
                    .as_mut()
                    .expect("central bookkeeping lives on shard 0")
                    .on_task_complete(server, estimate);
                self.on_task_done(job);
            }
            SEvent::TaskRelocate { from, spec } => self.on_task_relocate(from, spec),
            SEvent::ProbeRelocate { from, job, class } => self.on_probe_relocate(from, job, class),
            SEvent::CentralPlace(job) => self.place_centrally(job),
            SEvent::NodeDown(server) => self.on_node_down(server),
            SEvent::NodeUp(server) => {
                if self.cluster.revive_server(server) {
                    if self.owns(server) {
                        self.owned_down -= 1;
                    }
                    if let Some(central) = &mut self.central {
                        if server.index() < central.scope() {
                            central.revive(server);
                        }
                    }
                }
            }
            SEvent::UtilSample => {
                self.samples.push(UtilSampleRaw {
                    running: self.cluster.running_count() as u32,
                    down_running: self.cluster.down_running_count() as u32,
                    owned_down: self.owned_down as u32,
                });
                self.engine.schedule(self.util_interval, SEvent::UtilSample);
            }
        }
    }

    fn on_job_arrival(&mut self, job: JobId) {
        let spec = self.trace.job(job);
        let class = self.estimates.class(job, self.cutoff);
        self.jobs[job.index()].class = class;
        match self.scheduler.route(class) {
            Route::Central(_) => {
                debug_assert_eq!(self.id, 0, "central jobs are homed on shard 0");
                if self.central_overhead.is_free() {
                    self.place_centrally(job);
                } else {
                    let now = self.engine.now();
                    let ready =
                        self.central_ready.max(now) + self.central_overhead.cost(spec.num_tasks());
                    self.central_ready = ready;
                    self.engine.schedule_at(ready, SEvent::CentralPlace(job));
                }
            }
            Route::Distributed(scope) => {
                let (start, len) = self.scope_range(scope);
                let view = PlacementView::new(&self.cluster, start, len);
                self.scheduler.probe_targets_into(
                    &view,
                    spec.num_tasks(),
                    &mut self.probe_rng,
                    &mut self.probe_buf,
                );
                let now = self.engine.now();
                let src = Endpoint::Scheduler(job.0);
                let targets = std::mem::take(&mut self.probe_buf);
                for &server in &targets {
                    let delay = self.topology.delay(now, src, Endpoint::Server(server));
                    let dest = self.map.owner(server);
                    self.send_ev(
                        delay,
                        dest,
                        SEvent::Probe {
                            server,
                            job,
                            class,
                            bounces: 0,
                        },
                    );
                }
                self.probe_buf = targets;
            }
        }
    }

    fn on_probe(&mut self, server: ServerId, job: JobId, class: JobClass, bounces: u8) {
        debug_assert!(self.owns(server));
        if self.cluster.is_down(server) {
            self.relocate_probe(server, job, class);
            return;
        }
        if self
            .scheduler
            .bounce_probe(self.cluster.server(server), class, bounces)
        {
            let scope = match self.scheduler.route(class) {
                Route::Distributed(scope) => scope,
                Route::Central(_) => unreachable!("probes imply a distributed route"),
            };
            let (start, len) = self.scope_range(scope);
            let retry =
                PlacementView::new(&self.cluster, start, len).random_server(&mut self.probe_rng);
            let delay = self.topology.delay(
                self.engine.now(),
                Endpoint::Server(server),
                Endpoint::Server(retry),
            );
            let dest = self.map.owner(retry);
            self.send_ev(
                delay,
                dest,
                SEvent::Probe {
                    server: retry,
                    job,
                    class,
                    bounces: bounces + 1,
                },
            );
            return;
        }
        if let Some(action) = self
            .cluster
            .enqueue(server, QueueEntry::Probe { job, class })
        {
            self.on_action(server, action);
        }
    }

    /// Runs the §3.7 placement for `job` on shard 0 and sends the tasks
    /// to their owners.
    fn place_centrally(&mut self, job: JobId) {
        let spec = self.trace.job(job);
        let class = self.jobs[job.index()].class;
        let estimate = self.estimates.estimate(job);
        let central = self
            .central
            .as_mut()
            .expect("central route requires a central scheduler");
        central.assign_job_into(spec.num_tasks(), estimate, &mut self.place_buf);
        let now = self.engine.now();
        let placements = std::mem::take(&mut self.place_buf);
        for (i, &server) in placements.iter().enumerate() {
            let task = TaskSpec {
                job,
                duration: spec.tasks[i],
                estimate,
                class,
                task: i as u32,
                attempt: 0,
            };
            let delay = self
                .topology
                .delay(now, Endpoint::Central, Endpoint::Server(server));
            let dest = self.map.owner(server);
            self.send_ev(delay, dest, SEvent::Task { server, spec: task });
        }
        self.place_buf = placements;
    }

    /// A task stranded on a down server: ask shard 0's central scheduler
    /// for a new placement (one hop to the scheduler, one hop out — the
    /// single-threaded driver moves it point-to-point in one hop).
    fn relocate_task(&mut self, from: ServerId, spec: TaskSpec) {
        let delay =
            self.topology
                .delay(self.engine.now(), Endpoint::Server(from), Endpoint::Central);
        self.send_ev(delay, 0, SEvent::TaskRelocate { from, spec });
    }

    /// A probe stranded on a down server: its re-probe (or abandon)
    /// decision belongs to the job's home shard.
    fn relocate_probe(&mut self, from: ServerId, job: JobId, class: JobClass) {
        let home = self.distributed_home(job);
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Server(from),
            Endpoint::Scheduler(job.0),
        );
        self.send_ev(delay, home, SEvent::ProbeRelocate { from, job, class });
    }

    fn on_task_relocate(&mut self, from: ServerId, spec: TaskSpec) {
        let central = self
            .central
            .as_mut()
            .expect("directly-placed tasks imply a central scheduler");
        let target = central.least_loaded();
        assert!(
            !self.cluster.is_down(target),
            "central scope has no live servers to migrate a task to \
             (the dynamics script took down the entire scope)"
        );
        central.reassign(from, target, spec.estimate);
        self.migrations += 1;
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Central,
            Endpoint::Server(target),
        );
        let dest = self.map.owner(target);
        self.send_ev(
            delay,
            dest,
            SEvent::Task {
                server: target,
                spec,
            },
        );
    }

    fn on_probe_relocate(&mut self, from: ServerId, job: JobId, class: JobClass) {
        let launched = self.jobs[job.index()].next_task as usize;
        if launched >= self.trace.job(job).num_tasks() {
            self.abandons += 1;
            return;
        }
        self.migrations += 1;
        let scope = match self.scheduler.route(class) {
            Route::Distributed(scope) => scope,
            Route::Central(_) => unreachable!("probes imply a distributed route"),
        };
        let (start, len) = self.scope_range(scope);
        let target =
            PlacementView::new(&self.cluster, start, len).random_server(&mut self.scenario_rng);
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Server(from),
            Endpoint::Server(target),
        );
        let dest = self.map.owner(target);
        self.send_ev(
            delay,
            dest,
            SEvent::Probe {
                server: target,
                job,
                class,
                bounces: 0,
            },
        );
    }

    fn on_bind_request(&mut self, server: ServerId, job: JobId) {
        let delay = self.topology.delay(
            self.engine.now(),
            Endpoint::Scheduler(job.0),
            Endpoint::Server(server),
        );
        let estimate = self.estimates.estimate(job);
        let spec = self.trace.job(job);
        let run = &mut self.jobs[job.index()];
        let task = if (run.next_task as usize) < spec.num_tasks() {
            let idx = run.next_task as usize;
            run.next_task += 1;
            Some(TaskSpec {
                job,
                duration: spec.tasks[idx],
                estimate,
                class: run.class,
                task: idx as u32,
                attempt: 0,
            })
        } else {
            None // all tasks given out: cancel (§3.5)
        };
        let dest = self.map.owner(server);
        self.send_ev(delay, dest, SEvent::BindResponse { server, task });
    }

    fn on_task_finish(&mut self, server: ServerId) {
        debug_assert!(self.owns(server));
        let now = self.engine.now();
        let (spec, action) = self.cluster.on_task_finish(server);
        let job = spec.job;
        if matches!(self.scheduler.route(spec.class), Route::Central(_)) {
            // Central jobs are homed on shard 0, which also owns the
            // waiting-time bookkeeping: one message covers both.
            let delay = self
                .topology
                .delay(now, Endpoint::Server(server), Endpoint::Central);
            self.send_ev(delay, 0, SEvent::CentralTaskDone { job, server });
        } else {
            let delay =
                self.topology
                    .delay(now, Endpoint::Server(server), Endpoint::Scheduler(job.0));
            let home = self.distributed_home(job);
            self.send_ev(delay, home, SEvent::TaskDone { job });
        }
        self.on_action(server, action);
    }

    fn on_task_done(&mut self, job: JobId) {
        let run = &mut self.jobs[job.index()];
        run.remaining -= 1;
        if run.remaining == 0 {
            run.completion = Some(self.engine.now());
            self.unfinished_home -= 1;
        }
    }

    fn on_action(&mut self, server: ServerId, action: ServerAction) {
        match action {
            ServerAction::StartTask(spec) => {
                let occupancy = self.cluster.server(server).scale_duration(spec.duration);
                self.engine.schedule(occupancy, SEvent::Finish { server });
            }
            ServerAction::RequestBind { job } => {
                let delay = self.topology.delay(
                    self.engine.now(),
                    Endpoint::Server(server),
                    Endpoint::Scheduler(job.0),
                );
                let home = self.distributed_home(job);
                self.send_ev(delay, home, SEvent::BindRequest { server, job });
            }
            ServerAction::BecameIdle => self.try_steal(server),
        }
    }

    /// One steal attempt for an idle owned thief (§3.6). Victim draws
    /// use this shard's steal stream exactly like the single-threaded
    /// driver uses its global one; shard-local victims are scanned
    /// synchronously in pick order, and if none yields a group, the
    /// first remote victim (if any) gets a single asynchronous
    /// [`SEvent::StealRequest`] — at most one remote attempt per idle
    /// transition.
    fn try_steal(&mut self, thief: ServerId) {
        let Some(spec) = self.steal_spec else { return };
        if self.cluster.is_down(thief) {
            return;
        }
        self.steal_attempts += 1;
        let partition = self.cluster.partition();
        let granularity = spec.granularity;
        let mut victims = std::mem::take(&mut self.victim_buf);
        self.scheduler.pick_victims_into(
            &partition,
            thief,
            &mut self.steal_rng,
            &mut self.victim_scratch,
            &mut victims,
        );
        // The long-work index only covers owned servers faithfully (the
        // shadow slices never enqueue), so it can short-circuit local
        // scans but not the remote attempt.
        let local_scan = self.cluster.long_holder_count() > 0;
        debug_assert!(self.steal_buf.is_empty(), "stale steal batch");
        let mut robbed = None;
        let mut remote = None;
        for &victim in &victims {
            if !self.owns(victim) {
                if remote.is_none() {
                    remote = Some(victim);
                }
                continue;
            }
            if !local_scan || !self.cluster.holds_long_work(victim) {
                continue;
            }
            self.cluster.steal_from_with_into(
                victim,
                granularity,
                &mut self.steal_rng,
                &mut self.steal_buf,
            );
            if !self.steal_buf.is_empty() {
                robbed = Some(victim);
                break;
            }
        }
        self.victim_buf = victims;
        if let Some(victim) = robbed {
            self.steals += 1;
            let transfer = self.topology.steal_transfer(
                self.engine.now(),
                Endpoint::Server(victim),
                Endpoint::Server(thief),
            );
            if transfer.is_zero() {
                if let Some(action) = self.cluster.give_stolen_drain(thief, &mut self.steal_buf) {
                    self.on_action(thief, action);
                }
            } else {
                let batch = self.stolen_pool.put(&mut self.steal_buf);
                self.engine.schedule(
                    transfer,
                    SEvent::Stolen {
                        server: thief,
                        batch,
                    },
                );
            }
        } else if let Some(victim) = remote {
            let delay = self.topology.delay(
                self.engine.now(),
                Endpoint::Server(thief),
                Endpoint::Server(victim),
            );
            let dest = self.map.owner(victim);
            self.send_ev(delay, dest, SEvent::StealRequest { thief, victim });
        }
    }

    /// A remote thief's steal request against an owned victim. An empty
    /// scan sends no reply, like an unsuccessful local scan.
    fn on_steal_request(&mut self, thief: ServerId, victim: ServerId) {
        debug_assert!(self.owns(victim));
        let Some(spec) = self.steal_spec else { return };
        if self.cluster.is_down(victim) || !self.cluster.holds_long_work(victim) {
            return;
        }
        debug_assert!(self.steal_buf.is_empty(), "stale steal batch");
        self.cluster.steal_from_with_into(
            victim,
            spec.granularity,
            &mut self.steal_rng,
            &mut self.steal_buf,
        );
        if self.steal_buf.is_empty() {
            return;
        }
        self.steals += 1;
        let now = self.engine.now();
        let transfer =
            self.topology
                .steal_transfer(now, Endpoint::Server(victim), Endpoint::Server(thief));
        let delay = self
            .topology
            .delay(now, Endpoint::Server(victim), Endpoint::Server(thief))
            + transfer;
        let entries: Vec<QueueEntry> = self.steal_buf.drain(..).collect();
        self.out_seq += 1;
        self.outbox.push(Envelope {
            at: now + delay,
            dest: self.map.owner(thief) as u32,
            src: self.id as u32,
            seq: self.out_seq,
            msg: WireMsg::Stolen { thief, entries },
        });
    }

    fn on_stolen(&mut self, server: ServerId, batch: BatchHandle) {
        debug_assert!(self.owns(server));
        self.stolen_pool.take_into(batch, &mut self.steal_buf);
        if self.cluster.is_down(server) {
            let mut group = std::mem::take(&mut self.steal_buf);
            for entry in group.drain(..) {
                match entry {
                    QueueEntry::Task(spec) => self.relocate_task(server, spec),
                    QueueEntry::Probe { job, class } => self.relocate_probe(server, job, class),
                }
            }
            self.steal_buf = group;
            return;
        }
        if let Some(action) = self.cluster.give_stolen_drain(server, &mut self.steal_buf) {
            self.on_action(server, action);
        }
    }

    fn on_node_down(&mut self, server: ServerId) {
        debug_assert!(self.drain_buf.is_empty(), "stale drain buffer");
        let mut drained = std::mem::take(&mut self.drain_buf);
        if !self.cluster.fail_server(server, &mut drained) {
            self.drain_buf = drained;
            return; // already down: duplicate script entry
        }
        if self.owns(server) {
            self.owned_down += 1;
        } else {
            debug_assert!(drained.is_empty(), "shadow server held queue entries");
        }
        if let Some(central) = &mut self.central {
            if server.index() < central.scope() {
                central.fail(server);
            }
        }
        for entry in drained.drain(..) {
            match entry {
                QueueEntry::Task(spec) => self.relocate_task(server, spec),
                QueueEntry::Probe { job, class } => self.relocate_probe(server, job, class),
            }
        }
        self.drain_buf = drained;
    }
}

/// The sharded parallel driver. Construct with [`ShardedDriver::new`],
/// consume with [`ShardedDriver::run`]; see the module docs for the
/// synchronization contract and the divergences from [`crate::Driver`].
pub struct ShardedDriver<'t> {
    shards: Vec<Shard<'t>>,
    trace: &'t Trace,
    scheduler: Arc<dyn Scheduler>,
    /// Home shard of every job, by job index.
    homes: Vec<u32>,
    lookahead: SimDuration,
    workers: usize,
    nodes: usize,
    cutoff: Cutoff,
    util_interval: SimDuration,
}

impl<'t> ShardedDriver<'t> {
    /// Builds a sharded driver for `sim.shards` shards (clamped to the
    /// node count), defaulting the worker-thread count to
    /// `min(shards, worker_budget())`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (like [`crate::Driver`]) and
    /// when the topology's [`min_message_delay`] is zero — conservative
    /// parallel execution requires a positive lookahead.
    ///
    /// [`min_message_delay`]: hawk_net::TopologySpec::min_message_delay
    pub fn new(trace: &'t Trace, scheduler: Arc<dyn Scheduler>, sim: &SimConfig) -> Self {
        let map = ShardMap::new(sim.nodes, sim.shards);
        let shards = map.shards;
        let lookahead = sim.topology_spec().min_message_delay();
        assert!(
            lookahead > SimDuration::ZERO,
            "sharded execution requires a positive minimum network delay \
             (the lookahead of conservative parallel simulation)"
        );

        // RNG split order (frozen, see ARCHITECTURE.md): root →
        // estimate stream → per shard s in 0..K: (probe_s, steal_s,
        // scenario_s). The estimate stream splits first so estimates
        // match the single-threaded driver bit-for-bit.
        let mut root = SimRng::seed_from_u64(sim.seed);
        let mut estimate_rng = root.split();
        let mut shard_rngs: Vec<(SimRng, SimRng, SimRng)> = (0..shards)
            .map(|_| (root.split(), root.split(), root.split()))
            .collect();

        let estimates = Arc::new(match sim.misestimate {
            Some(range) => JobEstimates::misestimated(trace, range, &mut estimate_rng),
            None => JobEstimates::exact(trace),
        });

        let speeds = sim.speeds.resolve(sim.nodes);
        let long_route = scheduler.route(JobClass::Long);
        let short_route = scheduler.route(JobClass::Short);

        // Home assignment is computable up front: class (and therefore
        // route) depends only on the precomputed estimates.
        let mut homes = Vec::with_capacity(trace.len());
        for job in trace.jobs() {
            let class = estimates.class(job.id, sim.cutoff);
            let home = match scheduler.route(class) {
                Route::Central(_) => 0,
                Route::Distributed(_) => job.id.index() % shards,
            };
            homes.push(home as u32);
        }

        if let Some(max) = sim.dynamics.max_server() {
            assert!(
                (max as usize) < sim.nodes,
                "dynamics script touches server {max} but the cluster has {} servers",
                sim.nodes
            );
        }

        let max_tasks = trace
            .jobs()
            .iter()
            .map(|j| j.num_tasks())
            .max()
            .unwrap_or(0);

        let mut built = Vec::with_capacity(shards);
        for (s, rng_slot) in shard_rngs.iter_mut().enumerate() {
            let cluster = match &speeds {
                Some(speeds) => {
                    Cluster::with_speeds(sim.nodes, scheduler.short_partition_fraction(), speeds)
                }
                None => Cluster::new(sim.nodes, scheduler.short_partition_fraction()),
            };
            let partition = cluster.partition();
            for route in [long_route, short_route] {
                if let Route::Distributed(Scope::ShortReserved)
                | Route::Central(Scope::ShortReserved) = route
                {
                    assert!(
                        partition.short_count() > 0,
                        "route targets the short partition but none is reserved"
                    );
                }
            }
            // Centralized decisions (placement, waiting-time queue,
            // migration targets) all live on shard 0.
            let central = if s == 0 {
                central_scope(&long_route, &short_route).map(|scope| {
                    let len = match scope {
                        Scope::Whole => partition.total(),
                        Scope::General => partition.general_count(),
                        Scope::ShortReserved => {
                            unreachable!("central routes never target the short partition")
                        }
                    };
                    assert!(len > 0, "centralized route over an empty scope");
                    CentralScheduler::new(len)
                })
            } else {
                None
            };

            let mut engine = Engine::with_capacity(trace.len() * 2 / shards + 64);
            let mut unfinished_home = 0;
            for job in trace.jobs() {
                if homes[job.id.index()] as usize == s {
                    engine.schedule_at(job.submission, SEvent::Arrival(job.id));
                    unfinished_home += 1;
                }
            }
            // Every shard replays the full dynamics script so shadow
            // membership stays globally correct.
            for scripted in sim.dynamics.events() {
                let event = match scripted.change {
                    NodeChange::Down(server) => SEvent::NodeDown(ServerId(server)),
                    NodeChange::Up(server) => SEvent::NodeUp(ServerId(server)),
                };
                engine.schedule_at(scripted.at, event);
            }
            engine.schedule(sim.util_interval, SEvent::UtilSample);

            let jobs = trace
                .jobs()
                .iter()
                .map(|j| JobRun {
                    class: JobClass::Short, // finalized at arrival
                    next_task: 0,
                    remaining: j.num_tasks() as u32,
                    completion: None,
                })
                .collect();

            let (probe_rng, steal_rng, scenario_rng) = (
                std::mem::replace(&mut rng_slot.0, SimRng::seed_from_u64(0)),
                std::mem::replace(&mut rng_slot.1, SimRng::seed_from_u64(0)),
                std::mem::replace(&mut rng_slot.2, SimRng::seed_from_u64(0)),
            );
            let (own_start, own_end) = map.range(s);
            built.push(Shard {
                id: s,
                map,
                own_start,
                own_end,
                trace,
                scheduler: Arc::clone(&scheduler),
                estimates: Arc::clone(&estimates),
                engine,
                cluster,
                jobs,
                central,
                steal_spec: scheduler.steal(),
                probe_rng,
                steal_rng,
                scenario_rng,
                cutoff: sim.cutoff,
                central_overhead: sim.central_overhead,
                util_interval: sim.util_interval,
                unfinished_home,
                steals: 0,
                steal_attempts: 0,
                migrations: 0,
                abandons: 0,
                owned_down: 0,
                samples: Vec::with_capacity(256),
                drain_buf: Vec::with_capacity(4 * max_tasks + 64),
                victim_scratch: Vec::new(),
                victim_buf: Vec::new(),
                steal_buf: Vec::with_capacity(64),
                stolen_pool: BatchPool::new(),
                probe_buf: Vec::with_capacity(4 * max_tasks + 8),
                place_buf: Vec::with_capacity(max_tasks),
                central_ready: SimTime::ZERO,
                topology: sim.topology_spec().build(sim.nodes),
                outbox: Vec::new(),
                out_seq: 0,
            });
        }

        ShardedDriver {
            shards: built,
            trace,
            scheduler,
            homes,
            lookahead,
            workers: worker_budget().clamp(1, shards),
            nodes: sim.nodes,
            cutoff: sim.cutoff,
            util_interval: sim.util_interval,
        }
    }

    /// Overrides the number of OS worker threads (clamped to
    /// `1..=shards`). Results are identical for every worker count; the
    /// determinism suite pins it.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, self.shards.len());
        self
    }

    /// The number of shards this driver was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs the simulation to completion and reports merged metrics.
    ///
    /// # Panics
    ///
    /// Panics if every event queue drains before all jobs complete, or
    /// if a cross-shard message violates the epoch-horizon contract.
    pub fn run(mut self) -> MetricsReport {
        let shard_count = self.shards.len();
        let total_unfinished: usize = self.shards.iter().map(|s| s.unfinished_home).sum();
        if total_unfinished > 0 {
            let base = self
                .shards
                .iter()
                .filter_map(|s| s.engine.peek_time())
                .min()
                .expect("unfinished jobs but no pending events");
            let shared = SharedState {
                slots: (0..shard_count).map(|_| ShardSlot::default()).collect(),
                barrier: Barrier::new(self.workers),
                horizon: AtomicU64::new((base + self.lookahead).as_micros()),
                stop: AtomicBool::new(false),
                lookahead_micros: self.lookahead.as_micros(),
                scratch: Mutex::new(Vec::new()),
            };
            // Static shard → worker assignment: worker w runs shards
            // w, w + W, w + 2W, … — the merge order is independent of
            // the assignment, so any W yields identical results.
            let workers = self.workers;
            let mut lanes: Vec<Vec<Shard<'t>>> = (0..workers).map(|_| Vec::new()).collect();
            for shard in self.shards.drain(..) {
                lanes[shard.id % workers].push(shard);
            }
            let shared_ref = &shared;
            let mut finished: Vec<Shard<'t>> = Vec::with_capacity(shard_count);
            std::thread::scope(|scope| {
                let handles: Vec<_> = lanes
                    .into_iter()
                    .map(|mut lane| {
                        scope.spawn(move || {
                            worker_loop(&mut lane, shared_ref);
                            lane
                        })
                    })
                    .collect();
                for handle in handles {
                    finished.extend(handle.join().expect("shard worker panicked"));
                }
            });
            finished.sort_by_key(|s| s.id);
            self.shards = finished;
        }
        self.report()
    }

    fn report(self) -> MetricsReport {
        let cutoff = self.cutoff;
        let mut makespan = SimTime::ZERO;
        let mut results: Vec<JobResult> = Vec::with_capacity(self.trace.len());
        for job in self.trace.jobs() {
            let home = self.homes[job.id.index()] as usize;
            let run = &self.shards[home].jobs[job.id.index()];
            let Some(completion) = run.completion else {
                unreachable!("job {} unfinished at report time", job.id);
            };
            makespan = makespan.max(completion);
            results.push(JobResult {
                job: job.id,
                true_class: cutoff.classify(job.mean_task_duration()),
                scheduled_class: run.class,
                submission: job.submission,
                completion,
                num_tasks: job.num_tasks(),
            });
        }

        // Merge utilization: every shard samples on the same schedule,
        // so sample i exists in all shards (truncate defensively) and
        // the cluster-wide ratio is the summed numerator over the
        // summed usable capacity of the owned slices.
        let mut util = UtilizationTracker::new(self.util_interval);
        let sample_count = self
            .shards
            .iter()
            .map(|s| s.samples.len())
            .min()
            .unwrap_or(0);
        for i in 0..sample_count {
            let mut running = 0u64;
            let mut usable = 0u64;
            for shard in &self.shards {
                let sample = shard.samples[i];
                let own_len = (shard.own_end - shard.own_start) as u64;
                running += sample.running as u64;
                usable += own_len - sample.owned_down as u64 + sample.down_running as u64;
            }
            util.record(running as f64 / usable.max(1) as f64);
        }

        let mut network = NetworkStats::default();
        for shard in &self.shards {
            let stats = shard.topology.stats();
            network.rack_local_msgs += stats.rack_local_msgs;
            network.cross_rack_msgs += stats.cross_rack_msgs;
            network.cross_pod_msgs += stats.cross_pod_msgs;
            network.rack_local_steals += stats.rack_local_steals;
            network.steal_transfers += stats.steal_transfers;
        }

        MetricsReport {
            scheduler: self.scheduler.name(),
            nodes: self.nodes,
            results,
            median_utilization: util.median().unwrap_or(0.0),
            max_utilization: util.max().unwrap_or(0.0),
            utilization_samples: util.samples().to_vec(),
            makespan,
            events: self.shards.iter().map(|s| s.engine.processed()).sum(),
            steals: self.shards.iter().map(|s| s.steals).sum(),
            steal_attempts: self.shards.iter().map(|s| s.steal_attempts).sum(),
            migrations: self.shards.iter().map(|s| s.migrations).sum(),
            abandons: self.shards.iter().map(|s| s.abandons).sum(),
            network,
        }
    }
}

/// The single scope used by centralized routes, if any (mirrors the
/// single-threaded driver's rule).
fn central_scope(long: &Route, short: &Route) -> Option<Scope> {
    match (long, short) {
        (Route::Central(a), Route::Central(b)) => {
            assert_eq!(a, b, "central routes must share a scope");
            Some(*a)
        }
        (Route::Central(a), _) => Some(*a),
        (_, Route::Central(b)) => Some(*b),
        _ => None,
    }
}

/// One worker's epoch loop over its statically assigned shards.
fn worker_loop(lane: &mut [Shard<'_>], shared: &SharedState) {
    loop {
        shared.barrier.wait();
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let horizon = SimTime::from_micros(shared.horizon.load(Ordering::Acquire));
        for shard in lane.iter_mut() {
            let slot = &shared.slots[shard.id];
            let mut inbox = std::mem::take(&mut *slot.inbox.lock().expect("inbox poisoned"));
            shard.inject(&mut inbox);
            // Hand the drained Vec back so the merge reuses its capacity.
            *slot.inbox.lock().expect("inbox poisoned") = inbox;
            shard.run_until(horizon);
            {
                let mut out = slot.outbox.lock().expect("outbox poisoned");
                debug_assert!(out.is_empty(), "outbox not drained by the merge");
                std::mem::swap(&mut *out, &mut shard.outbox);
            }
            slot.next_micros.store(
                shard
                    .engine
                    .peek_time()
                    .map_or(u64::MAX, SimTime::as_micros),
                Ordering::Release,
            );
            slot.unfinished
                .store(shard.unfinished_home, Ordering::Release);
        }
        if shared.barrier.wait().is_leader() {
            merge(shared);
        }
    }
}

/// The barrier leader's epoch merge: collect every outbox, order the
/// envelopes by `(firing time, source shard, send sequence)`, route them
/// to the destination inboxes, and publish the next horizon (or stop).
fn merge(shared: &SharedState) {
    let mut scratch = shared.scratch.lock().expect("merge scratch poisoned");
    let mut unfinished = 0usize;
    let mut base = u64::MAX;
    for slot in &shared.slots {
        scratch.append(&mut slot.outbox.lock().expect("outbox poisoned"));
        unfinished += slot.unfinished.load(Ordering::Acquire);
        base = base.min(slot.next_micros.load(Ordering::Acquire));
    }
    if unfinished == 0 {
        shared.stop.store(true, Ordering::Release);
        return;
    }
    scratch.sort_unstable_by_key(|env| (env.at.as_micros(), env.src, env.seq));
    for env in scratch.drain(..) {
        base = base.min(env.at.as_micros());
        shared.slots[env.dest as usize]
            .inbox
            .lock()
            .expect("inbox poisoned")
            .push(env);
    }
    assert!(
        base != u64::MAX,
        "event queues drained with {unfinished} unfinished jobs"
    );
    shared
        .horizon
        .store(base + shared.lookahead_micros, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Centralized, Hawk, Sparrow, SplitCluster};
    use hawk_workload::Job;

    #[test]
    fn shard_map_ranges_partition_every_cluster() {
        for nodes in [1usize, 2, 3, 7, 10, 100, 101] {
            for shards in [1usize, 2, 3, 4, 7, 16, 200] {
                let map = ShardMap::new(nodes, shards);
                assert!(map.shards >= 1 && map.shards <= nodes.max(1));
                let mut next = 0u32;
                for s in 0..map.shards {
                    let (start, end) = map.range(s);
                    assert_eq!(start, next, "nodes={nodes} shards={shards} s={s}");
                    assert!(end > start, "empty shard: nodes={nodes} shards={shards}");
                    for id in start..end {
                        assert_eq!(
                            map.owner(ServerId(id)),
                            s,
                            "nodes={nodes} shards={shards} id={id}"
                        );
                    }
                    next = end;
                }
                assert_eq!(next as usize, nodes);
            }
        }
    }

    fn tiny_trace(jobs: Vec<(u64, Vec<u64>)>) -> Trace {
        let jobs = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (at, tasks))| Job {
                id: JobId(i as u32),
                submission: SimTime::from_secs(at),
                tasks: tasks.into_iter().map(SimDuration::from_secs).collect(),
                generated_class: None,
            })
            .collect();
        Trace::new(jobs).unwrap()
    }

    fn run_sharded(
        trace: &Trace,
        scheduler: Arc<dyn Scheduler>,
        nodes: usize,
        shards: usize,
        workers: usize,
    ) -> MetricsReport {
        let sim = SimConfig {
            nodes,
            shards,
            ..SimConfig::default()
        };
        ShardedDriver::new(trace, scheduler, &sim)
            .with_workers(workers)
            .run()
    }

    #[test]
    fn all_jobs_complete_under_every_scheduler_and_shard_count() {
        let trace = tiny_trace(vec![
            (0, vec![5; 8]),
            (1, vec![2000; 6]),
            (2, vec![3, 4, 5]),
            (4, vec![1500, 1600]),
            (6, vec![1; 10]),
        ]);
        let schedulers: Vec<Arc<dyn Scheduler>> = vec![
            Arc::new(Hawk::new(0.25)),
            Arc::new(Sparrow::new()),
            Arc::new(Centralized::new()),
            Arc::new(SplitCluster::new(0.25)),
        ];
        for scheduler in schedulers {
            for shards in [1, 2, 3, 4] {
                let name = scheduler.name();
                let report = run_sharded(&trace, Arc::clone(&scheduler), 8, shards, 2);
                assert_eq!(report.results.len(), 5, "{name} shards={shards}");
                for r in &report.results {
                    assert!(r.completion >= r.submission, "{name} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let trace = tiny_trace(vec![
            (0, vec![5; 12]),
            (0, vec![2_000; 4]),
            (1, vec![10, 20, 30]),
            (3, vec![1_800, 1_900]),
            (5, vec![2; 16]),
        ]);
        let hawk: Arc<dyn Scheduler> = Arc::new(Hawk::new(0.25));
        let one = run_sharded(&trace, Arc::clone(&hawk), 12, 4, 1);
        let four = run_sharded(&trace, hawk, 12, 4, 4);
        assert_eq!(one.results, four.results);
        assert_eq!(one.events, four.events);
        assert_eq!(one.steals, four.steals);
        assert_eq!(one.utilization_samples, four.utilization_samples);
    }

    #[test]
    fn sharded_run_is_self_deterministic() {
        let trace = tiny_trace(vec![
            (0, vec![5_000u64; 8]),
            (1, vec![20; 4]),
            (2, vec![20; 4]),
            (3, vec![20; 4]),
        ]);
        let hawk: Arc<dyn Scheduler> = Arc::new(Hawk::new(0.2));
        let a = run_sharded(&trace, Arc::clone(&hawk), 10, 3, 2);
        let b = run_sharded(&trace, hawk, 10, 3, 2);
        assert_eq!(a.results, b.results);
        assert_eq!(a.events, b.events);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn remote_steals_rescue_blocked_shorts_across_shards() {
        // The head-of-line scenario from the driver tests, but sharded
        // so the short-partition servers (ids 8–9, last shard) must
        // steal from general-partition victims in other shards.
        let mut jobs = vec![(0, vec![5_000u64; 8])];
        for i in 0..5 {
            jobs.push((1 + i, vec![20u64; 4]));
        }
        let trace = tiny_trace(jobs);
        let report = run_sharded(&trace, Arc::new(Hawk::new(0.2)), 10, 4, 2);
        let worst_short = report.results[1..]
            .iter()
            .map(|r| r.runtime().as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(
            worst_short < 1_000.0,
            "cross-shard stealing should rescue shorts: {worst_short}"
        );
        assert!(report.steals > 0);
    }

    #[test]
    fn churn_under_sharding_keeps_every_job_completing() {
        use hawk_workload::scenario::DynamicsScript;
        let mut jobs = vec![(0, vec![3_000u64; 6])];
        for i in 0..6 {
            jobs.push((1 + i, vec![20u64; 4]));
        }
        let trace = tiny_trace(jobs);
        let script = DynamicsScript::rolling(
            &[0, 1, 2],
            SimTime::from_secs(5),
            SimDuration::from_secs(40),
            SimDuration::from_secs(20),
            8,
        );
        let sim = SimConfig {
            nodes: 10,
            shards: 3,
            dynamics: script,
            ..SimConfig::default()
        };
        let report = ShardedDriver::new(&trace, Arc::new(Hawk::new(0.2)), &sim)
            .with_workers(3)
            .run();
        assert_eq!(report.results.len(), trace.len());
        for r in &report.results {
            assert!(r.completion >= r.submission);
        }
    }

    #[test]
    fn worker_budget_env_override_wins() {
        // Serialize against other env-reading tests via a named lock.
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("HAWK_WORKER_BUDGET", "3");
        assert_eq!(worker_budget(), 3);
        std::env::set_var("HAWK_WORKER_BUDGET", "0");
        assert_eq!(worker_budget(), 1, "zero clamps to one worker");
        std::env::set_var("HAWK_WORKER_BUDGET", "nonsense");
        let fallback = worker_budget();
        assert!(fallback >= 1);
        std::env::remove_var("HAWK_WORKER_BUDGET");
    }

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn shards_clamp_to_node_count() {
        let trace = tiny_trace(vec![(0, vec![10, 10])]);
        let sim = SimConfig {
            nodes: 2,
            shards: 64,
            ..SimConfig::default()
        };
        let driver = ShardedDriver::new(&trace, Arc::new(Sparrow::new()), &sim);
        assert_eq!(driver.shard_count(), 2);
        let report = driver.run();
        assert_eq!(report.results.len(), 1);
    }
}
