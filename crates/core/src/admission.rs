//! Admission control for serving mode: accept / defer / shed decisions
//! when offered load exceeds usable capacity.
//!
//! The policy is evaluated over tumbling *gate windows*: each window gets a
//! work budget of `usable_nodes × window × headroom` node-seconds (usable
//! nodes read from the scenario's [`DynamicsScript`] at the window's
//! start), and arrivals admit against it in submission order. Short jobs
//! are protected by default — they always admit (the paper's whole point
//! is short-job latency, §3.4), though their work still consumes budget so
//! that a short-heavy overload sheds longs. A long job that does not fit
//! is *deferred* to the start of the next window (retried in FIFO order
//! ahead of that window's fresh arrivals) up to
//! [`AdmissionPolicy::max_defer_windows`] times, then *shed*: it completes
//! instantly at its submission time with zero runtime and is counted in
//! [`AdmissionStats`], so queues stay bounded instead of growing without
//! limit.
//!
//! # Why a precomputed plan
//!
//! The whole plan is a pure function of the trace (arrival times, true
//! classes, task-seconds), the cluster size, the dynamics script, and the
//! policy — no RNG and no runtime feedback. That is deliberate: the sim
//! driver, the sharded driver, and both proto transports apply the *same*
//! [`AdmissionPlan`], so shed counts agree exactly per seed across
//! backends (asserted by `tests/backend_conformance.rs`), and rescheduling
//! a deferred arrival perturbs no RNG stream (job estimates are drawn at
//! driver construction, before any arrival fires). Capacity is the
//! *nominal* usable-node count — per-server speed profiles are ignored.

use std::collections::VecDeque;

use hawk_simcore::{SimDuration, SimTime};
use hawk_workload::classify::Cutoff;
use hawk_workload::scenario::{DynamicsScript, NodeChange};
use hawk_workload::{JobId, Trace};
use serde::Serialize;

use crate::metrics::AdmissionStats;

/// Configuration of the admission-control seam. `None` on
/// [`SimConfig::admission`](crate::SimConfig) (the default) disables
/// admission entirely — no plan is computed and runs are byte-identical
/// to the classic digests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AdmissionPolicy {
    /// Tumbling gate-window length over which offered work is compared to
    /// capacity.
    pub window: SimDuration,
    /// Fraction of nominal capacity (`usable_nodes × window`) admissible
    /// per window. `1.0` admits up to exactly full utilization.
    pub headroom: f64,
    /// How many window boundaries a non-fitting job may wait before it is
    /// shed. `0` sheds immediately on overflow.
    pub max_defer_windows: u32,
    /// When true (the default), short jobs always admit — overload is
    /// absorbed by deferring and shedding longs only.
    pub protect_short: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            window: SimDuration::from_secs(10),
            headroom: 1.0,
            max_defer_windows: 4,
            protect_short: true,
        }
    }
}

/// The planned fate of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admitted at its natural submission time.
    Admit,
    /// Admitted late: the arrival is replayed at `until` (always strictly
    /// after the job's submission).
    Defer {
        /// Start of the gate window that finally had budget.
        until: SimTime,
    },
    /// Rejected: the job completes instantly at submission with zero
    /// runtime and never schedules.
    Shed,
}

/// Per-job admission decisions for one run, precomputed from the trace —
/// see the module docs for why this is a pure upfront plan rather than a
/// runtime feedback loop.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    decisions: Vec<AdmissionDecision>,
    stats: AdmissionStats,
}

impl AdmissionPlan {
    /// Computes the plan for `trace` on a cluster of `nodes` servers whose
    /// usable count follows `dynamics`. Classes are *true* classes
    /// (`cutoff` over exact mean task durations), so every backend — with
    /// or without misestimation — derives the identical plan.
    pub fn compute(
        trace: &Trace,
        nodes: usize,
        cutoff: Cutoff,
        dynamics: &DynamicsScript,
        policy: AdmissionPolicy,
    ) -> AdmissionPlan {
        let window_micros = policy.window.as_micros().max(1);
        let mut decisions = vec![AdmissionDecision::Admit; trace.len()];

        // Usable-capacity trajectory, mirroring the cluster's down-bit
        // lifecycle (duplicate downs/ups are no-ops).
        let mut events: Vec<(SimTime, NodeChange)> =
            dynamics.events().iter().map(|e| (e.at, e.change)).collect();
        events.sort_by_key(|e| e.0);
        let mut next_event = 0usize;
        let mut down = vec![false; nodes];
        let mut usable = nodes as u64;
        let mut apply_until = |limit_micros: u64, down: &mut [bool], usable: &mut u64| {
            while next_event < events.len() && events[next_event].0.as_micros() <= limit_micros {
                match events[next_event].1 {
                    NodeChange::Down(s) => {
                        if let Some(bit) = down.get_mut(s as usize) {
                            if !*bit {
                                *bit = true;
                                *usable -= 1;
                            }
                        }
                    }
                    NodeChange::Up(s) => {
                        if let Some(bit) = down.get_mut(s as usize) {
                            if *bit {
                                *bit = false;
                                *usable += 1;
                            }
                        }
                    }
                }
                next_event += 1;
            }
        };
        let budget_of =
            |usable: u64| usable as f64 * (window_micros as f64 / 1e6) * policy.headroom;

        apply_until(0, &mut down, &mut usable);
        let mut window = 0u64;
        let mut budget = budget_of(usable);
        let mut admitted_work = 0.0f64;
        // Jobs waiting for a later window: (job, boundaries waited so far).
        let mut deferred: VecDeque<(JobId, u32)> = VecDeque::new();

        // Advances to the next gate window: refresh capacity and budget,
        // then retry the deferral queue in FIFO order ahead of the new
        // window's fresh arrivals.
        let mut open_next_window =
            |window: &mut u64,
             budget: &mut f64,
             admitted_work: &mut f64,
             deferred: &mut VecDeque<(JobId, u32)>,
             down: &mut [bool],
             usable: &mut u64,
             decisions: &mut [AdmissionDecision]| {
                *window += 1;
                let start = *window * window_micros;
                apply_until(start, down, usable);
                *budget = budget_of(*usable);
                *admitted_work = 0.0;
                for _ in 0..deferred.len() {
                    let (id, waited) = deferred.pop_front().expect("len-bounded loop");
                    let work = trace.job(id).task_seconds().as_secs_f64();
                    if *admitted_work + work <= *budget {
                        decisions[id.index()] = AdmissionDecision::Defer {
                            until: SimTime::from_micros(start),
                        };
                        *admitted_work += work;
                    } else if waited >= policy.max_defer_windows {
                        decisions[id.index()] = AdmissionDecision::Shed;
                    } else {
                        deferred.push_back((id, waited + 1));
                    }
                }
            };

        for job in trace.jobs() {
            let target = job.submission.as_micros() / window_micros;
            while window < target {
                open_next_window(
                    &mut window,
                    &mut budget,
                    &mut admitted_work,
                    &mut deferred,
                    &mut down,
                    &mut usable,
                    &mut decisions,
                );
            }
            let class = cutoff.classify(job.mean_task_duration());
            let work = job.task_seconds().as_secs_f64();
            if admitted_work + work <= budget || (policy.protect_short && class.is_short()) {
                admitted_work += work;
            } else if policy.max_defer_windows == 0 {
                decisions[job.id.index()] = AdmissionDecision::Shed;
            } else {
                deferred.push_back((job.id, 1));
            }
        }
        // Resolve stragglers past the last arrival; each round either
        // admits a job or advances its wait counter toward the shed
        // bound, so this terminates.
        while !deferred.is_empty() {
            open_next_window(
                &mut window,
                &mut budget,
                &mut admitted_work,
                &mut deferred,
                &mut down,
                &mut usable,
                &mut decisions,
            );
        }

        let mut stats = AdmissionStats::default();
        for job in trace.jobs() {
            let short = cutoff.classify(job.mean_task_duration()).is_short();
            match decisions[job.id.index()] {
                AdmissionDecision::Admit => {}
                AdmissionDecision::Defer { .. } => {
                    if short {
                        stats.deferrals_short += 1;
                    } else {
                        stats.deferrals_long += 1;
                    }
                }
                AdmissionDecision::Shed => {
                    if short {
                        stats.sheds_short += 1;
                    } else {
                        stats.sheds_long += 1;
                    }
                }
            }
        }
        AdmissionPlan { decisions, stats }
    }

    /// The planned fate of `job`.
    pub fn decision(&self, job: JobId) -> AdmissionDecision {
        self.decisions[job.index()]
    }

    /// Outcome counters, derived once from the plan (a job deferred
    /// across several windows still counts once).
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawk_workload::Job;

    const CUTOFF: Cutoff = Cutoff(SimDuration::from_secs(100));

    fn job(id: u32, at_secs: u64, tasks: &[u64]) -> Job {
        Job {
            id: JobId(id),
            submission: SimTime::from_secs(at_secs),
            tasks: tasks.iter().map(|&s| SimDuration::from_secs(s)).collect(),
            generated_class: None,
        }
    }

    fn policy(window_secs: u64, max_defer: u32) -> AdmissionPolicy {
        AdmissionPolicy {
            window: SimDuration::from_secs(window_secs),
            headroom: 1.0,
            max_defer_windows: max_defer,
            protect_short: true,
        }
    }

    fn plan(trace: &Trace, nodes: usize, policy: AdmissionPolicy) -> AdmissionPlan {
        AdmissionPlan::compute(trace, nodes, CUTOFF, &DynamicsScript::none(), policy)
    }

    #[test]
    fn underloaded_trace_admits_everything() {
        let trace = Trace::new(vec![job(0, 0, &[1]), job(1, 1, &[2]), job(2, 2, &[3])]).unwrap();
        let p = plan(&trace, 10, policy(10, 4));
        for id in 0..3 {
            assert_eq!(p.decision(JobId(id)), AdmissionDecision::Admit);
        }
        assert_eq!(p.stats(), AdmissionStats::default());
    }

    #[test]
    fn overflowing_long_defers_to_next_window() {
        // 1 node × 10 s window = 10 node-seconds of budget. The first
        // long fills it; the second must wait for the next window.
        let trace = Trace::new(vec![job(0, 0, &[1000]), job(1, 1, &[1000])]).unwrap();
        let p = plan(&trace, 100, policy(10, 4));
        assert_eq!(p.decision(JobId(0)), AdmissionDecision::Admit);
        assert_eq!(
            p.decision(JobId(1)),
            AdmissionDecision::Defer {
                until: SimTime::from_secs(10)
            }
        );
        assert_eq!(p.stats().deferrals_long, 1);
        assert_eq!(p.stats().sheds(), 0);
    }

    #[test]
    fn exhausted_deferrals_shed() {
        // Budget 10 node-s per window; job 0 can never fit alongside the
        // repeating arrivals, so after max_defer_windows it sheds.
        let jobs: Vec<Job> = (0..10).map(|i| job(i, i as u64, &[2000])).collect();
        let trace = Trace::new(jobs).unwrap();
        let p = plan(&trace, 200, policy(10, 2));
        let stats = p.stats();
        assert!(stats.sheds_long > 0, "expected sheds, got {stats:?}");
        assert_eq!(stats.sheds_short, 0);
        // Every decision resolved (no job left provisional).
        for j in trace.jobs() {
            if let AdmissionDecision::Defer { until } = p.decision(j.id) {
                assert!(until > j.submission);
            }
        }
    }

    #[test]
    fn shorts_are_protected_even_over_budget() {
        // Shorts (10 s tasks, under the 100 s cutoff) overflow the budget
        // but still admit; the long pays instead.
        let mut jobs: Vec<Job> = (0..30).map(|i| job(i, 0, &[10, 10, 10, 10])).collect();
        jobs.push(job(30, 0, &[5000]));
        let trace = Trace::new(jobs).unwrap();
        let p = plan(&trace, 50, policy(10, 0));
        for id in 0..30 {
            assert_eq!(p.decision(JobId(id)), AdmissionDecision::Admit);
        }
        assert_eq!(p.decision(JobId(30)), AdmissionDecision::Shed);
        assert_eq!(p.stats().sheds_short, 0);
        assert_eq!(p.stats().sheds_long, 1);
    }

    #[test]
    fn dynamics_shrink_the_budget() {
        // Two identical longs in consecutive windows; after the node-down
        // event halves capacity, the second no longer fits and sheds.
        let trace = Trace::new(vec![job(0, 0, &[19]), job(1, 10, &[19])]).unwrap();
        let dynamics = DynamicsScript::none().down_at(SimTime::from_secs(5), 1);
        let p = AdmissionPlan::compute(
            &trace,
            2,
            Cutoff(SimDuration::from_secs(1)),
            &dynamics,
            policy(10, 0),
        );
        assert_eq!(p.decision(JobId(0)), AdmissionDecision::Admit);
        assert_eq!(p.decision(JobId(1)), AdmissionDecision::Shed);
    }

    #[test]
    fn plan_is_deterministic() {
        let jobs: Vec<Job> = (0..50).map(|i| job(i, i as u64 / 3, &[200, 50])).collect();
        let trace = Trace::new(jobs).unwrap();
        let a = plan(&trace, 20, policy(5, 2));
        let b = plan(&trace, 20, policy(5, 2));
        for j in trace.jobs() {
            assert_eq!(a.decision(j.id), b.decision(j.id));
        }
        assert_eq!(a.stats(), b.stats());
    }
}
