//! Experiment entry points.

use hawk_workload::classify::JobEstimates;
use hawk_workload::Trace;

use crate::config::ExperimentConfig;
use crate::driver::Driver;
use crate::metrics::MetricsReport;

/// Runs one experiment cell: `trace` under `cfg`, to completion.
///
/// Deterministic: the same inputs produce bit-identical reports.
///
/// # Examples
///
/// ```
/// use hawk_core::{run_experiment, ExperimentConfig, SchedulerConfig, compare};
/// use hawk_workload::motivation::MotivationConfig;
/// use hawk_workload::JobClass;
///
/// let trace = MotivationConfig {
///     jobs: 30,
///     short_tasks: 4,
///     long_tasks: 16,
///     ..Default::default()
/// }
/// .generate(7);
///
/// let base = ExperimentConfig { nodes: 64, ..ExperimentConfig::default() };
/// let hawk = run_experiment(
///     &trace,
///     &ExperimentConfig { scheduler: SchedulerConfig::hawk(0.17), ..base.clone() },
/// );
/// let sparrow = run_experiment(
///     &trace,
///     &ExperimentConfig { scheduler: SchedulerConfig::sparrow(), ..base },
/// );
/// let cmp = compare(&hawk, &sparrow, JobClass::Short);
/// assert!(cmp.p50_ratio.is_some());
/// ```
pub fn run_experiment(trace: &Trace, cfg: &ExperimentConfig) -> MetricsReport {
    Driver::new(trace, cfg).run()
}

/// Like [`run_experiment`], but also returns the (possibly misestimated)
/// per-job estimates the scheduler used — handy for analyses that need to
/// know how jobs were classified during the run (§4.8).
pub fn run_experiment_with_estimates(
    trace: &Trace,
    cfg: &ExperimentConfig,
) -> (MetricsReport, JobEstimates) {
    use hawk_simcore::SimRng;
    // Reproduce the driver's estimate derivation (same seed stream).
    let mut root = SimRng::seed_from_u64(cfg.seed);
    let mut estimate_rng = root.split();
    let estimates = match cfg.misestimate {
        Some(range) => JobEstimates::misestimated(trace, range, &mut estimate_rng),
        None => JobEstimates::exact(trace),
    };
    (run_experiment(trace, cfg), estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use crate::metrics::compare;
    use hawk_workload::classify::MisestimateRange;
    use hawk_workload::motivation::MotivationConfig;
    use hawk_workload::JobClass;

    fn small_motivation() -> Trace {
        MotivationConfig {
            jobs: 60,
            short_tasks: 8,
            long_tasks: 30,
            ..Default::default()
        }
        .generate(3)
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_motivation();
        let cfg = ExperimentConfig {
            nodes: 128,
            scheduler: SchedulerConfig::hawk(0.17),
            ..ExperimentConfig::default()
        };
        let a = run_experiment(&trace, &cfg);
        let b = run_experiment(&trace, &cfg);
        assert_eq!(a.results, b.results);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_differ() {
        let trace = small_motivation();
        let base = ExperimentConfig {
            nodes: 128,
            scheduler: SchedulerConfig::sparrow(),
            ..ExperimentConfig::default()
        };
        let a = run_experiment(&trace, &base);
        let b = run_experiment(
            &trace,
            &ExperimentConfig {
                seed: base.seed + 1,
                ..base.clone()
            },
        );
        // Probe placement differs, so at least one runtime should differ.
        assert_ne!(a.results, b.results);
    }

    #[test]
    fn estimates_returned_match_run() {
        let trace = small_motivation();
        let cfg = ExperimentConfig {
            nodes: 128,
            scheduler: SchedulerConfig::hawk(0.17),
            misestimate: Some(MisestimateRange::symmetric(0.5)),
            ..ExperimentConfig::default()
        };
        let (report, estimates) = run_experiment_with_estimates(&trace, &cfg);
        for r in &report.results {
            assert_eq!(r.scheduled_class, estimates.class(r.job, cfg.cutoff));
        }
    }

    #[test]
    fn loaded_cluster_hawk_beats_sparrow_for_shorts() {
        // The paper's core claim, at miniature scale: a loaded
        // heterogeneous cluster where Sparrow's shorts queue behind longs.
        let trace = MotivationConfig {
            jobs: 150,
            short_tasks: 6,
            long_tasks: 40,
            mean_interarrival: hawk_simcore::SimDuration::from_secs(25),
            ..Default::default()
        }
        .generate(11);
        let base = ExperimentConfig {
            nodes: 150,
            ..ExperimentConfig::default()
        };
        let hawk = run_experiment(
            &trace,
            &ExperimentConfig {
                scheduler: SchedulerConfig::hawk(0.17),
                ..base.clone()
            },
        );
        let sparrow = run_experiment(
            &trace,
            &ExperimentConfig {
                scheduler: SchedulerConfig::sparrow(),
                ..base
            },
        );
        let cmp = compare(&hawk, &sparrow, JobClass::Short);
        let p90 = cmp.p90_ratio.expect("short jobs exist");
        assert!(
            p90 < 1.0,
            "Hawk should beat Sparrow for short jobs under load: p90 ratio {p90}"
        );
    }
}
