//! The fluent experiment API: one cell = a trace + a scheduler + the
//! simulation parameters.
//!
//! [`Experiment::builder`] is the primary entry point for running a
//! single cell; [`Sweep`](crate::Sweep) multiplies a builder over axes of
//! schedulers, cluster sizes, seeds and more, and runs the grid in
//! parallel. The pre-0.2 free functions [`run_experiment`] and
//! [`run_experiment_with_estimates`] remain as thin deprecated shims.
//!
//! # Examples
//!
//! ```
//! use hawk_core::{compare, Experiment};
//! use hawk_core::scheduler::{Hawk, Sparrow};
//! use hawk_workload::motivation::MotivationConfig;
//! use hawk_workload::JobClass;
//!
//! let trace = MotivationConfig {
//!     jobs: 30,
//!     short_tasks: 4,
//!     long_tasks: 16,
//!     ..Default::default()
//! }
//! .generate(7);
//!
//! let base = Experiment::builder().nodes(64).trace(trace);
//! let hawk = base.clone().scheduler(Hawk::new(0.17)).run();
//! let sparrow = base.scheduler(Sparrow::new()).run();
//! let cmp = compare(&hawk, &sparrow, JobClass::Short);
//! assert!(cmp.p50_ratio.is_some());
//! ```

use std::sync::Arc;

use hawk_cluster::NetworkModel;
use hawk_net::TopologySpec;
use hawk_simcore::SimDuration;
use hawk_workload::classify::{Cutoff, JobEstimates, MisestimateRange};
use hawk_workload::scenario::{DynamicsScript, ScenarioSpec, SpeedSpec};
use hawk_workload::{Trace, TraceSource};

use crate::config::{CentralOverhead, ExperimentConfig, SimConfig};
use crate::driver::Driver;
use crate::metrics::MetricsReport;
use crate::scheduler::Scheduler;
use crate::shard::{worker_budget, ShardedDriver};

/// Anything an [`ExperimentBuilder`] accepts as a trace: an owned or
/// shared [`Trace`] (borrowed traces are cloned once).
pub trait IntoTrace {
    /// Converts into a shared trace.
    fn into_trace(self) -> Arc<Trace>;
}

impl IntoTrace for Trace {
    fn into_trace(self) -> Arc<Trace> {
        Arc::new(self)
    }
}

impl IntoTrace for &Trace {
    fn into_trace(self) -> Arc<Trace> {
        Arc::new(self.clone())
    }
}

impl IntoTrace for Arc<Trace> {
    fn into_trace(self) -> Arc<Trace> {
        self
    }
}

impl IntoTrace for &Arc<Trace> {
    fn into_trace(self) -> Arc<Trace> {
        Arc::clone(self)
    }
}

/// One fully specified experiment cell, ready to run (or to be multiplied
/// into a [`Sweep`](crate::Sweep)).
#[derive(Clone)]
pub struct Experiment {
    trace: Arc<Trace>,
    scheduler: Arc<dyn Scheduler>,
    sim: SimConfig,
}

impl Experiment {
    /// Starts describing an experiment. The builder begins from the
    /// paper's defaults (1,500 nodes, Google cutoff, exact estimates,
    /// paper network model, free central decisions).
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// The trace this cell runs.
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }

    /// The scheduling policy.
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.scheduler
    }

    /// The policy-independent simulation parameters.
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// This cell with a different seed (cheap: trace and scheduler are
    /// shared).
    pub fn with_seed(&self, seed: u64) -> Experiment {
        let mut cell = self.clone();
        cell.sim.seed = seed;
        cell
    }

    /// Runs the cell to completion. Deterministic: the same cell produces
    /// bit-identical reports.
    ///
    /// `shards <= 1` (the default) runs the single-threaded [`Driver`];
    /// `shards > 1` runs the sharded parallel driver
    /// ([`crate::ShardedDriver`]) with up to
    /// [`worker_budget()`](crate::worker_budget) threads. Sharded results
    /// are deterministic per shard count but not digest-comparable
    /// across shard counts.
    pub fn run(&self) -> MetricsReport {
        self.run_with_workers(worker_budget())
    }

    /// Like [`Experiment::run`], with an explicit cap on the OS worker
    /// threads a sharded cell may use (ignored for `shards <= 1`; the
    /// worker count never changes results). [`crate::Sweep`] uses this
    /// to divide the machine between concurrent cells.
    pub fn run_with_workers(&self, workers: usize) -> MetricsReport {
        if self.sim.shards > 1 {
            ShardedDriver::new(&self.trace, Arc::clone(&self.scheduler), &self.sim)
                .with_workers(workers)
                .run()
        } else {
            Driver::with_scheduler(&self.trace, Arc::clone(&self.scheduler), &self.sim).run()
        }
    }

    /// Like [`Experiment::run`], but also returns the (possibly
    /// misestimated) per-job estimates the driver actually used (§4.8).
    pub fn run_with_estimates(&self) -> (MetricsReport, JobEstimates) {
        Driver::with_scheduler(&self.trace, Arc::clone(&self.scheduler), &self.sim)
            .run_with_estimates()
    }

    /// Runs the cell on an explicit execution [`Backend`]. `run_on(&SimBackend)`
    /// is exactly [`Experiment::run`]; other backends (e.g. the real-time
    /// prototype in `hawk-proto`) execute the same policy under a
    /// different model and report in the same [`MetricsReport`]
    /// conventions, so the results are directly comparable.
    ///
    /// [`Backend`]: crate::Backend
    /// [`SimBackend`]: crate::SimBackend
    pub fn run_on(&self, backend: &dyn crate::Backend) -> MetricsReport {
        backend.run_cell(&self.trace, Arc::clone(&self.scheduler), &self.sim)
    }
}

/// Fluent description of an experiment cell; see [`Experiment::builder`].
///
/// Cloning a builder is cheap (the trace and scheduler are shared), which
/// is how one base configuration fans out into many cells.
#[derive(Clone, Default)]
pub struct ExperimentBuilder {
    trace: Option<Arc<Trace>>,
    scheduler: Option<Arc<dyn Scheduler>>,
    sim: SimConfig,
}

impl ExperimentBuilder {
    /// Sets the cluster size in servers.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.sim.nodes = nodes;
        self
    }

    /// Sets the scheduling policy.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Some(Arc::new(scheduler));
        self
    }

    /// Sets an already-shared scheduling policy (no re-wrapping).
    pub fn scheduler_shared(mut self, scheduler: Arc<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Sets the trace.
    pub fn trace(mut self, trace: impl IntoTrace) -> Self {
        self.trace = Some(trace.into_trace());
        self
    }

    /// Generates the trace from a [`TraceSource`] with `trace_seed`.
    pub fn trace_from(mut self, source: &impl TraceSource, trace_seed: u64) -> Self {
        self.trace = Some(Arc::new(source.generate_trace(trace_seed)));
        self
    }

    /// Sets the scripted cluster dynamics (node down/up events) the
    /// driver replays; the empty default is a static cluster.
    pub fn dynamics(mut self, dynamics: DynamicsScript) -> Self {
        self.sim.dynamics = dynamics;
        self
    }

    /// Sets the per-server execution-speed profile
    /// ([`SpeedSpec::Uniform`] — the default — is the paper's homogeneous
    /// cluster).
    pub fn speeds(mut self, speeds: SpeedSpec) -> Self {
        self.sim.speeds = speeds;
        self
    }

    /// Applies a whole [`ScenarioSpec`] at once: the scenario's trace
    /// (generated with `trace_seed`), its dynamics script and its speed
    /// profile. Scheduler, cluster size and the remaining simulation
    /// parameters stay with the builder.
    pub fn scenario(mut self, scenario: &ScenarioSpec, trace_seed: u64) -> Self {
        self.trace = Some(Arc::new(scenario.trace(trace_seed)));
        self.sim.dynamics = scenario.dynamics.clone();
        self.sim.speeds = scenario.speeds.clone();
        self
    }

    /// Sets the short/long cutoff on estimated task runtime (§3.3).
    pub fn cutoff(mut self, cutoff: Cutoff) -> Self {
        self.sim.cutoff = cutoff;
        self
    }

    /// Enables the §4.8 estimation-error model.
    pub fn misestimate(mut self, range: MisestimateRange) -> Self {
        self.sim.misestimate = Some(range);
        self
    }

    /// Sets or clears the estimation-error model.
    pub fn misestimate_opt(mut self, range: Option<MisestimateRange>) -> Self {
        self.sim.misestimate = range;
        self
    }

    /// Sets the network delay model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.sim.network = network;
        self
    }

    /// Sets a placement-aware network topology (fat-tree, optionally with
    /// per-link contention). The default is the flat constant-delay
    /// network described by [`ExperimentBuilder::network`];
    /// `TopologySpec::Constant` spells that same default explicitly.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.sim.topology = Some(topology);
        self
    }

    /// Sets the centralized-scheduler decision cost (default: free, as in
    /// the paper's simulator).
    pub fn central_overhead(mut self, overhead: CentralOverhead) -> Self {
        self.sim.central_overhead = overhead;
        self
    }

    /// Sets the utilization sampling interval (paper: 100 s).
    pub fn util_interval(mut self, interval: SimDuration) -> Self {
        self.sim.util_interval = interval;
        self
    }

    /// Sets the RNG seed for probe placement, stealing and misestimation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Sets the shard count: `1` (the default) runs the classic
    /// single-threaded driver, `K > 1` the sharded parallel driver.
    /// See [`SimConfig::shards`] for the determinism contract.
    pub fn shards(mut self, shards: usize) -> Self {
        self.sim.shards = shards;
        self
    }

    /// Enables serving-mode admission control: arrivals are gated by the
    /// precomputed [`AdmissionPlan`](crate::AdmissionPlan) (defer/shed
    /// when offered work exceeds usable capacity). The `None` default
    /// admits everything and stays byte-identical to the classic digests.
    pub fn admission(mut self, policy: crate::AdmissionPolicy) -> Self {
        self.sim.admission = Some(policy);
        self
    }

    /// Enables windowed live metrics with the given window length; the
    /// report's [`MetricsReport::live`](crate::MetricsReport) carries the
    /// last [`LIVE_RING`](crate::LIVE_RING) closed windows.
    pub fn live_window(mut self, window: SimDuration) -> Self {
        self.sim.live_window = Some(window);
        self
    }

    /// The simulation parameters accumulated so far.
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// The trace, if one was set.
    pub fn trace_ref(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// The scheduler, if one was set.
    pub fn scheduler_ref(&self) -> Option<&Arc<dyn Scheduler>> {
        self.scheduler.as_ref()
    }

    /// Finalizes the cell.
    ///
    /// # Panics
    ///
    /// Panics if no trace or no scheduler was provided.
    pub fn build(self) -> Experiment {
        Experiment {
            trace: self.trace.expect("Experiment::builder() needs .trace(..)"),
            scheduler: self
                .scheduler
                .expect("Experiment::builder() needs .scheduler(..)"),
            sim: self.sim,
        }
    }

    /// Builds and runs the cell in one call.
    pub fn run(self) -> MetricsReport {
        self.build().run()
    }

    /// Starts a [`Sweep`](crate::Sweep) from this base configuration.
    pub fn sweep(self) -> crate::Sweep {
        crate::Sweep::over(self)
    }
}

/// Runs one experiment cell under the legacy configuration record.
#[deprecated(since = "0.2.0", note = "use `Experiment::builder()`")]
pub fn run_experiment(trace: &Trace, cfg: &ExperimentConfig) -> MetricsReport {
    Driver::new(trace, cfg).run()
}

/// Like `run_experiment`, but also returns the per-job estimates the
/// driver used (§4.8).
#[deprecated(
    since = "0.2.0",
    note = "use `Experiment::builder()` and `Experiment::run_with_estimates`"
)]
pub fn run_experiment_with_estimates(
    trace: &Trace,
    cfg: &ExperimentConfig,
) -> (MetricsReport, JobEstimates) {
    Driver::new(trace, cfg).run_with_estimates()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::compare;
    use crate::scheduler::{Hawk, Sparrow};
    use hawk_workload::motivation::MotivationConfig;
    use hawk_workload::JobClass;

    fn small_motivation() -> Trace {
        MotivationConfig {
            jobs: 60,
            short_tasks: 8,
            long_tasks: 30,
            ..Default::default()
        }
        .generate(3)
    }

    #[test]
    fn runs_are_deterministic() {
        let cell = Experiment::builder()
            .nodes(128)
            .scheduler(Hawk::new(0.17))
            .trace(small_motivation())
            .build();
        let a = cell.run();
        let b = cell.run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_differ() {
        let base = Experiment::builder()
            .nodes(128)
            .scheduler(Sparrow::new())
            .trace(small_motivation())
            .build();
        let a = base.run();
        let b = base.with_seed(base.sim().seed + 1).run();
        // Probe placement differs, so at least one runtime should differ.
        assert_ne!(a.results, b.results);
    }

    #[test]
    fn estimates_returned_match_run() {
        let cell = Experiment::builder()
            .nodes(128)
            .scheduler(Hawk::new(0.17))
            .trace(small_motivation())
            .misestimate(MisestimateRange::symmetric(0.5))
            .build();
        let (report, estimates) = cell.run_with_estimates();
        for r in &report.results {
            assert_eq!(r.scheduled_class, estimates.class(r.job, cell.sim().cutoff));
        }
    }

    #[test]
    fn legacy_shim_matches_builder() {
        #![allow(deprecated)]
        use crate::config::SchedulerConfig;
        let trace = small_motivation();
        let cfg = ExperimentConfig {
            nodes: 128,
            scheduler: SchedulerConfig::hawk(0.17),
            ..ExperimentConfig::default()
        };
        let legacy = run_experiment(&trace, &cfg);
        let (with_est, estimates) = run_experiment_with_estimates(&trace, &cfg);
        assert_eq!(legacy.results, with_est.results);
        // Exact estimates: every job estimate equals its mean duration.
        for job in trace.jobs() {
            assert_eq!(estimates.estimate(job.id), job.mean_task_duration());
        }

        let builder = Experiment::builder()
            .nodes(128)
            .scheduler(Hawk::new(0.17))
            .trace(&trace)
            .run();
        assert_eq!(legacy.results, builder.results);
    }

    #[test]
    fn loaded_cluster_hawk_beats_sparrow_for_shorts() {
        // The paper's core claim, at miniature scale: a loaded
        // heterogeneous cluster where Sparrow's shorts queue behind longs.
        let trace = MotivationConfig {
            jobs: 150,
            short_tasks: 6,
            long_tasks: 40,
            mean_interarrival: hawk_simcore::SimDuration::from_secs(25),
            ..Default::default()
        }
        .generate(11);
        let base = Experiment::builder().nodes(150).trace(trace);
        let hawk = base.clone().scheduler(Hawk::new(0.17)).run();
        let sparrow = base.scheduler(Sparrow::new()).run();
        let cmp = compare(&hawk, &sparrow, JobClass::Short);
        let p90 = cmp.p90_ratio.expect("short jobs exist");
        assert!(
            p90 < 1.0,
            "Hawk should beat Sparrow for short jobs under load: p90 ratio {p90}"
        );
    }

    #[test]
    fn trace_from_source_generates() {
        let source = MotivationConfig {
            jobs: 10,
            short_tasks: 2,
            long_tasks: 4,
            ..Default::default()
        };
        let cell = Experiment::builder()
            .trace_from(&source, 5)
            .nodes(16)
            .scheduler(Sparrow::new())
            .build();
        assert_eq!(cell.trace().len(), 10);
        assert_eq!(cell.run().results.len(), 10);
    }

    #[test]
    #[should_panic(expected = "needs .trace")]
    fn builder_requires_a_trace() {
        let _ = Experiment::builder().scheduler(Sparrow::new()).build();
    }

    #[test]
    #[should_panic(expected = "needs .scheduler")]
    fn builder_requires_a_scheduler() {
        let _ = Experiment::builder().trace(small_motivation()).build();
    }
}
